"""Allgather / alltoall collectives and MoE expert routing.

These extend the paper's Figure 7 methodology to the collective shapes that
dominate MoE-style expert routing (alltoall) and batch-norm-style statistics
exchange (allgather).  Expectations:

* Hoplite's allgather stays within 1.5x of the pipelined analytical bound
  ``S_total / B + L * log n`` and beats the naive task-system plane;
* the static ring/pairwise baselines are the bandwidth-optimal reference;
* MoE routing throughput is higher over Hoplite than over the Ray-style
  plane at every cluster size, because both alltoalls per iteration overlap
  sends and receives instead of serializing puts before gets.
"""

import math

from repro.bench.experiments import MB, allgather_alltoall_rows, moe_routing
from repro.bench.reporting import format_table
from repro.net.config import NetworkConfig

COLUMNS = [
    "primitive",
    "size",
    "nodes",
    "hoplite",
    "openmpi",
    "gloo",
    "ray",
    "dask",
    "optimal",
    "x_optimal",
]


def test_allgather_alltoall_collectives(run_once, quick):
    sizes = (8 * MB,) if quick else (MB, 8 * MB, 32 * MB)
    node_counts = (4,) if quick else (4, 8, 16)
    rows = run_once(allgather_alltoall_rows, sizes=sizes, node_counts=node_counts)
    print()
    print(format_table("Allgather / alltoall latency (seconds)", rows, COLUMNS))

    network = NetworkConfig()
    for row in rows:
        assert row["hoplite"] > 0 and row["openmpi"] > 0
        assert row["x_optimal"] > 0, row
        # Hoplite beats the naive plane once the operation is bandwidth-bound.
        if row["size"] != "1MB":
            assert row["hoplite"] <= row["ray"], row
            # Flow-scheduled admission keeps the bandwidth-bound alltoall
            # within 1.25x of the pipelined per-pair bound (n-1) * S / B.
            # (Only asserted at >= 8 nodes: with 3 flows per link the n = 4
            # matchings leave schedule-dependent tail slack, so small-cluster
            # rows are report-only.)
            if row["primitive"] == "alltoall" and row["nodes"] >= 8:
                assert row["x_optimal"] <= 1.25, row
        if row["primitive"] == "allgather":
            size = {"1MB": MB, "8MB": 8 * MB, "32MB": 32 * MB}[row["size"]]
            bound = (
                row["nodes"] * size / network.bandwidth
                + network.latency * math.log2(row["nodes"])
            )
            assert row["hoplite"] <= 1.5 * bound, row


def test_moe_routing_throughput(run_once, quick):
    node_counts = (4,) if quick else (4, 8)
    iterations = 2 if quick else 3
    rows = run_once(moe_routing, node_counts=node_counts, num_iterations=iterations)
    print()
    print(format_table("MoE expert routing (iterations/second)", rows,
                       ["nodes", "hoplite", "ray", "speedup"]))
    for row in rows:
        assert row["speedup"] > 1.0, row
