"""Simulator throughput: events/sec + wall-clock on the fixed scenario basket.

This is the *performance-of-the-simulator* benchmark (simulated results are
pinned by the golden digests and the bound assertions elsewhere).  The
basket and its groups are defined in :mod:`repro.bench.perf`; the committed
``BENCH_perf.json`` carries the trajectory — current numbers plus the
pre-fast-path baseline measured on the same host.

CI runs ``--quick`` and fails when a quick scenario's events/sec drops more
than 30% below the committed value, or when a golden digest changes.

Regenerate the committed file after an intentional perf change::

    PYTHONPATH=src python benchmarks/bench_perf.py --write
"""

import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_perf.json"

#: CI fails when a quick scenario's events/sec falls below this fraction of
#: the committed number.  Coarse on purpose: CI machines differ from the
#: recording host, and the fast path's margins are far larger than 30%.
REGRESSION_FLOOR = 0.7


def _committed() -> dict:
    return json.loads(BENCH_FILE.read_text())


def test_perf_basket_throughput(run_once, quick):
    from repro.bench.perf import convoy_totals, group_walls, run_basket

    # best-of-2 even in quick mode: single-shot wall clocks on shared CI
    # runners are noisy enough to trip the 30% floor spuriously.
    rows = run_once(run_basket, quick=quick, repeats=2)
    committed = {row["scenario"]: row for row in _committed()["scenarios"]}

    print()
    print(f"{'scenario':46s} {'wall_s':>8s} {'events':>9s} {'ev/s':>10s} {'committed':>10s}")
    for row in rows:
        recorded = committed.get(row["scenario"], {})
        print(
            f"{row['scenario']:46s} {row['wall_s']:8.3f} {row['events']:9d} "
            f"{row['events_per_s']:10,d} {recorded.get('events_per_s', 0):10,d}"
        )
        convoy = row.get("convoy", {})
        if convoy.get("domains_formed"):
            print(
                f"{'':46s}   convoys: {convoy['domains_formed']} domains, "
                f"{convoy['members_enrolled']} members, "
                f"{convoy['blocks_planned']} blocks planned, "
                f"{convoy['materializations']} materializations, "
                f"{convoy['refusals']} refusals"
            )
    for group, wall in sorted(group_walls(rows).items()):
        print(f"  group {group:20s} wall {wall:8.3f}s")
    totals = convoy_totals(rows)
    if totals:
        print(f"  convoy totals: {totals}")

    for row in rows:
        recorded = committed.get(row["scenario"])
        assert recorded is not None, f"{row['scenario']} missing from BENCH_perf.json"
        # The simulated result is part of the contract: a perf benchmark
        # that changed the simulation is measuring something else.
        assert row["sim_s"] == recorded["sim_s"], (
            row["scenario"],
            row["sim_s"],
            recorded["sim_s"],
        )
        floor = recorded["events_per_s"] * REGRESSION_FLOOR
        assert row["events_per_s"] >= floor, (
            f"{row['scenario']}: events/sec regressed >30% "
            f"({row['events_per_s']:,} < {floor:,.0f}; committed "
            f"{recorded['events_per_s']:,})"
        )


def test_golden_digests_still_match(run_once):
    """The throughput numbers are only comparable at fixed simulated results."""
    from repro.bench.digest import (
        RECORDED_DIGESTS as RECORDED,
        golden_fault_matrix_cell,
        golden_fig7_cell,
    )

    def _both():
        return golden_fig7_cell(), golden_fault_matrix_cell()

    fig7, fault = run_once(_both)
    assert fig7 == RECORDED["fig7_flat"]
    assert fault == RECORDED["fault_matrix_2rack"]


def _write() -> None:
    from repro.bench.perf import run_basket

    current = _committed()
    baselines = {
        row["scenario"]: row.get("baseline_pre_pr_wall_s")
        for row in current.get("scenarios", [])
    }
    rows = run_basket()
    groups: dict = {}
    for row in rows:
        base = baselines.get(row["scenario"])
        row["baseline_pre_pr_wall_s"] = base
        row["speedup_vs_pre_pr"] = (
            round(base / row["wall_s"], 2) if base and row["wall_s"] else None
        )
        group = groups.setdefault(
            row["group"], {"wall_s": 0.0, "baseline_pre_pr_wall_s": 0.0}
        )
        group["wall_s"] = round(group["wall_s"] + row["wall_s"], 4)
        if base:
            group["baseline_pre_pr_wall_s"] = round(
                group["baseline_pre_pr_wall_s"] + base, 4
            )
    for group in groups.values():
        if group["baseline_pre_pr_wall_s"] and group["wall_s"]:
            group["speedup_vs_pre_pr"] = round(
                group["baseline_pre_pr_wall_s"] / group["wall_s"], 2
            )
    current["groups"] = groups
    current["scenarios"] = rows
    BENCH_FILE.write_text(json.dumps(current, indent=1) + "\n")
    print(f"wrote {BENCH_FILE}")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        _write()
    else:
        print(__doc__)
