"""Simulator throughput: events/sec + wall-clock on the fixed scenario basket.

This is the *performance-of-the-simulator* benchmark (simulated results are
pinned by the golden digests and the bound assertions elsewhere).  The
basket and its groups are defined in :mod:`repro.bench.perf`; the committed
``BENCH_perf.json`` carries the trajectory — current numbers, the
pre-fast-path baseline (re-measured with ``fastpath(False)`` on the
recording host, stamped with its fingerprint), and the ``--write``-time
host-profiler / locality blocks.

CI runs ``--quick`` and fails when a quick scenario's events/sec drops more
than 30% below the committed value, or when a golden digest changes.

Modes::

    PYTHONPATH=src python benchmarks/bench_perf.py --write
        regenerate BENCH_perf.json (re-measures the fastpath-off baseline
        and the hostprof/locality blocks on this host)
    PYTHONPATH=src python benchmarks/bench_perf.py --profile [--quick]
        untimed host-profiler + locality pass per scenario: prints the
        wall-clock blame table and the PDES-speedup report, writes the
        profile JSON (PERF_PROFILE_OUT, default perf_profile.json) and a
        Chrome-trace export of the quick fleet (PERF_CHROMETRACE_OUT,
        default fleet_trace.json) for CI to upload
"""

import json
import os
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_perf.json"

#: where ``--profile`` writes the host-profile + locality artifact.
DEFAULT_PROFILE_ARTIFACT = REPO_ROOT / "perf_profile.json"

#: where ``--profile`` writes the Chrome-trace export of the quick fleet.
DEFAULT_CHROMETRACE_ARTIFACT = REPO_ROOT / "fleet_trace.json"

#: CI fails when a quick scenario's events/sec falls below this fraction of
#: the committed number.  Coarse on purpose: CI machines differ from the
#: recording host, and the fast path's margins are far larger than 30%.
REGRESSION_FLOOR = 0.7


def _committed() -> dict:
    return json.loads(BENCH_FILE.read_text())


def _fingerprint() -> dict:
    """Identify the measuring host: wall clocks only compare like with like.

    The 0.83x-vs-1.07x confusion this resolves: the seed's
    ``baseline_pre_pr_wall_s`` was recorded on a different (faster) host
    than later ``--write`` runs, so the matching group's "speedup" silently
    mixed two machines.  Every written file now carries the fingerprint of
    the host that measured it, and the baseline is re-measured in the same
    ``--write`` invocation.
    """
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def test_perf_basket_throughput(run_once, quick):
    from repro.bench.perf import convoy_totals, group_walls, run_basket

    # best-of-2 even in quick mode: single-shot wall clocks on shared CI
    # runners are noisy enough to trip the 30% floor spuriously.
    rows = run_once(run_basket, quick=quick, repeats=2)
    committed = {row["scenario"]: row for row in _committed()["scenarios"]}

    print()
    print(f"{'scenario':46s} {'wall_s':>8s} {'events':>9s} {'ev/s':>10s} {'committed':>10s}")
    for row in rows:
        recorded = committed.get(row["scenario"], {})
        print(
            f"{row['scenario']:46s} {row['wall_s']:8.3f} {row['events']:9d} "
            f"{row['events_per_s']:10,d} {recorded.get('events_per_s', 0):10,d}"
        )
        convoy = row.get("convoy", {})
        if convoy.get("domains_formed"):
            print(
                f"{'':46s}   convoys: {convoy['domains_formed']} domains, "
                f"{convoy['members_enrolled']} members, "
                f"{convoy['blocks_planned']} blocks planned, "
                f"{convoy['materializations']} materializations, "
                f"{convoy['refusals']} refusals"
            )
    for group, wall in sorted(group_walls(rows).items()):
        print(f"  group {group:20s} wall {wall:8.3f}s")
    totals = convoy_totals(rows)
    if totals:
        print(f"  convoy totals: {totals}")

    for row in rows:
        recorded = committed.get(row["scenario"])
        assert recorded is not None, f"{row['scenario']} missing from BENCH_perf.json"
        # The simulated result is part of the contract: a perf benchmark
        # that changed the simulation is measuring something else.
        assert row["sim_s"] == recorded["sim_s"], (
            row["scenario"],
            row["sim_s"],
            recorded["sim_s"],
        )
        floor = recorded["events_per_s"] * REGRESSION_FLOOR
        assert row["events_per_s"] >= floor, (
            f"{row['scenario']}: events/sec regressed >30% "
            f"({row['events_per_s']:,} < {floor:,.0f}; committed "
            f"{recorded['events_per_s']:,})"
        )


def test_golden_digests_still_match(run_once):
    """The throughput numbers are only comparable at fixed simulated results."""
    from repro.bench.digest import (
        RECORDED_DIGESTS as RECORDED,
        golden_fault_matrix_cell,
        golden_fig7_cell,
    )

    def _both():
        return golden_fig7_cell(), golden_fault_matrix_cell()

    fig7, fault = run_once(_both)
    assert fig7 == RECORDED["fig7_flat"]
    assert fault == RECORDED["fault_matrix_2rack"]


def _write() -> None:
    from repro.bench.perf import measure_baselines, run_basket

    current = _committed()
    # Re-measure the pre-fast-path baseline on THIS host in the same
    # invocation (fastpath(False) restores the pre-PR kernel bit-for-bit),
    # so speedups never compare wall clocks from two machines again.
    baselines = measure_baselines()
    rows = run_basket(profile=True)
    groups: dict = {}
    for row in rows:
        base = baselines.get(row["scenario"])
        row["baseline_pre_pr_wall_s"] = base
        row["speedup_vs_pre_pr"] = (
            round(base / row["wall_s"], 2) if base and row["wall_s"] else None
        )
        group = groups.setdefault(
            row["group"], {"wall_s": 0.0, "baseline_pre_pr_wall_s": 0.0}
        )
        group["wall_s"] = round(group["wall_s"] + row["wall_s"], 4)
        if base:
            group["baseline_pre_pr_wall_s"] = round(
                group["baseline_pre_pr_wall_s"] + base, 4
            )
    for group in groups.values():
        if group["baseline_pre_pr_wall_s"] and group["wall_s"]:
            group["speedup_vs_pre_pr"] = round(
                group["baseline_pre_pr_wall_s"] / group["wall_s"], 2
            )
    current["comment"] = (
        "Simulator-throughput trajectory (benchmarks/bench_perf.py). "
        "baseline_pre_pr_wall_s is re-measured by every --write on the "
        "recording host (identified by `host`) with both fast paths off "
        "(fastpath(False) restores the pre-fast-path kernel; simulated "
        "results are byte-identical, tests/test_golden_determinism.py), so "
        "speedup_vs_pre_pr always compares like with like. The >=5x "
        "acceptance target of the fast-path PR is measured on the "
        "fig7_64_pipeline group; the fig7_64_matching group is "
        "contention-bound and only gains the incremental-admission constant "
        "factors by design. hostprof (clock=host, non-deterministic) and "
        "locality (deterministic PDES oracle) blocks come from an untimed "
        "profiled pass; timed numbers always run bare. CI gates on "
        "events_per_s of the quick scenarios regressing >30%."
    )
    current["host"] = _fingerprint()
    current["groups"] = groups
    current["scenarios"] = rows
    BENCH_FILE.write_text(json.dumps(current, indent=1) + "\n")
    print(f"wrote {BENCH_FILE}")


def _profile_artifact_path() -> pathlib.Path:
    return pathlib.Path(os.environ.get("PERF_PROFILE_OUT", DEFAULT_PROFILE_ARTIFACT))


def _chrometrace_artifact_path() -> pathlib.Path:
    return pathlib.Path(
        os.environ.get("PERF_CHROMETRACE_OUT", DEFAULT_CHROMETRACE_ARTIFACT)
    )


def _profile(quick: bool) -> dict:
    """The ``--profile`` mode: blame tables, locality reports, artifacts."""
    import repro.net.cluster as cluster_mod
    from repro.bench.fleet import run_fleet
    from repro.bench.perf import run_basket
    from repro.obs import (
        dump_chrome_trace,
        format_hostprof_table,
        format_locality_report,
    )
    from repro.store.objects import reset_id_counter

    rows = run_basket(quick=quick, repeats=1, profile=True)
    for row in rows:
        print()
        print(f"=== {row['scenario']} "
              f"(wall {row['wall_s']:.3f}s, {row['events']} events) ===")
        print(format_hostprof_table(row["hostprof"]))
        print()
        print(format_locality_report(row["locality"]))
    artifact = {
        "quick": quick,
        "host": _fingerprint(),
        "scenarios": [
            {
                "scenario": row["scenario"],
                "hostprof": row["hostprof"],
                "locality": row["locality"],
            }
            for row in rows
        ],
    }
    profile_path = _profile_artifact_path()
    profile_path.write_text(json.dumps(artifact, indent=1) + "\n")
    print(f"\nprofile artifact: {profile_path}")

    # One Chrome-trace export of the quick fleet (spans + flight timeline +
    # queue-depth counters), loadable in Perfetto / chrome://tracing.
    previous = cluster_mod.ON_CREATE

    def _hook(cluster) -> None:
        if previous is not None:
            previous(cluster)
        cluster.enable_flight_recorder()

    cluster_mod.ON_CREATE = _hook
    try:
        reset_id_counter()
        result = run_fleet(
            num_jobs=24, num_racks=2, nodes_per_rack=4, quick=True,
            trace_transfers=True,
        )
    finally:
        cluster_mod.ON_CREATE = previous
    trace_path = _chrometrace_artifact_path()
    doc = dump_chrome_trace(
        str(trace_path), obs=result.obs, flight=result.cluster.flight
    )
    print(f"chrome trace: {trace_path} ({len(doc['traceEvents'])} events)")
    return artifact


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        _write()
    elif "--profile" in sys.argv:
        _profile(quick="--quick" in sys.argv)
    else:
        print(__doc__)
