"""Figure 6: round-trip latency of point-to-point data communication.

Paper: OpenMPI is fastest for small objects (1 KB, 1 MB), Hoplite is within
a fraction of a percent of OpenMPI (and of the optimal bound) at 1 GB, and
Ray and Dask are significantly slower at every size.
"""

from repro.bench.experiments import GB, KB, MB, fig6_point_to_point
from repro.bench.reporting import format_table

COLUMNS = ["size", "optimal", "hoplite", "openmpi", "ray", "dask"]


def test_fig6_point_to_point_rtt(run_once):
    rows = run_once(fig6_point_to_point, sizes=(KB, MB, GB))
    print()
    print(format_table("Figure 6: point-to-point RTT (seconds)", rows, COLUMNS))

    by_size = {row["size"]: row for row in rows}
    # Small and medium objects: OpenMPI wins, Hoplite beats Ray and Dask.
    for size in ("1KB", "1MB"):
        row = by_size[size]
        assert row["openmpi"] <= row["hoplite"]
        assert row["hoplite"] < row["ray"] < row["dask"]
    # Large objects: Hoplite is within a few percent of OpenMPI and optimal.
    large = by_size["1GB"]
    assert large["hoplite"] <= large["openmpi"] * 1.10
    assert large["hoplite"] <= large["optimal"] * 1.10
    assert large["ray"] > large["hoplite"] * 1.2
    assert large["dask"] > large["ray"]
