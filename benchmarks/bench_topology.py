"""Topology sweep: oversubscribed fabrics, topology-aware vs oblivious.

Sweeps the ToR oversubscription ratio over {1:1, 2:1, 4:1, 8:1} on a
multi-rack fabric and runs each collective twice — with
``HopliteOptions(topology_aware=True)`` (locality-aware source selection,
rack-aware broadcast relaying, hierarchical reduce) and with the
``topology_aware=False`` ablation.  Receiver/producer arrival is interleaved
round-robin across racks: synchronized id-ordered arrival happens to build
rack-contiguous chains even obliviously, while placement-uncorrelated
arrival is where oblivious trees scatter edges across the shared tier links.

Expectations:

* at 1:1 the fabric does not bind and the two modes are comparable;
* from 4:1 up, topology-aware broadcast / allreduce / allgather beat the
  oblivious ablation (the shared rack uplinks serialize the oblivious
  trees);
* the aware runs cross racks roughly once per rack (``rack_frac`` near
  ``(R - 1)/n`` for R racks of n/R nodes) while the oblivious runs approach
  1.0 for broadcast.
"""

from repro.bench.reporting import format_table
from repro.bench.scenarios import (
    measure_allgather,
    measure_allreduce,
    measure_broadcast,
    rack_interleaved_delays,
)
from repro.core.options import HopliteOptions
from repro.net.config import NetworkConfig
from repro.net.topology import Topology

MB = 1024 * 1024

COLUMNS = [
    "ratio",
    "racks",
    "bcast_aware",
    "bcast_obliv",
    "bcast_x",
    "allred_aware",
    "allred_obliv",
    "allred_x",
    "allgat_aware",
    "allgat_obliv",
    "allgat_x",
    "rack_frac",
    "rack_busy",
]


def topology_rows(
    ratios,
    num_racks: int,
    nodes_per_rack: int,
    nbytes: int,
) -> list[dict]:
    """One row per oversubscription ratio: aware vs oblivious latencies."""
    num_nodes = num_racks * nodes_per_rack
    aware = HopliteOptions(topology_aware=True)
    oblivious = HopliteOptions(topology_aware=False)
    delays = rack_interleaved_delays(num_racks, nodes_per_rack)
    receiver_delays = delays[1:]
    rows = []
    for ratio in ratios:
        network = NetworkConfig(
            topology=Topology.racks(num_racks, nodes_per_rack, oversubscription=ratio)
        )
        stats: dict = {}
        row: dict = {"ratio": f"{ratio:g}:1", "racks": f"{num_racks}x{nodes_per_rack}"}
        row["bcast_aware"] = measure_broadcast(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=receiver_delays,
            network=network,
            options=aware,
            flow_stats=stats,
        )
        row["bcast_obliv"] = measure_broadcast(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=receiver_delays,
            network=network,
            options=oblivious,
        )
        row["bcast_x"] = row["bcast_obliv"] / row["bcast_aware"]
        row["rack_frac"] = stats["cross_rack_fraction"]
        row["rack_busy"] = stats["tier_busy_time"]["rack_uplink"]
        row["allred_aware"] = measure_allreduce(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=delays,
            network=network,
            options=aware,
        )
        row["allred_obliv"] = measure_allreduce(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=delays,
            network=network,
            options=oblivious,
        )
        row["allred_x"] = row["allred_obliv"] / row["allred_aware"]
        row["allgat_aware"] = measure_allgather(
            "hoplite", num_nodes, nbytes, network=network, options=aware
        )
        row["allgat_obliv"] = measure_allgather(
            "hoplite", num_nodes, nbytes, network=network, options=oblivious
        )
        row["allgat_x"] = row["allgat_obliv"] / row["allgat_aware"]
        rows.append(row)
    return rows


def test_topology_oversubscription_sweep(run_once, quick):
    if quick:
        ratios, num_racks, nodes_per_rack, nbytes = (1.0, 4.0), 4, 2, 8 * MB
    else:
        ratios, num_racks, nodes_per_rack, nbytes = (1.0, 2.0, 4.0, 8.0), 4, 4, 32 * MB
    rows = run_once(
        topology_rows,
        ratios=ratios,
        num_racks=num_racks,
        nodes_per_rack=nodes_per_rack,
        nbytes=nbytes,
    )
    print()
    print(
        format_table(
            "Topology sweep: oversubscribed fabric, aware vs oblivious (seconds)",
            rows,
            COLUMNS,
        )
    )
    for row in rows:
        ratio = float(row["ratio"].split(":")[0])
        # Cross-rack traffic really flows through the shared tier links.
        assert row["rack_frac"] > 0.0, row
        assert row["rack_busy"] > 0.0, row
        if ratio >= 4.0:
            # Oversubscription binds: topology awareness must win.
            assert row["bcast_aware"] < row["bcast_obliv"], row
            assert row["allred_aware"] < row["allred_obliv"], row
            assert row["allgat_aware"] < row["allgat_obliv"], row
