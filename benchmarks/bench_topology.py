"""Topology sweep: oversubscribed fabrics, topology-aware vs oblivious.

Sweeps the ToR oversubscription ratio over {1:1, 2:1, 4:1, 8:1} on a
multi-rack fabric and runs each collective twice — with
``HopliteOptions(topology_aware=True)`` (locality-aware source selection,
rack-aware broadcast relaying, hierarchical reduce) and with the
``topology_aware=False`` ablation.  Receiver/producer arrival is interleaved
round-robin across racks: synchronized id-ordered arrival happens to build
rack-contiguous chains even obliviously, while placement-uncorrelated
arrival is where oblivious trees scatter edges across the shared tier links.

Expectations:

* at 1:1 the fabric does not bind and the two modes are comparable;
* from 4:1 up, topology-aware broadcast / allreduce / allgather beat the
  oblivious ablation (the shared rack uplinks serialize the oblivious
  trees);
* the aware runs cross racks roughly once per rack (``rack_frac`` near
  ``(R - 1)/n`` for R racks of n/R nodes) while the oblivious runs approach
  1.0 for broadcast.
"""

from repro.bench.reporting import format_table
from repro.bench.scenarios import (
    measure_allgather,
    measure_allreduce,
    measure_broadcast,
    rack_interleaved_delays,
)
from repro.core.options import HopliteOptions
from repro.net.config import NetworkConfig
from repro.net.topology import Topology

MB = 1024 * 1024

COLUMNS = [
    "ratio",
    "racks",
    "bcast_aware",
    "bcast_obliv",
    "bcast_x",
    "allred_aware",
    "allred_obliv",
    "allred_x",
    "allgat_aware",
    "allgat_obliv",
    "allgat_x",
    "rack_frac",
    "rack_busy",
]


def topology_rows(
    ratios,
    num_racks: int,
    nodes_per_rack: int,
    nbytes: int,
) -> list[dict]:
    """One row per oversubscription ratio: aware vs oblivious latencies."""
    num_nodes = num_racks * nodes_per_rack
    aware = HopliteOptions(topology_aware=True)
    oblivious = HopliteOptions(topology_aware=False)
    delays = rack_interleaved_delays(num_racks, nodes_per_rack)
    receiver_delays = delays[1:]
    rows = []
    for ratio in ratios:
        network = NetworkConfig(
            topology=Topology.racks(num_racks, nodes_per_rack, oversubscription=ratio)
        )
        stats: dict = {}
        row: dict = {"ratio": f"{ratio:g}:1", "racks": f"{num_racks}x{nodes_per_rack}"}
        row["bcast_aware"] = measure_broadcast(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=receiver_delays,
            network=network,
            options=aware,
            flow_stats=stats,
        )
        row["bcast_obliv"] = measure_broadcast(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=receiver_delays,
            network=network,
            options=oblivious,
        )
        row["bcast_x"] = row["bcast_obliv"] / row["bcast_aware"]
        row["rack_frac"] = stats["cross_rack_fraction"]
        row["rack_busy"] = stats["tier_busy_time"]["rack_uplink"]
        row["allred_aware"] = measure_allreduce(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=delays,
            network=network,
            options=aware,
        )
        row["allred_obliv"] = measure_allreduce(
            "hoplite",
            num_nodes,
            nbytes,
            arrival_delays=delays,
            network=network,
            options=oblivious,
        )
        row["allred_x"] = row["allred_obliv"] / row["allred_aware"]
        row["allgat_aware"] = measure_allgather(
            "hoplite", num_nodes, nbytes, network=network, options=aware
        )
        row["allgat_obliv"] = measure_allgather(
            "hoplite", num_nodes, nbytes, network=network, options=oblivious
        )
        row["allgat_x"] = row["allgat_obliv"] / row["allgat_aware"]
        rows.append(row)
    return rows


def test_topology_oversubscription_sweep(run_once, quick):
    if quick:
        ratios, num_racks, nodes_per_rack, nbytes = (1.0, 4.0), 4, 2, 8 * MB
    else:
        ratios, num_racks, nodes_per_rack, nbytes = (1.0, 2.0, 4.0, 8.0), 4, 4, 32 * MB
    rows = run_once(
        topology_rows,
        ratios=ratios,
        num_racks=num_racks,
        nodes_per_rack=nodes_per_rack,
        nbytes=nbytes,
    )
    print()
    print(
        format_table(
            "Topology sweep: oversubscribed fabric, aware vs oblivious (seconds)",
            rows,
            COLUMNS,
        )
    )
    for row in rows:
        ratio = float(row["ratio"].split(":")[0])
        # Cross-rack traffic really flows through the shared tier links.
        assert row["rack_frac"] > 0.0, row
        assert row["rack_busy"] > 0.0, row
        if ratio >= 4.0:
            # Oversubscription binds: topology awareness must win.
            assert row["bcast_aware"] < row["bcast_obliv"], row
            assert row["allred_aware"] < row["allred_obliv"], row
            assert row["allgat_aware"] < row["allgat_obliv"], row


def test_topology_scaleout_64_nodes(run_once, quick):
    """64-node fabric row (8 racks x 8 nodes at 4:1): awareness still wins."""
    nbytes = 8 * MB if quick else 32 * MB
    rows = run_once(
        topology_rows, ratios=(4.0,), num_racks=8, nodes_per_rack=8, nbytes=nbytes
    )
    print()
    print(format_table("Topology scale-out: 8x8 racks at 4:1 (seconds)", rows, COLUMNS))
    row = rows[0]
    assert row["rack_frac"] > 0.0, row
    assert row["bcast_aware"] < row["bcast_obliv"], row
    assert row["allred_aware"] < row["allred_obliv"], row
    assert row["allgat_aware"] < row["allgat_obliv"], row


def test_topology_fleet_smoke_256_nodes(run_once, quick):
    """256-node broadcast smoke (16 racks x 16 nodes at 4:1, full mode only).

    The rack-aware tree pays ~one cross-rack transfer per rack, so it beats
    the oblivious ablation well past the sweep scale.  Skipped in quick mode:
    the oblivious ablation is coalescing-resistant (every spine slot is
    contended) and the aware run's parked-requester rescans are genuine
    directory work, so the cell costs several wall seconds.
    """
    if quick:
        import pytest

        pytest.skip("256-node smoke runs in the full benchmark mode only")
    from repro.core.options import HopliteOptions

    network = NetworkConfig(topology=Topology.racks(16, 16, oversubscription=4.0))
    delays = rack_interleaved_delays(16, 16)

    def _run():
        aware = measure_broadcast(
            "hoplite",
            256,
            32 * MB,
            arrival_delays=delays[1:],
            network=network,
            options=HopliteOptions(topology_aware=True),
        )
        oblivious = measure_broadcast(
            "hoplite",
            256,
            32 * MB,
            arrival_delays=delays[1:],
            network=network,
            options=HopliteOptions(topology_aware=False),
        )
        return aware, oblivious

    aware, oblivious = run_once(_run)
    print()
    print(f"  256-node broadcast: aware {aware:.4f}s vs oblivious {oblivious:.4f}s")
    assert aware < oblivious, (aware, oblivious)
    assert oblivious / aware >= 1.5, (aware, oblivious)
