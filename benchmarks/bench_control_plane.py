"""Control-plane failure recovery: WAL replay vs static job restart.

The scenario kills part of the *control plane* — a directory shard, the
lineage/ownership services, or both — mid-collective and measures how the
run completes.  The data plane never aborts: requests to the dead component
park on its recovery event, the component replays its write-ahead log
(checkpoint + tail), and the parked work resumes.  The comparison point is
the static failure model, where losing the directory or the lineage log is
job-fatal: the launcher detects the death and reruns the whole collective
from scratch (``fail_at + detection + baseline``).

Two effects make WAL replay win:

* the data plane keeps streaming during the downtime — transfers already
  granted finish, and only operations that *need* the dead component stall;
* replay restores the exact pre-kill state (the shard's post-replay
  self-check asserts digest equality), so no completed work is redone.
"""

from repro.bench.reporting import format_table
from repro.bench.scenarios import measure_control_plane_failure
from repro.net.config import NetworkConfig

MB = 1024 * 1024

#: 1 Gbps network so the collective duration dominates the detection delay
#: and the kill reliably lands mid-operation.
NETWORK = dict(bandwidth=1.25e8)


def _row(target, num_nodes, nbytes, collective, fail_fraction, network):
    stats: dict = {}
    failed = measure_control_plane_failure(
        num_nodes,
        nbytes,
        collective=collective,
        target=target,
        fail_fraction=fail_fraction,
        network=network,
        stats=stats,
    )
    return {
        "target": target,
        "collective": collective,
        "fail_at": f"{int(fail_fraction * 100)}%",
        "baseline": stats["baseline"],
        "replay": failed,
        "static_restart": stats["static_restart"],
        "wal_applied": sum(stats["replay_applied"]),
        "self_check": stats["replay_self_check"][0],
    }


def _grid(num_nodes, nbytes, cells):
    network = NetworkConfig(**NETWORK)
    return [
        _row(target, num_nodes, nbytes, collective, fraction, network)
        for target, collective, fraction in cells
    ]


def test_control_plane_replay_beats_job_restart(run_once, quick):
    num_nodes = 4 if quick else 8
    nbytes = 4 * MB if quick else 16 * MB
    cells = (
        [("directory", "allgather", 0.5), ("lineage", "allreduce", 0.5)]
        if quick
        else [
            ("directory", "allgather", 0.25),
            ("directory", "allgather", 0.5),
            ("directory", "allreduce", 0.5),
            ("lineage", "allreduce", 0.5),
            ("lineage", "broadcast", 0.5),
            ("both", "allgather", 0.5),
        ]
    )
    rows = run_once(_grid, num_nodes, nbytes, cells)
    print()
    print(
        format_table(
            "Control-plane kill mid-collective (seconds to completion)",
            rows,
            [
                "target",
                "collective",
                "fail_at",
                "baseline",
                "replay",
                "static_restart",
                "wal_applied",
            ],
        )
    )
    for row in rows:
        # The headline: replay-based recovery completes the in-flight
        # collective without a job restart, so it beats the static model
        # (which pays detection + a full rerun) on every cell.
        assert row["replay"] < row["static_restart"], row
        # A directory kill must have exercised WAL replay, and the shard's
        # post-replay self-check must have found state digest-identical.
        if row["target"] in ("directory", "both"):
            assert row["wal_applied"] > 0, row
            assert row["self_check"] is True, row
