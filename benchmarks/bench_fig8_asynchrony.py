"""Figure 8: 1 GB collectives when participants arrive sequentially.

Paper: OpenMPI (and Gloo) cannot start reduce/allreduce until every
participant has arrived, so their latency tracks the last arrival plus the
full collective; Hoplite makes progress with whichever participants exist,
so its latency stays close to the last arrival.
"""

from repro.bench.experiments import GB, fig8_asynchrony
from repro.bench.reporting import format_table

COLUMNS = [
    "interval",
    "last_arrival",
    "broadcast_hoplite",
    "broadcast_openmpi",
    "reduce_hoplite",
    "reduce_openmpi",
    "allreduce_hoplite",
    "allreduce_openmpi",
    "allreduce_gloo",
]


def test_fig8_asynchrony(run_once):
    rows = run_once(fig8_asynchrony, intervals=(0.0, 0.1, 0.2, 0.3), num_nodes=16, nbytes=GB)
    print()
    print(format_table("Figure 8: 1GB collectives with staggered arrivals (seconds)", rows, COLUMNS))

    for row in rows:
        # Hoplite's reduce pipeline absorbs early arrivals: it beats OpenMPI at
        # every interval and by a growing absolute margin once arrivals stagger.
        assert row["reduce_hoplite"] < row["reduce_openmpi"]
        # Static allreduce cannot start early; Hoplite stays within ~15% even
        # though reduce-then-broadcast moves more bytes than ring allreduce.
        assert row["allreduce_hoplite"] <= row["allreduce_gloo"] * 1.15
        # Nothing can finish before the last participant has shown up.
        if row["interval"] > 0:
            assert row["reduce_hoplite"] >= row["last_arrival"]

    # The latency gap between OpenMPI reduce and its own last-arrival bound is
    # roughly constant (it always pays the full reduce after the barrier).
    sync_row = rows[0]
    async_row = rows[-1]
    openmpi_tail_sync = sync_row["reduce_openmpi"]
    openmpi_tail_async = async_row["reduce_openmpi"] - async_row["last_arrival"]
    assert openmpi_tail_async >= openmpi_tail_sync * 0.8
