"""Shared configuration for the benchmark suite.

Every benchmark drives a deterministic discrete-event simulation, so a single
round per benchmark is sufficient and repeat runs would only re-measure the
Python interpreter.  The helper below standardizes that convention.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
