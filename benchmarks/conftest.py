"""Shared configuration for the benchmark suite.

Every benchmark drives a deterministic discrete-event simulation, so a single
round per benchmark is sufficient and repeat runs would only re-measure the
Python interpreter.  The helper below standardizes that convention.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _pinned_object_ids():
    """Reset the process-global ObjectID counter before every benchmark.

    The directory's source-selection tie-break hashes object keys, and
    ``ObjectID.unique`` draws from one process-global counter — so a
    benchmark's schedule (and its borderline bound assertions) would
    otherwise depend on which benchmarks happened to run earlier in the
    same pytest process.  Pinning the counter makes every benchmark
    reproduce its standalone run exactly, in any batch order.
    """
    from repro.store.objects import reset_id_counter

    reset_id_counter()


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "Smoke mode for CI: benchmarks shrink their parameter grids to "
            "one cheap point per scenario."
        ),
    )


@pytest.fixture
def quick(request):
    """True when the suite runs with ``--quick`` (CI smoke invocation)."""
    return request.config.getoption("--quick")


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
