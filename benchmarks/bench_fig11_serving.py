"""Figure 11: throughput of serving an ensemble of image-classification models.

Paper: Hoplite improves Ray Serve's throughput by 2.2x on 8 nodes and 3.3x
on 16 nodes; broadcasting each query batch to every replica is the
bottleneck under plain Ray.
"""

from repro.bench.experiments import fig11_serving
from repro.bench.reporting import format_table

COLUMNS = ["nodes", "hoplite", "ray", "speedup"]


def test_fig11_serving(run_once):
    rows = run_once(fig11_serving, node_counts=(8, 16), num_queries=10)
    print()
    print(format_table("Figure 11: ensemble serving throughput (queries/s)", rows, COLUMNS))

    by_nodes = {row["nodes"]: row for row in rows}
    for row in rows:
        assert row["speedup"] > 1.5, row
    # The gain grows with the number of replicas, as in the paper (2.2x -> 3.3x).
    assert by_nodes[16]["speedup"] > by_nodes[8]["speedup"]
