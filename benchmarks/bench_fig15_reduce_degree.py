"""Figure 15 (Appendix B): ablation on the reduce-tree degree ``d``.

Paper: for small objects the flat tree (d = n) is best because the bottleneck
is network latency; for very large objects the chain (d = 1) is best because
it minimizes the per-node bandwidth demand; in between, d = 2 can win.
Hoplite's runtime selector chooses among exactly these three.
"""

from repro.bench.experiments import KB, MB, fig15_reduce_degree
from repro.bench.reporting import format_table
from repro.core.reduce import choose_reduce_degree
from repro.net.config import NetworkConfig

COLUMNS = ["size", "nodes", "d=1", "d=2", "d=n"]


def test_fig15_reduce_degree(run_once):
    rows = run_once(
        fig15_reduce_degree,
        sizes=(4 * KB, 32 * KB, 1 * MB, 4 * MB, 32 * MB),
        node_counts=(8, 16, 32),
        degrees=(1, 2, 0),
    )
    print()
    print(format_table("Figure 15: reduce latency by tree degree (seconds)", rows, COLUMNS))

    by_key = {(row["size"], row["nodes"]): row for row in rows}
    # Small objects: the flat tree wins (latency bound).
    assert by_key[("4KB", 16)]["d=n"] <= by_key[("4KB", 16)]["d=1"]
    # Large objects: low-degree trees win (bandwidth bound); the flat tree is
    # the worst choice by a wide margin.
    assert by_key[("32MB", 16)]["d=1"] <= by_key[("32MB", 16)]["d=n"]
    assert by_key[("32MB", 32)]["d=2"] <= by_key[("32MB", 32)]["d=n"]
    # At the largest size and a small group the chain is the single best choice.
    row_8 = by_key[("32MB", 8)]
    assert row_8["d=1"] <= row_8["d=2"] and row_8["d=1"] <= row_8["d=n"]

    # The runtime selector agrees with the measured optimum at the extremes.
    config = NetworkConfig()
    assert choose_reduce_degree(16, 4 * KB, config.latency, config.bandwidth) == 16
    assert choose_reduce_degree(16, 32 * MB, config.latency, config.bandwidth) == 1


def test_degree_model_crossover():
    """The analytical model (Equation 1) reproduces the small/large crossover."""
    config = NetworkConfig()
    small = choose_reduce_degree(64, 4 * KB, config.latency, config.bandwidth)
    large = choose_reduce_degree(64, 256 * MB, config.latency, config.bandwidth)
    assert small == 64
    assert large == 1
