"""CI smoke: one scenario per collective primitive.

One cheap measurement per primitive per plane, meant for the ``--quick``
path in CI: it proves every scenario driver still builds a cluster, runs,
and returns a positive latency, without the full Figure 7 grids.
"""

from repro.bench.experiments import MB
from repro.bench.reporting import format_table
from repro.bench.scenarios import (
    measure_allgather,
    measure_allreduce,
    measure_alltoall,
    measure_broadcast,
    measure_gather,
    measure_point_to_point_rtt,
    measure_reduce,
)

_PRIMITIVES = {
    "point_to_point": lambda system, n, size: measure_point_to_point_rtt(system, size),
    "broadcast": measure_broadcast,
    "gather": measure_gather,
    "reduce": measure_reduce,
    "allreduce": measure_allreduce,
    "allgather": measure_allgather,
    "alltoall": measure_alltoall,
}


def _smoke(num_nodes, size):
    rows = []
    for primitive, measure in _PRIMITIVES.items():
        row = {"primitive": primitive}
        for system in ("hoplite", "openmpi", "ray"):
            row[system] = measure(system, num_nodes, size)
        rows.append(row)
    return rows


def test_smoke_one_scenario_per_collective(run_once, quick):
    size = 4 * MB if quick else 16 * MB
    rows = run_once(_smoke, 4, size)
    print()
    print(format_table("Collective smoke (seconds)", rows,
                       ["primitive", "hoplite", "openmpi", "ray"]))
    for row in rows:
        for system in ("hoplite", "openmpi", "ray"):
            assert row[system] > 0, row
