"""Figure 10: reinforcement-learning training throughput (IMPALA / A3C).

Paper: Hoplite improves IMPALA by 1.9x / 1.8x and A3C by 2.2x / 3.9x on
8 / 16 nodes; the trainer's broadcast of the 64 MB policy (and, for A3C, the
gradient reduce) is the communication that Hoplite removes from the trainer's
NIC.
"""

from repro.bench.experiments import fig10_rl
from repro.bench.reporting import format_table

COLUMNS = ["algorithm", "nodes", "hoplite", "ray", "speedup"]


def test_fig10_rl(run_once):
    rows = run_once(fig10_rl, algorithms=("impala", "a3c"), node_counts=(8, 16), num_iterations=4)
    print()
    print(format_table("Figure 10: RL training throughput (samples/s)", rows, COLUMNS))

    by_key = {(row["algorithm"], row["nodes"]): row for row in rows}
    for row in rows:
        assert row["speedup"] > 1.2, row
    # A3C moves gradients *and* the policy, so it gains at least as much as
    # IMPALA at 16 nodes.
    assert by_key[("a3c", 16)]["speedup"] >= by_key[("impala", 16)]["speedup"] * 0.9
    # Ray's A3C scales worse than Hoplite's when going from 8 to 16 nodes.
    hoplite_scaling = by_key[("a3c", 16)]["hoplite"] / by_key[("a3c", 8)]["hoplite"]
    ray_scaling = by_key[("a3c", 16)]["ray"] / by_key[("a3c", 8)]["ray"]
    assert hoplite_scaling > ray_scaling
