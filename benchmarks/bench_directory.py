"""Section 5.1.1: object-directory write/read latency microbenchmark.

Paper: writing an object location takes 167 microseconds and reading one
takes 177 microseconds on the testbed; the simulator charges the configured
control-RPC latency for both.
"""

from repro.bench.experiments import directory_latency_microbenchmark
from repro.bench.reporting import format_table


def test_directory_latency(run_once):
    stats = run_once(directory_latency_microbenchmark, num_nodes=16, repeats=64)
    rows = [
        {"operation": "publish location", "mean": stats["publish_mean"], "std": stats["publish_std"]},
        {"operation": "lookup location", "mean": stats["lookup_mean"], "std": stats["lookup_std"]},
    ]
    print()
    print(format_table("Object directory latency (seconds)", rows, ["operation", "mean", "std"]))

    # Both operations cost on the order of one control RPC (~170us in the
    # paper; the simulator's default matches that order of magnitude).
    assert 1e-5 < stats["publish_mean"] < 1e-3
    assert 1e-5 < stats["lookup_mean"] < 1e-3
