"""Figure 12: per-query / per-iteration latency around a task failure + rejoin.

Paper: when a serving replica fails, Ray Serve's latency *drops* (fewer
receivers to broadcast to) and returns to normal after the rejoin, while
Hoplite's latency barely changes because its broadcast does not bottleneck
on the frontend.  For async SGD, the per-iteration latency rises during the
recovery window and returns to normal afterwards; Hoplite and Ray recover in
comparable time because both rely on the task system's reconstruction.
"""

import statistics

from repro.bench.experiments import fig12_fault_tolerance
from repro.bench.reporting import format_series


def test_fig12_fault_tolerance(run_once):
    timelines = run_once(fig12_fault_tolerance, num_queries=40, num_sgd_iterations=20)
    serving = timelines["serving"]
    async_sgd = timelines["async_sgd"]

    print()
    print(
        format_series(
            "Figure 12a: serving latency per query (seconds)",
            "query",
            list(range(len(serving["hoplite"]))),
            serving,
        )
    )
    print()
    print(
        format_series(
            "Figure 12b: async SGD latency per iteration (seconds)",
            "iteration",
            list(range(len(async_sgd["hoplite"]))),
            async_sgd,
        )
    )

    # Hoplite serves every query faster than Ray, before, during, and after
    # the failure.
    assert statistics.median(serving["hoplite"]) < statistics.median(serving["ray"])
    # Hoplite's latency is essentially flat across the failure (within 20%).
    hoplite_lat = serving["hoplite"]
    assert max(hoplite_lat) <= min(hoplite_lat) * 1.6
    # Ray's latency visibly drops while the replica is down: its minimum over
    # the run is measurably below its starting latency.
    ray_lat = serving["ray"]
    assert min(ray_lat) < ray_lat[0] * 0.95

    # Async SGD keeps making progress through the failure for both systems:
    # all iterations complete and the worst iteration is bounded.
    for system, latencies in async_sgd.items():
        assert len(latencies) == 20, system
        assert max(latencies) < 10 * statistics.median(latencies), system
