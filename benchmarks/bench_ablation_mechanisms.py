"""Ablations of Hoplite's two core mechanisms (Sections 3.3 and 3.4.1).

These are not figures in the paper, but DESIGN.md calls out fine-grained
pipelining and the receiver-driven (relaying) broadcast as the two design
choices that produce the paper's gains, so the harness quantifies each one
in isolation:

* pipelining off  -> every copy waits for a complete upstream copy first
  (store-and-forward), which re-introduces the extra memory-copy latency the
  paper attributes to Ray;
* dynamic broadcast off -> every receiver pulls from a complete copy only,
  which re-introduces the sender-side bottleneck.
"""

from repro.bench.reporting import format_table
from repro.bench.scenarios import measure_broadcast, measure_point_to_point_rtt
from repro.core.options import HopliteOptions

MB = 1024 * 1024

FULL = HopliteOptions()
NO_PIPELINING = HopliteOptions(enable_pipelining=False)
NO_RELAY = HopliteOptions(enable_dynamic_broadcast=False)
NEITHER = HopliteOptions(enable_pipelining=False, enable_dynamic_broadcast=False)


def _ablation_rows():
    rows = []
    for label, options in (
        ("full hoplite", FULL),
        ("no pipelining", NO_PIPELINING),
        ("no relaying", NO_RELAY),
        ("neither", NEITHER),
    ):
        rows.append(
            {
                "variant": label,
                "p2p_rtt_1GB": measure_point_to_point_rtt("hoplite", 1024 * MB, options=options),
                "broadcast_64MB_8n": measure_broadcast("hoplite", 8, 64 * MB, options=options),
                "broadcast_256MB_16n": measure_broadcast("hoplite", 16, 256 * MB, options=options),
            }
        )
    return rows


def test_ablation_pipelining_and_relaying(run_once):
    rows = run_once(_ablation_rows)
    print()
    print(
        format_table(
            "Ablation: pipelining and receiver-driven relaying (seconds)",
            rows,
            ["variant", "p2p_rtt_1GB", "broadcast_64MB_8n", "broadcast_256MB_16n"],
        )
    )
    by_variant = {row["variant"]: row for row in rows}
    full = by_variant["full hoplite"]
    # Pipelining hides the worker<->store copies on the point-to-point path.
    assert full["p2p_rtt_1GB"] < by_variant["no pipelining"]["p2p_rtt_1GB"]
    # Relaying removes the sender bottleneck; dropping it costs the most at scale.
    assert full["broadcast_256MB_16n"] < by_variant["no relaying"]["broadcast_256MB_16n"] / 2
    # Each mechanism contributes: the full system is the fastest variant everywhere.
    for row in rows:
        for column in ("p2p_rtt_1GB", "broadcast_64MB_8n", "broadcast_256MB_16n"):
            assert full[column] <= row[column] * 1.001, (row["variant"], column)
