"""Driver/root failure recovery: object-plane lineage re-execution vs job restart.

The scenario kills node 0 — the caller/root of the collective — mid-operation
and measures the *recovery overhead*: completion time with the failure minus
the same system's failure-free baseline.  The object planes run through the
collective orchestrator (per-rank driver tasks, lineage re-execution, partial
adoption); the static systems abort and restart the whole job once the node
rejoins, the MPI failure model.

Two effects make the object plane win (Section 6 of the paper):

* a *rooted* collective's root share migrates to an alive node and re-creates
  the root's data from lineage, so broadcast recovery costs ~nothing while a
  static system waits out the downtime and reruns;
* the later the failure lands, the more completed work a static restart
  throws away, while lineage re-execution *adopts* surviving partials — the
  overhead curves diverge with ``fail_fraction``.
"""

from repro.bench.reporting import format_table
from repro.bench.scenarios import measure_driver_failure
from repro.net.config import NetworkConfig

MB = 1024 * 1024

#: 1 Gbps network so the collective duration is comparable to the downtime
#: and the failure reliably lands mid-operation.
NETWORK = dict(bandwidth=1.25e8)
DOWNTIME = 0.2


def _overhead(system, num_nodes, nbytes, collective, fail_fraction, network):
    baseline = measure_driver_failure(
        system, num_nodes, nbytes, collective=collective, network=network
    )
    failed = measure_driver_failure(
        system,
        num_nodes,
        nbytes,
        collective=collective,
        fail_fraction=fail_fraction,
        downtime=DOWNTIME,
        network=network,
    )
    return failed - baseline


def _grid(num_nodes, nbytes, cells):
    network = NetworkConfig(**NETWORK)
    rows = []
    for collective, fraction in cells:
        row = {"collective": collective, "fail_at": f"{int(fraction * 100)}%"}
        for system in ("hoplite", "ray", "openmpi"):
            try:
                row[system] = _overhead(
                    system, num_nodes, nbytes, collective, fraction, network
                )
            except Exception:  # noqa: BLE001 - unsupported (system, collective) pair
                row[system] = float("nan")
        rows.append(row)
    return rows


def test_driver_failure_recovery_beats_job_restart(run_once, quick):
    num_nodes = 4 if quick else 8
    nbytes = 4 * MB if quick else 16 * MB
    cells = (
        [("broadcast", 0.5), ("allreduce", 0.85)]
        if quick
        else [
            ("broadcast", 0.5),
            ("reduce", 0.5),
            ("allreduce", 0.5),
            ("allreduce", 0.85),
            ("allgather", 0.5),
            ("alltoall", 0.5),
        ]
    )
    rows = run_once(_grid, num_nodes, nbytes, cells)
    print()
    print(
        format_table(
            "Driver-failure recovery overhead (seconds over own baseline)",
            rows,
            ["collective", "fail_at", "hoplite", "ray", "openmpi"],
        )
    )
    for row in rows:
        # Zero-ish overhead is the ideal; tiny negatives are tree-shape noise.
        assert row["hoplite"] > -0.01, row
        # The headline: lineage re-execution of the root costs ~nothing for
        # a rooted broadcast, and a late failure is nearly free because the
        # surviving partials are adopted rather than recomputed.
        if row["collective"] == "broadcast" or row["fail_at"] == "85%":
            assert row["hoplite"] < row["openmpi"], row
