"""Flow-scheduled transport: HOL-blocking ablation and link utilization.

The reservation-based transport admits a block only when the source uplink
slot and the destination downlink slot are simultaneously free, so a busy
receiver no longer parks its senders' uplinks idle-but-held.  Expectations:

* the alltoall gap to the pipelined bound ``(n-1) * S / B`` closes from
  ~1.5x (sequential acquisition) to <= 1.2x (flow scheduling);
* mean uplink utilization over the exchange rises correspondingly;
* the per-flow accounting splits traffic by class (bulk vs reduce-partial
  vs control) for every NIC direction.
"""

from repro.bench.reporting import format_table
from repro.bench.scenarios import measure_alltoall
from repro.net.config import NetworkConfig

MB = 1024 * 1024


def alltoall_flowsched_rows(node_counts, nbytes):
    """Hoplite alltoall under flow scheduling vs the sequential ablation."""
    rows = []
    for num_nodes in node_counts:
        bound = (num_nodes - 1) * nbytes / NetworkConfig().bandwidth
        stats_flow: dict = {}
        flow = measure_alltoall(
            "hoplite", num_nodes, nbytes, flow_stats=stats_flow
        )
        # The sequential ablation bypasses reservations entirely, so only its
        # latency is comparable (its links have no utilization accounting).
        sequential = measure_alltoall(
            "hoplite",
            num_nodes,
            nbytes,
            network=NetworkConfig(flow_scheduling=False),
        )
        rows.append(
            {
                "nodes": num_nodes,
                "flowsched": flow,
                "sequential": sequential,
                "x_bound_flow": flow / bound,
                "x_bound_seq": sequential / bound,
                "uplink_util": stats_flow["mean_uplink_utilization"],
                "bulk_bytes": float(stats_flow["bytes_by_class"]["bulk"]),
                "control_msgs": stats_flow["control_messages"],
            }
        )
    return rows


def test_flowsched_closes_alltoall_gap(run_once, quick):
    node_counts = (8,) if quick else (4, 8, 16)
    nbytes = 16 * MB
    rows = run_once(alltoall_flowsched_rows, node_counts=node_counts, nbytes=nbytes)
    print()
    print(
        format_table(
            "Alltoall: flow-scheduled vs sequential transport",
            rows,
            [
                "nodes",
                "flowsched",
                "sequential",
                "x_bound_flow",
                "x_bound_seq",
                "uplink_util",
                "bulk_bytes",
                "control_msgs",
            ],
        )
    )
    for row in rows:
        # Flow scheduling closes the gap to the pipelined bound at scale and
        # never loses to sequential acquisition there.  (At 4 nodes the
        # 3-flow matchings leave schedule-dependent tail slack, so the small
        # cluster is report-only.)
        if row["nodes"] >= 8:
            assert row["flowsched"] <= row["sequential"] * 1.01, row
            assert row["x_bound_flow"] <= 1.2, row
        # Per-flow accounting sees the exchanged bulk bytes: every pair moves
        # nbytes across exactly one uplink.
        assert row["bulk_bytes"] > 0, row
        assert row["control_msgs"] > 0, row
