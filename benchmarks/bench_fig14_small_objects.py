"""Figure 14 (Appendix A): collective microbenchmarks on small objects.

Paper: objects under 64 KB are cached inline in Hoplite's object directory,
so there is no collective communication to speak of; Hoplite is the best or
close to the best, and clearly ahead of Ray and Dask.
"""

from repro.bench.experiments import KB, fig14_small_objects
from repro.bench.reporting import format_table

COLUMNS = [
    "primitive",
    "size",
    "nodes",
    "hoplite",
    "openmpi",
    "gloo",
    "gloo_ring_chunked",
    "gloo_halving_doubling",
    "ray",
    "dask",
]


def test_fig14_small_objects(run_once):
    rows = run_once(fig14_small_objects, sizes=(KB, 32 * KB), node_counts=(4, 8, 16))
    print()
    print(format_table("Figure 14: small-object collective latency (seconds)", rows, COLUMNS))

    for row in rows:
        # Hoplite's directory fast path keeps it well ahead of Ray and Dask.
        assert row["hoplite"] < row["ray"], row
        assert row["hoplite"] < row["dask"], row
        # Small-object latencies are all sub-10ms for Hoplite.
        assert row["hoplite"] < 0.05, row
