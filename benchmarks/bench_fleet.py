"""The multi-tenant fleet scenario under the observability plane.

Runs the fleet of :mod:`repro.bench.fleet` — 24 concurrent
training/serving/MoE/RL jobs from two tenants on a 4-rack oversubscribed
fabric — with metrics and tracing on, prints the SLO verdict table and the
congestion/latency correlation, and writes the full metrics registry (with
its simulated-time series) as a JSON artifact for CI to upload.

Also pins the export contract: the quick fleet's Prometheus text exposition
is deterministic under a fixed seed (two in-process runs render
byte-identically) and its family/label-name sets stay frozen.

Standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick] [--out FILE]
"""

import json
import os
import pathlib

#: where the metrics JSON artifact lands unless FLEET_METRICS_OUT overrides.
DEFAULT_ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "fleet_metrics.json"

#: where the critical-path blame artifact lands unless FLEET_CRITPATH_OUT
#: overrides (uploaded next to the metrics artifact in CI).
DEFAULT_CRITPATH_ARTIFACT = (
    pathlib.Path(__file__).resolve().parent.parent / "fleet_critpath.json"
)

#: the export contract: family name -> label names, as rendered by the quick
#: fleet.  A new metric or label is a deliberate schema change — update this
#: set (and the ROADMAP taxonomy notes) in the same commit.
EXPECTED_FAMILIES = {
    "control_messages": ["link", "tier"],
    "control_plane_ops": ["op"],
    "fastpath_events": ["kind"],
    "fleet_job_ops": ["tenant", "job", "op"],
    "fleet_op_latency_seconds": ["tenant", "op", "size"],
    "link_bytes": ["link", "tier", "cls"],
    "link_grant_wait_seconds": ["cls"],
    "link_queue_depth": ["link", "tier"],
    "sim_events": [],
}


def _artifact_path() -> pathlib.Path:
    return pathlib.Path(os.environ.get("FLEET_METRICS_OUT", DEFAULT_ARTIFACT))


def _critpath_artifact_path() -> pathlib.Path:
    return pathlib.Path(
        os.environ.get("FLEET_CRITPATH_OUT", DEFAULT_CRITPATH_ARTIFACT)
    )


def _run_and_report(quick: bool) -> dict:
    from repro.bench.fleet import run_fleet
    from repro.obs.critpath import format_blame_table
    from repro.obs.export import format_slo_table, to_json

    result = run_fleet(quick=quick, trace_transfers=True)
    print()
    print(
        f"fleet: {len(result.specs)} jobs, {len(result.completions)} completed, "
        f"peak concurrency {result.peak_concurrency}, "
        f"makespan {result.duration * 1e3:.2f} ms (simulated)"
    )
    print(format_slo_table(result.slo_rows))
    print(
        "congestion vs latency (windowed tier bytes ~ windowed mean op latency): "
        f"r = {result.congestion_latency_r:.3f}"
    )
    print()
    print("critical-path blame (why each cell spent its time):")
    print(format_blame_table(result.blame_rows))
    artifact = {
        "quick": quick,
        "jobs": len(result.specs),
        "peak_concurrency": result.peak_concurrency,
        "makespan_sim_s": result.duration,
        "congestion_latency_r": result.congestion_latency_r,
        "slo": [
            {
                "tenant": row.tenant,
                "op": row.op,
                "size": row.size,
                "count": row.count,
                "p50": row.p50,
                "p99": row.p99,
                "p50_target": row.p50_target,
                "p99_target": row.p99_target,
                "verdict": row.verdict,
            }
            for row in result.slo_rows
        ],
        "blame": [row.as_dict() for row in result.blame_rows],
        "metrics": to_json(
            result.obs.registry, fastpath_stats=result.cluster.fastpath_stats
        ),
    }
    path = _artifact_path()
    path.write_text(json.dumps(artifact) + "\n")
    print(f"metrics artifact: {path}")
    critpath_artifact = {
        "quick": quick,
        "table": format_blame_table(result.blame_rows),
        "cells": [row.as_dict() for row in result.blame_rows],
        "ops": [blame.as_dict() for blame in result.op_blames],
    }
    critpath_path = _critpath_artifact_path()
    critpath_path.write_text(json.dumps(critpath_artifact) + "\n")
    print(f"critical-path artifact: {critpath_path}")
    return artifact


def test_fleet_scenario(run_once, quick):
    """The fleet completes, every SLO cell reports, congestion correlates."""
    artifact = run_once(_run_and_report, quick)

    assert artifact["jobs"] >= 24
    assert artifact["peak_concurrency"] >= (8 if quick else 24)
    rows = artifact["slo"]
    # Every (tenant, op) cell of the two-tenant four-op fleet reported.
    assert {(row["tenant"], row["op"]) for row in rows} == {
        (tenant, op)
        for tenant in ("prod", "batch")
        for op in ("allreduce", "broadcast", "gather", "alltoall")
    }
    for row in rows:
        assert row["count"] > 0 and row["p50"] > 0.0 and row["p99"] >= row["p50"]
    # Contention is visible in the recorded series: windows with more bytes
    # on the shared tiers are windows with slower collectives.
    assert artifact["congestion_latency_r"] is not None
    assert artifact["congestion_latency_r"] > 0.3
    # The blame table covers the same 8 (tenant, op) cells the SLO table
    # scores, and each cell's categories partition its critical-path time.
    blame = artifact["blame"]
    assert {(cell["tenant"], cell["op"]) for cell in blame} == {
        (row["tenant"], row["op"]) for row in rows
    }
    for cell in blame:
        assert cell["count"] > 0 and cell["total"] > 0.0
        total_categories = sum(cell["categories"].values())
        assert abs(total_categories - cell["total"]) <= 1e-9 * max(1.0, cell["total"])


def test_fleet_blame_table_is_deterministic(run_once):
    """Same seed -> byte-identical blame table, exact per-op partitions."""
    from repro.bench.fleet import run_fleet
    from repro.obs.critpath import format_blame_table
    from repro.store.objects import reset_id_counter

    def _table():
        reset_id_counter()
        result = run_fleet(
            num_jobs=24, num_racks=2, nodes_per_rack=4, quick=True,
            trace_transfers=True,
        )
        return format_blame_table(result.blame_rows), result

    def _both():
        first, _ = _table()
        second, result = _table()
        return first, second, result

    first, second, result = run_once(_both)
    assert first == second, "blame table is not deterministic"
    assert len(result.blame_rows) == 8
    for blame in result.op_blames:
        total = sum(blame.categories.values())
        assert abs(total - blame.length) <= 1e-9 * max(1.0, blame.length)


def test_fleet_prometheus_export_is_golden(run_once):
    """Same seed, same fabric -> byte-identical export, frozen label sets."""
    from repro.bench.fleet import run_fleet
    from repro.obs.export import to_prometheus
    from repro.store.objects import reset_id_counter

    def _export() -> str:
        reset_id_counter()
        result = run_fleet(
            num_jobs=24, num_racks=2, nodes_per_rack=4, quick=True
        )
        return to_prometheus(result.obs.registry), result.obs.registry

    def _both():
        first, _ = _export()
        second, registry = _export()
        return first, second, registry

    first, second, registry = run_once(_both)
    assert first == second, "Prometheus export is not deterministic"
    families = {
        family.name: list(family.label_names)
        for family in registry.sorted_families()
    }
    assert families == EXPECTED_FAMILIES
    # Exposition-format sanity on the rendered text itself.
    assert "# TYPE link_bytes_total counter" in first
    assert "# TYPE fleet_op_latency_seconds summary" in first
    assert 'quantile="0.99"' in first


if __name__ == "__main__":
    import sys

    if "--out" in sys.argv:
        os.environ["FLEET_METRICS_OUT"] = sys.argv[sys.argv.index("--out") + 1]
    _run_and_report(quick="--quick" in sys.argv)
