"""Figure 7: broadcast / gather / reduce / allreduce latency, 1 MB - 1 GB.

Paper: Hoplite and OpenMPI lead broadcast and reduce; gather is similar
across systems (receiver-bound); Gloo's ring-chunked allreduce is the best
allreduce for large objects; Ray and Dask trail everything by a wide margin
because they have no collective support.

Scale-out rows: the full grid adds a 64-node row at the bandwidth-bound
sizes, and a 256-node smoke pins the pipeline bounds at fleet scale — both
affordable because the coalesced-transfer fast path simulates uncontended
block chains in O(1) events per hop (quick mode keeps CI to one size).
"""

from repro.bench.experiments import GB, MB, fig7_collectives
from repro.bench.reporting import format_table
from repro.bench.scenarios import measure_broadcast, measure_reduce

COLUMNS = [
    "primitive",
    "size",
    "nodes",
    "hoplite",
    "openmpi",
    "gloo",
    "gloo_ring_chunked",
    "gloo_halving_doubling",
    "ray",
    "dask",
    "optimal",
    "x_optimal",
    "rack_frac",
    "zone_frac",
]


def _grid_with_scaleout():
    """The paper's 4/8/16-node grid plus the 64-node bandwidth-bound row."""
    rows = fig7_collectives(sizes=(MB, 32 * MB, GB), node_counts=(4, 8, 16))
    rows += fig7_collectives(sizes=(32 * MB, GB), node_counts=(64,))
    return rows


def test_fig7_collectives(run_once, quick):
    if quick:
        rows = run_once(fig7_collectives, sizes=(32 * MB,), node_counts=(8, 64))
    else:
        rows = run_once(_grid_with_scaleout)
    print()
    print(format_table("Figure 7: collective latency (seconds)", rows, COLUMNS))

    # Ratio-to-pipelined-optimal is reported per collective (x_optimal); for
    # the bandwidth-bound sizes Hoplite should track its analytical bound.
    for row in rows:
        assert row["x_optimal"] > 0, row
        if row["size"] == "1GB" and row["primitive"] in ("broadcast", "reduce"):
            assert row["x_optimal"] <= 1.5, row
        # Figure 7 runs on the default flat fabric: no shared tier link
        # exists, so the per-tier ratio columns must be identically zero.
        assert row["rack_frac"] == 0.0 and row["zone_frac"] == 0.0, row

    def rows_for(primitive):
        return [row for row in rows if row["primitive"] == primitive]

    # Broadcast, reduce, allreduce: Hoplite beats the naive task systems.  At
    # 1 MB the operations are latency-bound and the gap narrows (as in the
    # paper's Figure 7 top row), so the margin requirement scales with size.
    for primitive in ("broadcast", "reduce", "allreduce"):
        for row in rows_for(primitive):
            if row["size"] == "1MB":
                assert row["hoplite"] <= row["ray"] * 1.10, (primitive, row)
            else:
                assert row["hoplite"] < row["ray"], (primitive, row)
            assert row["hoplite"] < row["dask"], (primitive, row)

    # Broadcast: Hoplite is competitive with OpenMPI (within 2x either way).
    for row in rows_for("broadcast"):
        assert row["hoplite"] <= row["openmpi"] * 2.0

    # Allreduce at 1 GB: Gloo ring-chunked is the fastest static algorithm and
    # Hoplite stays within ~2.5x of it (the paper reports 12-24% on training).
    for row in rows_for("allreduce"):
        if row["size"] == "1GB":
            assert row["gloo_ring_chunked"] <= row["hoplite"] * 1.5
            assert row["hoplite"] <= row["gloo_ring_chunked"] * 2.5


def test_fig7_fleet_smoke_256_nodes(run_once):
    """256-node pipeline smoke: chain-shaped collectives track the chain bound.

    At fleet scale the receiver-driven broadcast and the degree-1 reduce run
    as depth-255 block-pipelined chains, so the analytical completion time is
    ``S/B + (n-1) * (block/B + L)`` — the serialization time plus one block
    of pipeline lag per hop (reduce adds its per-hop combine time).  Both
    must stay within 15% of that bound.  Affordable at this scale only
    because the coalesced fast path collapses each hop to O(1) events.
    """
    from repro.net.config import NetworkConfig

    def _run():
        return {
            "broadcast": measure_broadcast("hoplite", 256, 256 * MB),
            "reduce": measure_reduce("hoplite", 256, 256 * MB),
        }

    results = run_once(_run)
    config = NetworkConfig()
    nbytes, hops = 256 * MB, 255
    block_lag = config.block_size / config.bandwidth + config.latency
    chain_bound = {
        "broadcast": nbytes / config.bandwidth + hops * block_lag,
        "reduce": nbytes / config.bandwidth
        + hops * (block_lag + config.block_size / config.reduce_block_compute_bandwidth),
    }
    print()
    for primitive, latency in results.items():
        bound = chain_bound[primitive]
        print(f"  256-node {primitive}: {latency:.4f}s ({latency / bound:.3f}x chain bound)")
        assert latency <= 1.15 * bound, (primitive, latency, bound)
