"""Figure 7: broadcast / gather / reduce / allreduce latency, 1 MB - 1 GB.

Paper: Hoplite and OpenMPI lead broadcast and reduce; gather is similar
across systems (receiver-bound); Gloo's ring-chunked allreduce is the best
allreduce for large objects; Ray and Dask trail everything by a wide margin
because they have no collective support.
"""

from repro.bench.experiments import GB, MB, fig7_collectives
from repro.bench.reporting import format_table

COLUMNS = [
    "primitive",
    "size",
    "nodes",
    "hoplite",
    "openmpi",
    "gloo",
    "gloo_ring_chunked",
    "gloo_halving_doubling",
    "ray",
    "dask",
    "optimal",
    "x_optimal",
    "rack_frac",
    "zone_frac",
]


def test_fig7_collectives(run_once):
    rows = run_once(fig7_collectives, sizes=(MB, 32 * MB, GB), node_counts=(4, 8, 16))
    print()
    print(format_table("Figure 7: collective latency (seconds)", rows, COLUMNS))

    # Ratio-to-pipelined-optimal is reported per collective (x_optimal); for
    # the bandwidth-bound sizes Hoplite should track its analytical bound.
    for row in rows:
        assert row["x_optimal"] > 0, row
        if row["size"] == "1GB" and row["primitive"] in ("broadcast", "reduce"):
            assert row["x_optimal"] <= 1.5, row
        # Figure 7 runs on the default flat fabric: no shared tier link
        # exists, so the per-tier ratio columns must be identically zero.
        assert row["rack_frac"] == 0.0 and row["zone_frac"] == 0.0, row

    def rows_for(primitive):
        return [row for row in rows if row["primitive"] == primitive]

    # Broadcast, reduce, allreduce: Hoplite beats the naive task systems.  At
    # 1 MB the operations are latency-bound and the gap narrows (as in the
    # paper's Figure 7 top row), so the margin requirement scales with size.
    for primitive in ("broadcast", "reduce", "allreduce"):
        for row in rows_for(primitive):
            if row["size"] == "1MB":
                assert row["hoplite"] <= row["ray"] * 1.10, (primitive, row)
            else:
                assert row["hoplite"] < row["ray"], (primitive, row)
            assert row["hoplite"] < row["dask"], (primitive, row)

    # Broadcast: Hoplite is competitive with OpenMPI (within 2x either way).
    for row in rows_for("broadcast"):
        assert row["hoplite"] <= row["openmpi"] * 2.0

    # Allreduce at 1 GB: Gloo ring-chunked is the fastest static algorithm and
    # Hoplite stays within ~2.5x of it (the paper reports 12-24% on training).
    for row in rows_for("allreduce"):
        if row["size"] == "1GB":
            assert row["gloo_ring_chunked"] <= row["hoplite"] * 1.5
            assert row["hoplite"] <= row["gloo_ring_chunked"] * 2.5
