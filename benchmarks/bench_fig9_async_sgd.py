"""Figure 9: asynchronous parameter-server training throughput.

Paper: Hoplite speeds up async SGD over Ray by up to 7.8x (AlexNet, 16
nodes); the gain grows with the cluster size and with the model size because
the parameter server's NIC is the bottleneck under plain Ray.
"""

from repro.bench.experiments import fig9_async_sgd
from repro.bench.reporting import format_table

COLUMNS = ["nodes", "model", "hoplite", "ray", "speedup"]


def test_fig9_async_sgd(run_once):
    rows = run_once(
        fig9_async_sgd,
        models=("alexnet", "vgg16", "resnet50"),
        node_counts=(8, 16),
        num_iterations=4,
    )
    print()
    print(format_table("Figure 9: async SGD throughput (samples/s)", rows, COLUMNS))

    by_key = {(row["nodes"], row["model"]): row for row in rows}
    # Hoplite wins everywhere.
    for row in rows:
        assert row["speedup"] > 1.3, row
    # The speedup grows with the cluster size for every model.
    for model in ("alexnet", "vgg16", "resnet50"):
        assert by_key[(16, model)]["speedup"] > by_key[(8, model)]["speedup"], model
    # Large models (AlexNet/VGG) benefit more than the small ResNet-50.
    assert by_key[(16, "alexnet")]["speedup"] > by_key[(16, "resnet50")]["speedup"]
