"""Figure 13: synchronous data-parallel training throughput.

Paper: Hoplite roughly matches OpenMPI, is 12-24% slower than Gloo's
ring-chunked allreduce (ring allreduce is more bandwidth efficient than
reduce + broadcast), and is far faster than plain Ray.
"""

from repro.bench.experiments import fig13_sync_training
from repro.bench.reporting import format_table

COLUMNS = ["nodes", "model", "hoplite", "openmpi", "gloo", "ray"]


def test_fig13_sync_training(run_once):
    rows = run_once(
        fig13_sync_training,
        models=("alexnet", "vgg16", "resnet50"),
        node_counts=(8, 16),
        num_rounds=3,
    )
    print()
    print(format_table("Figure 13: synchronous training throughput (samples/s)", rows, COLUMNS))

    for row in rows:
        # Hoplite beats plain Ray by a wide margin.
        assert row["hoplite"] > row["ray"] * 2.0, row
        # Gloo's ring-chunked allreduce is the best, but Hoplite stays within ~40%.
        assert row["gloo"] >= row["hoplite"] * 0.95, row
        assert row["hoplite"] >= row["gloo"] * 0.6, row
        # Hoplite is comparable to OpenMPI (within 40% either way).
        assert 0.6 <= row["hoplite"] / row["openmpi"] <= 1.4, row
