"""Observe a multi-tenant fleet: metrics, SLO verdicts, and a trace.

Run with::

    PYTHONPATH=src python examples/fleet_observability.py

The example runs the 24-job fleet of :mod:`repro.bench.fleet` — training,
serving, MoE, and RL jobs from two tenants arriving open-loop on a 4-rack
oversubscribed fabric — with the observability plane enabled, then shows
what the plane recorded: the SLO verdict table, the congestion-vs-latency
correlation computed from the windowed series, the hottest links, per-class
admission waits, an excerpt of the Prometheus exposition any scraper would
ingest — and, from the host-side layer, where the *wall clock* went
(per-subsystem kernel blame + the projected parallel-kernel speedup bound)
and a Chrome-trace export loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import repro.net.cluster as cluster_mod
from repro.bench.fleet import run_fleet
from repro.obs import (
    dump_chrome_trace,
    format_hostprof_table,
    format_locality_report,
    format_slo_table,
    to_prometheus,
)
from repro.obs.critpath import format_blame_table

MB = 1024 * 1024


def main() -> None:
    # Everything below reads the *simulated* clock except the host profiler
    # — enable it (plus the locality analyzer and the flight recorder the
    # Chrome trace draws on) on the fleet's cluster as it is built.
    def _on_create(cluster) -> None:
        cluster.enable_host_profiler()
        cluster.enable_locality_analyzer()
        cluster.enable_flight_recorder()

    cluster_mod.ON_CREATE = _on_create
    try:
        result = run_fleet(trace_transfers=True)
    finally:
        cluster_mod.ON_CREATE = None
    obs = result.obs
    registry = obs.registry

    print(
        f"fleet: {len(result.specs)} jobs over {result.duration * 1e3:.1f} ms "
        f"(simulated), peak concurrency {result.peak_concurrency}"
    )

    print("\n== SLO verdicts (exact p50/p99 per tenant x op x size) ==")
    print(format_slo_table(result.slo_rows))

    print(
        "\ncongestion vs latency: Pearson r = "
        f"{result.congestion_latency_r:.3f} between per-window shared-tier "
        "bytes and per-window mean op latency"
    )

    print("\n== critical-path blame (why each SLO cell spent its time) ==")
    # The SLO table above says *which* cells are slow; the profiler walks
    # each op's causal chain backward (grants, transmissions, propagation,
    # reduce compute, failure detection, retries) and partitions its wall
    # time into the seven blame categories — the columns below sum to 100%
    # of each cell's critical-path seconds.
    print(format_blame_table(result.blame_rows))
    worst = max(
        result.blame_rows, key=lambda row: row.total / row.count if row.count else 0.0
    )
    category, share = worst.top_category()
    diagnosis = f"{share * 100.0:.0f}% {category}"
    top_link = worst.top_link()
    if top_link is not None and category in ("grant_wait", "tx"):
        diagnosis += f", mostly on {top_link}"
    print(
        f"\n  walkthrough: the slowest cell per op is ({worst.tenant}, {worst.op})"
        f" — {diagnosis}."
    )
    print(
        "  grant_wait points at admission contention (add capacity or"
        " reschedule), tx at serialization (bigger pipelining blocks),"
        " straggler at untraced waits (peers arriving late)."
    )

    print("\n== hottest link directions ==")
    link_bytes = registry.families["link_bytes"]
    totals: dict[tuple, float] = {}
    for child in link_bytes.children.values():
        link, tier, _cls = child.label_values
        totals[(link, tier)] = totals.get((link, tier), 0.0) + child.value
    for (link, tier), total in sorted(totals.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  {link:12s} [{tier:9s}] {total / MB:10.1f} MB")

    print("\n== admission wait by flow class (grant-wait histograms) ==")
    waits = registry.families["link_grant_wait_seconds"]
    for child in waits.sorted_children():
        if child.count:
            print(
                f"  {child.label_values[0]:15s} n={child.count:6d} "
                f"p50={child.percentile(50) * 1e6:9.1f}us "
                f"p99={child.percentile(99) * 1e6:9.1f}us"
            )

    print("\n== one transfer trace (block spans of the busiest trace) ==")
    traces = obs.tracer.traces()
    trace_id, spans = max(traces.items(), key=lambda kv: len(kv[1]))
    print(f"  trace {trace_id}: {len(spans)} spans; first three:")
    for span in spans[:3]:
        print(
            f"    {span.name} [{span.start * 1e3:.3f}ms..{span.end * 1e3:.3f}ms]"
            f" {span.status} {span.attrs.get('flow', '')}"
        )

    print("\n== Prometheus exposition excerpt ==")
    text = to_prometheus(registry)
    shown = 0
    for line in text.splitlines():
        if line.startswith(("# TYPE", "fleet_op_latency_seconds{")):
            print(" ", line)
            shown += 1
            if shown >= 18:
                break
    print(f"  ... ({len(text.splitlines())} lines total)")

    # -- where does the WALL clock go? ------------------------------------
    # Everything above is simulated time: what the modeled cluster did.
    # The host profiler answers a different question — which kernel
    # subsystem burned the real CPU seconds this run cost.  These numbers
    # use the host clock (stamped clock="host", exempt from the
    # bit-identical discipline) and change nothing simulated: the
    # --hostprof differential fuzz band proves the digests are identical
    # with profiling on or off.
    cluster = result.cluster
    print("\n== wall-clock blame (host clock, per kernel subsystem) ==")
    print(format_hostprof_table(cluster.hostprof.report()))
    print(
        "  'dispatch' is event pop + un-instrumented callback time;"
        " admission/directory/flowsched are the contended control paths"
        " a parallel kernel would have to shard."
    )

    # The locality analyzer is the go/no-go oracle for that sharding
    # (ROADMAP item 3): how many events are provably rack-local within the
    # conservative-PDES lookahead window, how often partitions would have
    # to synchronize, and the resulting speedup *bound* per partition count
    # (an upper bound: barrier overhead is not priced in).
    print("\n== event locality / projected PDES speedup bound ==")
    print(format_locality_report(cluster.locality.report()))

    # -- inspect the run in a real trace viewer ---------------------------
    # Spans (one track per rank), the flight recorder's grant/release/
    # arrive timeline (one track per link direction), and queue-depth
    # counter tracks, in Chrome Trace Event JSON.  Open the file at
    # https://ui.perfetto.dev or chrome://tracing.
    trace_doc = dump_chrome_trace(
        "fleet_trace.json", obs=obs, flight=cluster.flight
    )
    print(
        f"\nChrome trace written to fleet_trace.json "
        f"({len(trace_doc['traceEvents'])} events) — load it in Perfetto."
    )


if __name__ == "__main__":
    main()
