"""The paper's motivating workload: an asynchronous RL training loop (Figure 1b).

A trainer keeps a 64 MB policy.  Eight workers produce gradients at their own
pace; every step the trainer reduces the first batch of gradients to become
ready, updates the policy, and broadcasts the new policy to exactly the
workers whose gradients were consumed.  The same driver code runs over
Hoplite and over a Ray-style naive plane, so the printout shows where the
speedup comes from.

Run with::

    python examples/asynchronous_rl_loop.py
"""

from __future__ import annotations

from repro.apps import run_rl_training


def main() -> None:
    num_nodes = 9  # one trainer + eight workers
    iterations = 6
    print(f"A3C-style asynchronous training, {num_nodes - 1} workers, {iterations} steps")
    print("=" * 72)
    results = {}
    for system in ("hoplite", "ray"):
        result = run_rl_training(
            num_nodes, algorithm="a3c", system=system, num_iterations=iterations
        )
        results[system] = result
        latencies = ", ".join(f"{latency * 1e3:.0f}" for latency in result.iteration_latencies)
        print(f"{system:>8}: {result.throughput:7.1f} samples/s   per-step latency (ms): {latencies}")
    speedup = results["hoplite"].throughput / results["ray"].throughput
    print("-" * 72)
    print(
        f"Hoplite speeds up the loop by {speedup:.1f}x: the trainer no longer has to "
        "receive every gradient and send every policy copy itself."
    )


if __name__ == "__main__":
    main()
