"""Topology-aware collectives on an oversubscribed 4-rack cluster.

Run with::

    python examples/oversubscribed_cluster.py

The example builds a 16-node fabric — 4 racks of 4 nodes, each rack's ToR
uplink oversubscribed 4:1, racks split over 2 zones — then broadcasts 32 MB
and allreduces 32 MB with topology awareness on and off.  Receivers arrive
interleaved across racks (placement uncorrelated with node ids), which is
where oblivious broadcast chains scatter their edges across the shared tier
links.  The per-tier flow report shows where the bytes went.
"""

from __future__ import annotations

from repro import HopliteOptions, NetworkConfig, Topology
from repro.bench.scenarios import (
    measure_allreduce,
    measure_broadcast,
    rack_interleaved_delays,
)

MB = 1024 * 1024
NUM_RACKS = 4
NODES_PER_RACK = 4
NUM_NODES = NUM_RACKS * NODES_PER_RACK


def main() -> None:
    topology = Topology.racks(
        NUM_RACKS,
        NODES_PER_RACK,
        oversubscription=4.0,          # each ToR uplink carries 1/4 of the rack NICs
        zones=(0, 0, 1, 1),            # two zones joined by an aggregation tier
        rack_latency=5.0e-5,           # extra hop per cross-rack transfer
        zone_latency=1.0e-4,           # and one more across zones
    )
    network = NetworkConfig(topology=topology)
    delays = rack_interleaved_delays(NUM_RACKS, NODES_PER_RACK)
    print(
        f"fabric: {NUM_RACKS} racks x {NODES_PER_RACK} nodes, "
        f"4:1 ToR oversubscription, {topology.num_zones} zones"
    )

    for primitive, measure, arrival in (
        ("broadcast", measure_broadcast, delays[1:]),
        ("allreduce", measure_allreduce, delays),
    ):
        stats: dict = {}
        aware = measure(
            "hoplite",
            NUM_NODES,
            32 * MB,
            arrival_delays=arrival,
            network=network,
            options=HopliteOptions(topology_aware=True),
            flow_stats=stats,
        )
        oblivious = measure(
            "hoplite",
            NUM_NODES,
            32 * MB,
            arrival_delays=arrival,
            network=network,
            options=HopliteOptions(topology_aware=False),
        )
        tiers = stats["tier_bytes"]
        print(f"\n{primitive}, 32 MB, interleaved arrivals:")
        print(f"  topology-aware : {aware * 1e3:8.2f} ms")
        print(f"  oblivious      : {oblivious * 1e3:8.2f} ms  ({oblivious / aware:.2f}x slower)")
        print(
            "  aware fabric footprint: "
            f"{tiers['nic'] / MB:.0f} MB at the NICs, "
            f"{tiers['rack_uplink'] / MB:.0f} MB over ToR uplinks "
            f"({stats['cross_rack_fraction']:.0%} cross-rack), "
            f"{tiers['inter_zone'] / MB:.0f} MB across zones"
        )


if __name__ == "__main__":
    main()
