"""Control-plane recovery: kill a directory shard mid-collective, replay, finish.

An 8-node allgather runs through the collective orchestrator.  One third of
the way in, directory shard 0 is killed: every record it owns is wiped, and
requests to it park instead of erroring.  The shard's recovery task waits
out the failure-detection delay, replays its write-ahead log (checkpoint +
tail), passes a digest self-check against the pre-kill state, and answers
its parked backlog serially — the collective completes without a job
restart.  For contrast, the script also prints what a control plane
*without* WAL replay would cost: detection plus a full re-run from scratch.

Run with::

    python examples/control_plane_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, NetworkConfig, ObjectID, ObjectValue
from repro.collectives.plane import HoplitePlane
from repro.core.runtime import HopliteRuntime
from repro.store.objects import reset_id_counter
from repro.tasksys import CollectiveOrchestrator, CollectiveSpec, TaskSystem

MB = 1024 * 1024
NUM_NODES = 8
OBJECT_BYTES = 32 * MB
KILL_AT = 0.4
SHARD_ID = 2


def build():
    # Pin the process-global ObjectID counter so both runs of the script see
    # the same object-to-shard placement.
    reset_id_counter()
    cluster = Cluster(
        num_nodes=NUM_NODES, network=NetworkConfig(bandwidth=1.25e8)
    )
    runtime = HopliteRuntime(cluster)
    system = TaskSystem(cluster, HoplitePlane(runtime))
    orchestrator = CollectiveOrchestrator(system)
    ranks = list(range(NUM_NODES))
    sources = {i: ObjectID.unique(f"shard-demo-src{i}") for i in ranks}
    spec = CollectiveSpec.allgather(
        "shard-demo",
        ranks,
        sources,
        {
            sources[i]: ObjectValue.from_array(
                np.full(2, float(i + 1)), logical_size=OBJECT_BYTES
            )
            for i in ranks
        },
    )
    return cluster, runtime, orchestrator, spec


def run(kill: bool) -> float:
    cluster, runtime, orchestrator, spec = build()
    sim = cluster.sim
    directory = runtime.directory
    finish = {}

    def driver():
        outcome = yield from orchestrator.invoke(spec)
        finish["t"] = outcome.completion_time

    def killer():
        yield sim.timeout(KILL_AT)
        shard = directory.shards[SHARD_ID]
        print(
            f"[{sim.now:6.3f} s] *** killing directory shard {SHARD_ID} "
            f"({sum(1 for r in directory.records.values() if r.shard == SHARD_ID)} "
            f"records wiped, WAL holds {len(shard.wal.tail)} tail records) ***"
        )
        directory.fail_shard(SHARD_ID)

        yield shard.recovery_event
        print(
            f"[{sim.now:6.3f} s] shard {SHARD_ID} back: replayed "
            f"{shard.last_replay_applied} WAL records, "
            f"self-check={'passed' if shard.replay_self_check else 'n/a'}, "
            f"parked backlog of {shard.backlog} requests draining"
        )

    sim.process(driver())
    if kill:
        sim.process(killer())
    cluster.run(until=240.0)
    return finish["t"]


def main() -> None:
    baseline = run(kill=False)
    print(f"failure-free allgather completes at {baseline:.3f} s\n")

    recovered = run(kill=True)
    print(f"\nwith the shard kill, the collective completes at {recovered:.3f} s")

    # A control plane without WAL durability makes a directory loss job-fatal:
    # the launcher detects the death and reruns everything from scratch.
    config = NetworkConfig()
    static = KILL_AT + config.failure_detection_delay + baseline
    print(f"a static restart would have finished at  {static:.3f} s")
    print(
        f"replay-based recovery wins by {static - recovered:.3f} s "
        f"({(static - recovered) / static:.0%} of the restart path)"
    )


if __name__ == "__main__":
    main()
