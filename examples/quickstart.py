"""Quickstart: Put / Get / Reduce with Hoplite on a simulated cluster.

Run with::

    python examples/quickstart.py

The example builds a 4-node simulated cluster, stores a NumPy array on one
node, broadcasts it to the others (a Get per receiver — Hoplite turns that
into a dynamic broadcast tree), then reduces one gradient per node into a
single object and fetches the sum.
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, HopliteRuntime, ObjectID, ObjectValue, ReduceOp

MB = 1024 * 1024


def main() -> None:
    cluster = Cluster(num_nodes=4)
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim

    # --- broadcast: one Put, three Gets -----------------------------------
    weights_id = ObjectID.of("weights")
    weights = np.linspace(0.0, 1.0, num=8)
    receive_times: dict[int, float] = {}

    def producer():
        client = runtime.client(0)
        value = ObjectValue.from_array(weights, logical_size=64 * MB)
        yield from client.put(weights_id, value)
        print(f"[{sim.now * 1e3:8.2f} ms] node 0 finished Put of 64 MB weights")

    def consumer(node_id: int):
        client = runtime.client(node_id)
        value = yield from client.get(weights_id)
        receive_times[node_id] = sim.now
        assert np.allclose(value.as_array(), weights)
        print(f"[{sim.now * 1e3:8.2f} ms] node {node_id} received the weights")

    sim.process(producer())
    for node_id in (1, 2, 3):
        sim.process(consumer(node_id))
    cluster.run()

    # --- reduce: one gradient per node, summed into one object -------------
    gradient_ids = [ObjectID.of(f"grad-{node_id}") for node_id in range(4)]
    target_id = ObjectID.of("grad-sum")

    def gradient_producer(node_id: int):
        client = runtime.client(node_id)
        gradient = np.full(8, float(node_id + 1))
        yield from client.put(
            gradient_ids[node_id],
            ObjectValue.from_array(gradient, logical_size=64 * MB),
        )

    def reducer():
        client = runtime.client(0)
        result = yield from client.reduce(target_id, gradient_ids, ReduceOp.SUM)
        value = yield from client.get(target_id)
        total = value.as_array()
        print(
            f"[{sim.now * 1e3:8.2f} ms] reduce done with a d={result.degree} tree "
            f"rooted on node {result.root_node_id}; sum per element = {total[0]:.0f}"
        )
        assert np.allclose(total, 1 + 2 + 3 + 4)

    for node_id in range(4):
        sim.process(gradient_producer(node_id))
    sim.process(reducer())
    cluster.run()

    print(f"total simulated time: {cluster.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
