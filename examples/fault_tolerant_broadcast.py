"""Fault-tolerant broadcast: a relay node dies mid-transfer and nobody hangs.

Node 0 puts a 256 MB object.  Three receivers fetch it at staggered times, so
Hoplite naturally relays the object through the earlier receivers.  Halfway
through, the first receiver (which is busy forwarding to the second) is
killed.  The remaining receivers re-resolve a healthy source through the
object directory, keep the blocks they already have, and finish the fetch —
the behaviour of Section 3.5.1 / Figure 4(c')-(d').

Run with::

    python examples/fault_tolerant_broadcast.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, HopliteRuntime, ObjectID, ObjectValue

MB = 1024 * 1024
OBJECT_BYTES = 256 * MB


def main() -> None:
    cluster = Cluster(num_nodes=4)
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    object_id = ObjectID.of("payload")
    payload = np.arange(16, dtype=np.float64)

    def producer():
        client = runtime.client(0)
        yield from client.put(
            object_id, ObjectValue.from_array(payload, logical_size=OBJECT_BYTES)
        )
        print(f"[{sim.now:6.3f} s] node 0 published the 256 MB object")

    def receiver(node_id: int, delay: float):
        yield sim.timeout(delay)
        client = runtime.client(node_id)
        print(f"[{sim.now:6.3f} s] node {node_id} starts Get")
        value = yield from client.get(object_id)
        assert np.allclose(value.as_array(), payload)
        print(f"[{sim.now:6.3f} s] node {node_id} finished Get")

    sim.process(producer())
    sim.process(receiver(1, delay=0.00))
    sim.process(receiver(2, delay=0.05))
    sim.process(receiver(3, delay=0.10))

    # Kill node 1 while it is (a) still receiving and (b) already relaying to
    # node 2.  Node 2 and node 3 must re-resolve their source and complete.
    cluster.schedule_failure(node_id=1, at=0.12)

    def narrator():
        yield sim.timeout(0.12)
        print(f"[{sim.now:6.3f} s] *** node 1 failed ***")

    sim.process(narrator())
    cluster.run()
    print(f"done at {cluster.now:.3f} s; surviving receivers hold correct data")


if __name__ == "__main__":
    main()
