"""Ensemble model serving with a failing replica (Sections 5.4-5.5).

Serves the paper's eight-model image-classification ensemble.  A replica is
killed part-way through and later rejoins; the per-query latency timeline is
printed for Hoplite and for the Ray-style plane, reproducing the qualitative
behaviour of Figure 12a: Ray's latency visibly drops while the replica is
down (one fewer copy of the query to push), Hoplite's barely moves, and both
recover when the replica rejoins and reloads its weights.

Run with::

    python examples/ensemble_serving.py
"""

from __future__ import annotations

from repro.apps import FailureSchedule, run_model_serving


def main() -> None:
    num_queries = 24
    failure = FailureSchedule(node_id=3, fail_at=1.2, recover_at=2.4)
    print("8-model ensemble, 8 nodes, one replica fails and rejoins")
    print("=" * 72)
    results = {}
    for system in ("hoplite", "ray"):
        result = run_model_serving(
            8, system=system, num_queries=num_queries, failure=failure
        )
        results[system] = result
        print(f"\n{system}: {result.throughput:.1f} queries/s")
        print("  query :  " + "  ".join(f"{index:5d}" for index in range(num_queries)))
        print(
            "  ms    :  "
            + "  ".join(f"{latency * 1e3:5.0f}" for latency in result.iteration_latencies)
        )
    print("-" * 72)
    speedup = results["hoplite"].throughput / results["ray"].throughput
    print(f"Hoplite serves {speedup:.1f}x more queries per second than the naive plane.")


if __name__ == "__main__":
    main()
