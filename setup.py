"""Setuptools entry point.

The project is configured through ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 660
editable installs (e.g. ``pip install -e . --no-use-pep517`` on an offline
machine without the ``wheel`` package).
"""

from setuptools import setup

setup()
