"""Microbenchmarks and exactness checks for coalesced block transfers.

Three properties pin the fast path (see ``net/coalesce``):

* **uncontended O(1)**: a multi-block transfer on idle, stream-exclusive
  links completes in O(1) simulator events per flow instead of O(blocks);
* **contested re-split**: the moment a competing flow claims a link, the
  run re-splits to per-block granularity — per-block interleaving and
  fair-share timing are *identical* to the reference per-block execution;
* **exactness everywhere**: completion times, per-link byte/busy
  accounting, and block-progress observations match the per-block
  reference bit for bit (the golden digests extend this to full scenarios).
"""

import pytest

from repro.net import coalesce
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass
from repro.net.transport import local_copy, transfer_bytes
from repro.store.objects import reset_id_counter

MB = 1024 * 1024


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_id_counter()
    yield
    coalesce.ENABLED = True


def _cluster(num_nodes=3):
    return Cluster(num_nodes=num_nodes, network=NetworkConfig())


def _drive_transfer(cluster, src, dst, nbytes, flow=None, start=0.0):
    sim = cluster.sim
    done = {}

    def _proc():
        if start:
            yield sim.timeout(start)
        yield from transfer_bytes(cluster.config, src, dst, nbytes, flow)
        done["t"] = sim.now

    sim.process(_proc(), name=f"xfer-{src.node_id}-{dst.node_id}")
    return done


def test_uncontended_transfer_is_o1_events():
    """16 blocks over an idle path: a handful of events, not ~5 per block."""
    cluster = _cluster()
    done = _drive_transfer(cluster, cluster.node(0), cluster.node(1), 64 * MB)
    cluster.run()
    events = cluster.sim.events_processed
    assert done["t"] > 0
    # Per-block this run costs ~80 events (5 per block); coalesced it is a
    # constant independent of the block count.
    assert events <= 12, events


def test_uncontended_transfer_time_matches_per_block_reference():
    coalesce.ENABLED = False
    ref_cluster = _cluster()
    ref = _drive_transfer(ref_cluster, ref_cluster.node(0), ref_cluster.node(1), 64 * MB)
    ref_cluster.run()

    coalesce.ENABLED = True
    fast_cluster = _cluster()
    fast = _drive_transfer(
        fast_cluster, fast_cluster.node(0), fast_cluster.node(1), 64 * MB
    )
    fast_cluster.run()

    assert fast["t"] == ref["t"]
    # Link accounting is replicated block by block: bytes AND busy time.
    for node_id in (0, 1):
        ref_up = ref_cluster.node(node_id).uplink_sched
        fast_up = fast_cluster.node(node_id).uplink_sched
        assert fast_up.bytes_by_class == ref_up.bytes_by_class
        assert fast_up.busy_time == ref_up.busy_time
        assert fast_up.reservations_granted == ref_up.reservations_granted


def _two_flow_times(enabled, stagger=0.01):
    """Two flows sharing node 0's uplink; the second arrives mid-run."""
    coalesce.ENABLED = enabled
    cluster = _cluster(3)
    flow_a = Flow("a", FlowClass.BULK)
    flow_b = Flow("b", FlowClass.BULK)
    done_a = _drive_transfer(cluster, cluster.node(0), cluster.node(1), 64 * MB, flow_a)
    done_b = _drive_transfer(
        cluster, cluster.node(0), cluster.node(2), 64 * MB, flow_b, start=stagger
    )
    cluster.run()
    scheds = {
        node.node_id: dict(node.uplink_sched.bytes_by_class)
        for node in cluster.nodes
    }
    return done_a["t"], done_b["t"], scheds, cluster.node(0).uplink_sched.busy_time


def test_contested_run_resplits_to_per_block_fair_share():
    """A competitor arriving mid-run forces a re-split: per-block interleaving
    and fair-share completion times are bit-identical to the reference."""
    ref = _two_flow_times(enabled=False)
    fast = _two_flow_times(enabled=True)
    assert fast == ref
    # The shared uplink really was time-shared: the first flow finishes later
    # than an uncontended run would (its tail interleaves with flow b).
    solo_cluster = _cluster()
    solo = _drive_transfer(solo_cluster, solo_cluster.node(0), solo_cluster.node(1), 64 * MB)
    solo_cluster.run()
    assert ref[0] > solo["t"]


def test_contested_run_with_simultaneous_start_matches_reference():
    """Both flows start at t=0: neither may coalesce past the other."""
    ref = _two_flow_times(enabled=False, stagger=0.0)
    fast = _two_flow_times(enabled=True, stagger=0.0)
    assert fast == ref


def test_local_copy_coalesces_and_matches_reference():
    results = {}
    for enabled in (False, True):
        coalesce.ENABLED = enabled
        cluster = _cluster(1)
        sim = cluster.sim
        done = {}

        def _proc():
            yield from local_copy(cluster.config, cluster.node(0), 64 * MB)
            done["t"] = sim.now

        sim.process(_proc(), name="copy")
        cluster.run()
        results[enabled] = (done["t"], sim.events_processed)
    assert results[True][0] == results[False][0]
    # 16 blocks: per-block pays ~2 events each, coalesced is O(1).
    assert results[True][1] <= 6, results[True][1]
    assert results[False][1] >= 30, results[False][1]


def test_pull_cascade_is_o1_events_per_hop():
    """A put feeding a chain of gets: every hop rides the arithmetic
    schedule of the hop above it (the relay cascade)."""
    from repro.core.runtime import HopliteRuntime
    from repro.store.objects import ObjectID, ObjectValue

    def _run(enabled):
        coalesce.ENABLED = enabled
        cluster = _cluster(4)
        runtime = HopliteRuntime(cluster)
        sim = cluster.sim
        object_id = ObjectID.of("chain-obj")
        finish = {}

        def _put():
            yield from runtime.client(cluster.node(0)).put(
                object_id, ObjectValue.of_size(64 * MB)
            )

        def _get(node_id):
            yield from runtime.client(cluster.node(node_id)).get(object_id)
            finish[node_id] = sim.now

        sim.process(_put(), name="put")
        for node_id in (1, 2, 3):
            sim.process(_get(node_id), name=f"get-{node_id}")
        cluster.run()
        return dict(finish), sim.events_processed

    ref_finish, ref_events = _run(False)
    fast_finish, fast_events = _run(True)
    assert fast_finish == ref_finish
    # 3 receivers x 16 blocks: the reference pays ~5 events per transferred
    # block; the cascade pays a small constant per hop.  The remaining floor
    # is the (unchanged) per-block Put copy-in and the directory RPCs.
    assert fast_events < ref_events * 0.5, (fast_events, ref_events)


def test_inflight_progress_is_readable_at_exact_times():
    """blocks_ready on a coalesced destination is exact at any instant."""
    from repro.core.runtime import HopliteRuntime
    from repro.store.objects import ObjectID, ObjectValue

    def _probe(enabled, at):
        coalesce.ENABLED = enabled
        cluster = _cluster(2)
        runtime = HopliteRuntime(cluster)
        sim = cluster.sim
        object_id = ObjectID.of("probe-obj")
        seen = {}

        def _put():
            yield from runtime.client(cluster.node(0)).put(
                object_id, ObjectValue.of_size(64 * MB)
            )

        def _get():
            yield from runtime.client(cluster.node(1)).get(object_id)

        def _prober():
            yield sim.timeout(at)
            entry = runtime.store(cluster.node(1)).try_get_entry(object_id)
            seen["ready"] = None if entry is None else entry.blocks_ready

        sim.process(_put(), name="put")
        sim.process(_get(), name="get")
        sim.process(_prober(), name="probe")
        cluster.run()
        return seen["ready"]

    for at in (0.05, 0.2, 0.31, 0.44):
        assert _probe(True, at) == _probe(False, at), at
