"""Tests for the cluster, nodes, failure injection, and failure schedules."""

import pytest

from repro.net import Cluster
from repro.net.failure import FailureEvent, alternating_failures, poisson_failures, schedule


def test_cluster_construction_and_accessors():
    cluster = Cluster(num_nodes=4)
    assert len(cluster) == 4
    assert [node.node_id for node in cluster] == [0, 1, 2, 3]
    assert cluster.node(2).node_id == 2
    assert cluster.now == 0.0
    assert len(cluster.alive_nodes()) == 4
    with pytest.raises(ValueError):
        Cluster(num_nodes=0)


def test_node_failure_and_recovery_listeners():
    cluster = Cluster(num_nodes=2)
    node = cluster.node(1)
    events = []
    node.on_failure(lambda n: events.append(("fail", n.node_id)))
    node.on_recovery(lambda n: events.append(("recover", n.node_id)))

    assert node.alive
    node.fail()
    node.fail()  # idempotent
    assert not node.alive
    node.recover()
    node.recover()  # idempotent
    assert node.alive
    assert node.incarnation == 1
    assert events == [("fail", 1), ("recover", 1)]


def test_failure_and_recovery_events():
    cluster = Cluster(num_nodes=2)
    node = cluster.node(0)
    sim = cluster.sim

    waited = {}

    def waiter(sim):
        yield node.failure_event()
        waited["failed_at"] = sim.now
        yield node.recovery_event()
        waited["recovered_at"] = sim.now

    sim.process(waiter(sim))
    cluster.schedule_failure(0, at=2.0, recover_at=5.0)
    cluster.run()
    assert waited["failed_at"] == pytest.approx(2.0)
    assert waited["recovered_at"] == pytest.approx(5.0)


def test_failure_event_on_already_failed_node_fires_immediately():
    cluster = Cluster(num_nodes=1)
    node = cluster.node(0)
    node.fail()
    assert node.failure_event().triggered
    node.recover()
    assert node.recovery_event().triggered


def test_schedule_failure_validation():
    cluster = Cluster(num_nodes=2)
    with pytest.raises(ValueError):
        cluster.schedule_failure(0, at=1.0, recover_at=0.5)
    cluster.run(until=5.0)
    with pytest.raises(ValueError):
        cluster.schedule_failure(0, at=1.0)


def test_schedule_failures_batch():
    cluster = Cluster(num_nodes=3)
    cluster.schedule_failures([(0, 1.0, 2.0), (1, 1.5, None)])
    cluster.run()
    assert cluster.node(0).alive
    assert not cluster.node(1).alive


def test_node_equality_and_repr():
    cluster = Cluster(num_nodes=2)
    assert cluster.node(0) == cluster.node(0)
    assert cluster.node(0) != cluster.node(1)
    assert "Node 0" in repr(cluster.node(0))


def test_poisson_failure_schedule_is_deterministic_and_bounded():
    events_a = poisson_failures([0, 1, 2], rate_per_second=0.5, horizon=20.0, downtime=1.0, seed=7)
    events_b = poisson_failures([0, 1, 2], rate_per_second=0.5, horizon=20.0, downtime=1.0, seed=7)
    assert events_a == events_b
    for event in events_a:
        assert 0 <= event.fail_at < 20.0
        assert event.recover_at == pytest.approx(event.fail_at + 1.0)
        assert event.node_id in (0, 1, 2)
    assert poisson_failures([0], rate_per_second=0.0, horizon=10.0, downtime=1.0) == []
    with pytest.raises(ValueError):
        poisson_failures([0], rate_per_second=-1, horizon=10, downtime=1)


def test_alternating_failures_round_robin():
    events = list(alternating_failures([1, 2], period=5.0, downtime=1.0, count=4, start=2.0))
    assert [event.node_id for event in events] == [1, 2, 1, 2]
    assert [event.fail_at for event in events] == [2.0, 7.0, 12.0, 17.0]
    with pytest.raises(ValueError):
        list(alternating_failures([1], period=0, downtime=1, count=1))


def test_schedule_helper_applies_events():
    cluster = Cluster(num_nodes=2)
    schedule(cluster, [FailureEvent(node_id=1, fail_at=1.0, recover_at=None)])
    cluster.run()
    assert not cluster.node(1).alive
