"""The multi-tenant fleet scenario and the plane's zero-interference pledge.

The load-bearing test here is the differential one: running the identical
fleet with and without the observability plane must produce byte-identical
simulated behaviour (who finished when).  Metrics recording and tracing
never schedule events, so the plane is pure measurement — the same pledge
the coalescing/convoy fuzz harness makes for the fast paths.
"""

from repro.bench.fleet import (
    TENANTS,
    build_fleet,
    congestion_latency_correlation,
    run_fleet,
    size_label,
)
from repro.net.flowsched import FlowClass
from repro.store.objects import reset_id_counter

#: a small fleet that still exercises every job kind and both tenants.
SMALL = dict(num_jobs=8, num_racks=2, nodes_per_rack=4, quick=True)


def _small_fleet(**overrides):
    reset_id_counter()
    return run_fleet(**{**SMALL, **overrides})


def test_size_label_buckets():
    assert size_label(256 * 1024) == "256KB"
    assert size_label(8 * 1024 * 1024) == "8MB"
    assert size_label(1000) == "1000B"


def test_build_fleet_is_deterministic_and_covers_the_matrix():
    specs = build_fleet(24, 32, seed=7)
    again = build_fleet(24, 32, seed=7)
    assert specs == again
    assert build_fleet(24, 32, seed=8) != specs
    # Every (tenant, kind) pair occurs, arrivals are strictly increasing,
    # and placements stay within the fabric.
    assert {(s.tenant.name, s.kind) for s in specs} == {
        (tenant.name, kind)
        for tenant in TENANTS
        for kind in ("training", "serving", "moe", "rl")
    }
    arrivals = [s.arrival for s in specs]
    assert arrivals == sorted(arrivals) and arrivals[0] > 0.0
    for spec in specs:
        assert len(set(spec.nodes)) == len(spec.nodes)
        assert all(0 <= nid < 32 for nid in spec.nodes)


def test_observability_does_not_change_the_simulation():
    """The same fleet, observed and unobserved, behaves identically."""
    observed = _small_fleet(observe=True, trace_transfers=True)
    unobserved = _small_fleet(observe=False)
    assert observed.digest() == unobserved.digest()
    # The unobserved run really had no plane (and hence no verdicts).
    assert unobserved.obs is None and unobserved.slo_rows == []
    assert observed.obs is not None and observed.slo_rows


def test_fleet_runs_deterministically_per_seed():
    assert _small_fleet().digest() == _small_fleet().digest()
    assert _small_fleet(seed=1).digest() != _small_fleet().digest()


def test_tenant_traffic_rides_its_flow_class():
    """prod fetches ride REDUCE_PARTIAL, batch rides BULK, on real links."""
    result = _small_fleet()
    family = result.obs.registry.families["link_bytes"]
    cls_idx = family.label_names.index("cls")
    by_class = {cls.name.lower(): 0.0 for cls in FlowClass}
    for child in family.children.values():
        by_class[child.label_values[cls_idx]] += child.value
    assert by_class["reduce_partial"] > 0.0, "prod traffic missing"
    assert by_class["bulk"] > 0.0, "batch traffic missing"
    # Control RPCs are counted as messages, not link bytes.
    control = result.obs.registry.families["control_messages"]
    assert sum(child.value for child in control.children.values()) > 0.0


def test_fleet_records_every_slo_cell_and_correlation():
    result = _small_fleet()
    assert len(result.completions) == 8
    assert result.peak_concurrency >= 2
    cells = {(row.tenant, row.op) for row in result.slo_rows}
    assert cells == {
        (tenant, op)
        for tenant in ("prod", "batch")
        for op in ("allreduce", "broadcast", "gather", "alltoall")
    }
    # The correlation is computed purely from recorded series.
    assert result.congestion_latency_r == congestion_latency_correlation(
        result.obs.registry
    )


def test_traced_fleet_links_transfers_to_jobs():
    result = _small_fleet(num_jobs=4, trace_transfers=True)
    spans = result.obs.tracer.spans
    blocks = [s for s in spans if s.name == "block"]
    assert blocks, "trace_transfers recorded no block spans"
    assert all(s.end is not None and s.end >= s.start for s in blocks)
    # Every block span carries the reservation's admission wait.
    assert all(s.attrs["grant_wait"] >= 0.0 for s in blocks)
    # Fast-path run spans agree with the cluster's counters (this small
    # fleet's transfers are too short to coalesce, so both are zero; the
    # positive case is pinned in test_obs.py on a long broadcast).
    runs = [s for s in spans if s.name == "coalesced_run"]
    stats = result.cluster.fastpath_stats
    assert (len(runs) > 0) == (
        stats["coalesced_runs"] + stats["members_enrolled"] > 0
    )
