"""Tests for the Ray/Dask-style naive communication plane."""

import numpy as np
import pytest

from repro.collectives import DASK_PROFILE, RAY_PROFILE, HoplitePlane, TaskSystemPlane, TaskSystemProfile
from repro.core import HopliteRuntime, ObjectID, ObjectValue, ReduceOp
from repro.net import Cluster, NetworkConfig

MB = 1024 * 1024


def test_profile_validation():
    with pytest.raises(ValueError):
        TaskSystemProfile(name="bad", per_op_overhead=-1, bandwidth_efficiency=1.0)
    with pytest.raises(ValueError):
        TaskSystemProfile(name="bad", per_op_overhead=0, bandwidth_efficiency=0.0)
    assert RAY_PROFILE.bandwidth_efficiency == 1.0
    assert DASK_PROFILE.bandwidth_efficiency < 1.0
    assert DASK_PROFILE.per_op_overhead > RAY_PROFILE.per_op_overhead


def run(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.run()
    assert process.ok, process.value
    return process.value


def test_naive_put_get_roundtrip_with_payload():
    cluster = Cluster(num_nodes=2)
    plane = TaskSystemPlane(cluster, RAY_PROFILE)
    payload = np.arange(8, dtype=np.float64)
    object_id = ObjectID.of("x")

    def scenario():
        yield from plane.put(cluster.node(0), object_id, ObjectValue.from_array(payload, logical_size=8 * MB))
        value = yield from plane.get(cluster.node(1), object_id)
        return value

    value = run(cluster, scenario())
    assert np.allclose(value.as_array(), payload)


def test_dask_is_slower_than_ray_for_large_transfers():
    elapsed = {}
    for profile in (RAY_PROFILE, DASK_PROFILE):
        cluster = Cluster(num_nodes=2)
        plane = TaskSystemPlane(cluster, profile)
        object_id = ObjectID.of("x")

        def scenario():
            yield from plane.put(cluster.node(0), object_id, ObjectValue.of_size(256 * MB))
            start = cluster.sim.now
            yield from plane.get(cluster.node(1), object_id)
            return cluster.sim.now - start

        elapsed[profile.name] = run(cluster, scenario())
    assert elapsed["dask"] > elapsed["ray"] * 1.5


def test_naive_reduce_gathers_at_caller_and_is_correct():
    cluster = Cluster(num_nodes=4)
    plane = TaskSystemPlane(cluster, RAY_PROFILE)
    source_ids = [ObjectID.of(f"s{i}") for i in range(4)]
    target_id = ObjectID.of("t")

    def scenario():
        for node_id in range(4):
            yield from plane.put(
                cluster.node(node_id),
                source_ids[node_id],
                ObjectValue.from_array(np.full(2, float(node_id + 1)), logical_size=8 * MB),
            )
        result = yield from plane.reduce(cluster.node(0), target_id, source_ids, ReduceOp.SUM)
        value = yield from plane.get(cluster.node(0), target_id)
        return result, value

    result, value = run(cluster, scenario())
    assert np.allclose(value.as_array(), 1 + 2 + 3 + 4)
    assert result.root_node_id == 0
    assert len(result.reduced_ids) == 4


def test_naive_reduce_subset_waits_for_first_available():
    cluster = Cluster(num_nodes=4)
    plane = TaskSystemPlane(cluster, RAY_PROFILE)
    source_ids = [ObjectID.of(f"s{i}") for i in range(4)]
    target_id = ObjectID.of("t")
    outcome = {}

    def producer(node_id, delay):
        yield cluster.sim.timeout(delay)
        yield from plane.put(
            cluster.node(node_id),
            source_ids[node_id],
            ObjectValue.from_array(np.full(2, float(node_id + 1)), logical_size=4 * MB),
        )

    def reducer():
        result = yield from plane.reduce(
            cluster.node(0), target_id, source_ids, ReduceOp.SUM, num_objects=2
        )
        outcome["reduced"] = sorted(o.key for o in result.reduced_ids)
        outcome["finish"] = cluster.sim.now

    for node_id, delay in enumerate((0.0, 0.05, 5.0, 5.0)):
        cluster.sim.process(producer(node_id, delay))
    cluster.sim.process(reducer())
    cluster.run()
    assert outcome["reduced"] == ["s0", "s1"]
    assert outcome["finish"] < 5.0


def test_naive_broadcast_is_sender_bound_hoplite_is_not():
    """Side-by-side: the same broadcast under the naive plane vs Hoplite."""
    nbytes = 64 * MB
    num_nodes = 8
    results = {}
    for label in ("ray", "hoplite"):
        cluster = Cluster(num_nodes=num_nodes)
        if label == "ray":
            plane = TaskSystemPlane(cluster, RAY_PROFILE)
        else:
            plane = HoplitePlane(HopliteRuntime(cluster))
        object_id = ObjectID.of("bcast")
        sim = cluster.sim
        finishes = []

        def scenario():
            yield from plane.put(cluster.node(0), object_id, ObjectValue.of_size(nbytes))
            epoch = sim.now

            def receiver(node_id):
                yield from plane.get(cluster.node(node_id), object_id)
                finishes.append(sim.now - epoch)

            yield sim.all_of([sim.process(receiver(n)) for n in range(1, num_nodes)])

        sim.process(scenario())
        cluster.run()
        results[label] = max(finishes)
    config = NetworkConfig()
    assert results["ray"] >= (num_nodes - 1) * config.transmission_time(nbytes) * 0.9
    assert results["hoplite"] < results["ray"] / 2


def test_naive_delete():
    cluster = Cluster(num_nodes=2)
    plane = TaskSystemPlane(cluster, RAY_PROFILE)
    object_id = ObjectID.of("x")

    def scenario():
        yield from plane.put(cluster.node(0), object_id, ObjectValue.of_size(MB))
        yield from plane.delete(cluster.node(0), object_id)
        return True

    assert run(cluster, scenario())
    assert object_id not in plane.runtime.store(0)
