"""MoE heterogeneous expert loads: skewed routing + capacity-factor dropping."""

import pytest

from repro.apps.moe import apply_capacity_factor, routing_matrix, run_moe_routing

MB = 1024 * 1024


def test_zero_skew_reproduces_the_uniform_exchange():
    route = routing_matrix(4, MB, expert_skew=0.0, iteration=0)
    assert set(route.values()) == {MB}
    assert len(route) == 4 * 3  # no self pairs


def test_skew_makes_block_sizes_non_uniform_but_conserves_the_batch():
    num_nodes, shard = 4, MB
    route = routing_matrix(num_nodes, shard, expert_skew=1.5, iteration=0)
    assert len(set(route.values())) > 1, "skewed routing should be non-uniform"
    batch = shard * (num_nodes - 1)
    for worker in range(num_nodes):
        sent = sum(route[(worker, e)] for e in range(num_nodes) if e != worker)
        # Integer truncation may shave a few bytes, never add any.
        assert batch - num_nodes <= sent <= batch


def test_skew_rotation_moves_the_hot_expert():
    def hottest(iteration):
        route = routing_matrix(4, MB, expert_skew=2.0, iteration=iteration)
        loads = {e: 0 for e in range(4)}
        for (_w, e), nbytes in route.items():
            loads[e] += nbytes
        return max(loads, key=loads.get)

    assert len({hottest(i) for i in range(4)}) > 1


def test_capacity_factor_drops_only_overflow():
    route = routing_matrix(4, MB, expert_skew=2.0, iteration=0)
    loads = {e: 0 for e in range(4)}
    for (_w, e), nbytes in route.items():
        loads[e] += nbytes
    mean = sum(loads.values()) / 4
    clamped, dropped = apply_capacity_factor(route, 4, capacity_factor=1.1)
    assert dropped > 0
    new_loads = {e: 0 for e in range(4)}
    for (_w, e), nbytes in clamped.items():
        new_loads[e] += nbytes
    for e in range(4):
        assert new_loads[e] <= 1.1 * mean + 4  # rounding slack
        if loads[e] <= 1.1 * mean:
            assert new_loads[e] == loads[e], "under-capacity experts keep all tokens"

    unlimited, none_dropped = apply_capacity_factor(route, 4, capacity_factor=None)
    assert unlimited == route and none_dropped == 0


def test_heterogeneous_moe_regression():
    """Skewed loads slow the iteration; capacity dropping claws time back."""
    uniform = run_moe_routing(4, "hoplite", num_iterations=2, shard_bytes=MB)
    skewed = run_moe_routing(
        4, "hoplite", num_iterations=2, shard_bytes=MB, expert_skew=1.5
    )
    capped = run_moe_routing(
        4,
        "hoplite",
        num_iterations=2,
        shard_bytes=MB,
        expert_skew=1.5,
        capacity_factor=1.2,
    )
    assert uniform.metrics["load_imbalance"] == pytest.approx(1.0)
    assert uniform.metrics["dropped_bytes"] == 0
    assert skewed.metrics["load_imbalance"] > 1.1
    assert skewed.metrics["dropped_bytes"] == 0
    # The hot expert's column dominates the exchange and its compute.
    assert skewed.duration > uniform.duration
    assert capped.metrics["dropped_bytes"] > 0
    assert capped.duration < skewed.duration


def test_bad_parameters_are_rejected():
    with pytest.raises(ValueError):
        run_moe_routing(4, "hoplite", expert_skew=-1.0)
    with pytest.raises(ValueError):
        apply_capacity_factor({}, 4, capacity_factor=0.0)
