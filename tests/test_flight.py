"""The deterministic flight recorder and divergence bisection.

Pins the recorder's own contracts (bounded ring, deterministic dump, the
per-cluster enable/disable lifecycle), the *observational* property — fuzz
scenarios run with recording on still digest-match their unrecorded runs,
and the fast-on / fast-off semantic timelines are identical — and the
property the subsystem exists for: a fast-path divergence injected into
the coalescing machinery is bisected to its first diverging semantic
event instead of surfacing as a bare digest mismatch.
"""

import pytest

from repro.bench.fuzz import (
    bisect_divergence,
    generate_spec,
    run_spec,
    run_spec_recorded,
)
from repro.net.cluster import Cluster
from repro.net.coalesce import CoalescedRun
from repro.net.config import NetworkConfig
from repro.obs.flight import (
    Divergence,
    FlightRecorder,
    first_divergence,
    semantic_records,
)
from repro.store.objects import reset_id_counter


class _Clock:
    def __init__(self):
        self._now = 0.0


# ---------------------------------------------------------------------------
# Recorder contracts
# ---------------------------------------------------------------------------


def test_ring_is_bounded_and_counts_drops():
    recorder = FlightRecorder(_Clock(), capacity=3)
    for i in range(5):
        recorder.record(float(i), "grant", "n0>n1", f"f/{i}")
    assert len(recorder) == 3
    assert recorder.dropped == 2
    assert [r[0] for r in recorder.records] == [2.0, 3.0, 4.0]
    assert recorder.dump().startswith("# dropped=2 (ring capacity 3)")
    with pytest.raises(ValueError):
        FlightRecorder(_Clock(), capacity=0)


def test_dump_is_deterministic_and_roundtrips_floats():
    clock = _Clock()
    recorder = FlightRecorder(clock, capacity=16)
    recorder.record(0.1 + 0.2, "arrive", "n0>n1", "f/1024")
    clock._now = 1.5
    recorder.phase("n0>n1", "coalesce_start/CoalescedRun/4")
    dump = recorder.dump()
    assert dump == recorder.dump()
    # repr timestamps round-trip exactly (0.1 + 0.2 != 0.3).
    assert "0.30000000000000004 arrive n0>n1 f/1024" in dump
    assert "1.5 phase n0>n1 coalesce_start/CoalescedRun/4" in dump
    assert recorder.dump(limit=1).splitlines() == [dump.splitlines()[-1]]


def test_semantic_records_filter_and_sort():
    records = [
        (2.0, "arrive", "n0>n1", "f/1"),
        (0.5, "pop", "seq=3", "Wake"),
        (1.0, "grant", "n0>n1", "f/1"),
        (1.0, "phase", "n0>n1", "resplit"),
        (1.5, "release", "n0>n1", "f/1"),
    ]
    assert semantic_records(records) == [
        (1.0, "grant", "n0>n1", "f/1"),
        (1.5, "release", "n0>n1", "f/1"),
        (2.0, "arrive", "n0>n1", "f/1"),
    ]


def test_first_divergence_cases():
    a = [(1.0, "grant", "n0>n1", "f/1"), (2.0, "arrive", "n0>n1", "f/1")]
    assert first_divergence(a, list(a)) is None
    # Mid-stream mismatch.
    b = [(1.0, "grant", "n0>n1", "f/1"), (2.5, "arrive", "n0>n1", "f/1")]
    div = first_divergence(a, b)
    assert isinstance(div, Divergence)
    assert div.index == 1
    assert div.record_on == a[1] and div.record_off == b[1]
    assert "first diverging semantic event" in div.describe()
    # Length mismatch: the shorter side reports <no record>.
    div = first_divergence(a, a[:1])
    assert div.index == 1 and div.record_off is None
    assert "<no record>" in div.describe()
    # Non-semantic noise never diverges.
    assert first_divergence([(0.0, "pop", "seq=1", "Wake")], []) is None


def test_cluster_lifecycle_installs_and_removes_hooks():
    cluster = Cluster(4, NetworkConfig())
    assert cluster.flight is None and cluster.sim.on_pop is None
    recorder = cluster.enable_flight_recorder(capacity=128)
    assert cluster.flight is recorder
    assert cluster.sim.on_pop == recorder.record_pop
    # Idempotent: re-enabling keeps the same recorder.
    assert cluster.enable_flight_recorder() is recorder
    cluster.disable_flight_recorder()
    assert cluster.flight is None and cluster.sim.on_pop is None


def test_recording_captures_pops_and_semantic_timeline():
    reset_id_counter()
    spec = generate_spec(6)  # broadcast over a 2-rack fabric, coalesces
    _, records = run_spec_recorded(spec, fast_paths=False)
    kinds = {r[1] for r in records}
    assert "pop" in kinds
    assert {"grant", "release", "arrive"} <= kinds
    sem = semantic_records(records)
    assert sem == sorted(sem)
    # Every semantic record names a directed node pair and a flow/bytes pair.
    for _t, _kind, resource, detail in sem:
        assert ">" in resource and resource.startswith("n")
        assert "/" in detail


# ---------------------------------------------------------------------------
# The observational property: recording changes nothing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [2, 4, 6])
def test_recording_is_observational_and_timelines_match(seed):
    """Digest with recording == digest without; on/off timelines identical.

    The band mixes a gather (seed 2), an alltoall with a mid-flight fault
    schedule (seed 4) and a rack-topology broadcast (seed 6), all of which
    engage the coalescing fast paths.
    """
    spec = generate_spec(seed)
    bare_on = run_spec(spec, fast_paths=True)
    bare_off = run_spec(spec, fast_paths=False)
    on, on_records = run_spec_recorded(spec, fast_paths=True)
    off, off_records = run_spec_recorded(spec, fast_paths=False)
    assert on == bare_on and off == bare_off
    assert on == off
    assert semantic_records(on_records) == semantic_records(off_records)
    assert first_divergence(on_records, off_records) is None


# ---------------------------------------------------------------------------
# Divergence bisection on a forced fast-path bug
# ---------------------------------------------------------------------------


def test_forced_fastpath_divergence_is_bisected(monkeypatch):
    """An injected coalescing bug is caught and localized.

    Shifts every coalesced run's arrival boundaries by +100ns — the kind of
    off-by-an-epsilon a refactor of the boundary recurrence could introduce.
    Only the fast-on run constructs :class:`CoalescedRun`, so the settings
    genuinely diverge; the digests must mismatch and the bisection must
    point at the transfer timeline around the perturbed arrivals.
    """
    spec = generate_spec(6)  # forms coalesced runs under fast-on (7 of them)

    orig_init = CoalescedRun.__init__

    def skewed_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        self.arr = [a + 1e-7 for a in self.arr]

    monkeypatch.setattr(CoalescedRun, "__init__", skewed_init)

    on = run_spec(spec, fast_paths=True)
    off = run_spec(spec, fast_paths=False)
    assert on != off, "the injected arrival skew must break the digest"

    divergence = bisect_divergence(spec)
    assert divergence is not None
    # The first diverging event involves an arrival record: the skew moved
    # fast-on arrivals past neighbouring grants in the sorted timeline.
    kinds = {
        record[1]
        for record in (divergence.record_on, divergence.record_off)
        if record is not None
    }
    assert "arrive" in kinds
    assert divergence.describe()  # renders without error


def test_unperturbed_seed_has_no_divergence():
    spec = generate_spec(6)
    assert bisect_divergence(spec) is None
