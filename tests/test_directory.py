"""Tests for the sharded object directory service."""

import pytest

from repro.directory import ObjectDirectory
from repro.net import Cluster, NetworkConfig
from repro.store import ObjectID, ObjectValue

MB = 1024 * 1024


@pytest.fixture()
def setup():
    cluster = Cluster(num_nodes=4, network=NetworkConfig())
    directory = ObjectDirectory(cluster)
    return cluster, directory


def drive(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.run()
    assert process.ok, process.value
    return process.value


def test_publish_partial_then_complete(setup):
    cluster, directory = setup
    object_id = ObjectID.of("x")
    node = cluster.node(1)

    def scenario():
        yield from directory.publish_partial(node, object_id, 8 * MB)
        locations = directory.locations_of(object_id)
        assert locations[1].complete is False
        yield from directory.publish_complete(node, object_id, 8 * MB)
        locations = directory.locations_of(object_id)
        assert locations[1].complete is True
        return directory.known_size(object_id)

    assert drive(cluster, scenario()) == 8 * MB


def test_publish_partial_never_downgrades_complete(setup):
    cluster, directory = setup
    object_id = ObjectID.of("x")
    node = cluster.node(0)

    def scenario():
        yield from directory.publish_complete(node, object_id, MB)
        yield from directory.publish_partial(node, object_id, MB)
        return directory.locations_of(object_id)[0].complete

    assert drive(cluster, scenario()) is True


def test_lookup_costs_one_rpc(setup):
    cluster, directory = setup
    object_id = ObjectID.of("timed")
    node = cluster.node(1)
    reader = cluster.node(2)

    def scenario():
        yield from directory.publish_complete(node, object_id, MB)
        start = cluster.sim.now
        yield from directory.wait_for_object(reader, object_id)
        return cluster.sim.now - start

    elapsed = drive(cluster, scenario())
    assert 0 < elapsed <= 2 * cluster.config.rpc_latency


def test_wait_for_object_blocks_until_created(setup):
    cluster, directory = setup
    object_id = ObjectID.of("later")
    times = {}

    def reader():
        yield from directory.wait_for_object(cluster.node(2), object_id)
        times["seen"] = cluster.sim.now

    def writer():
        yield cluster.sim.timeout(3.0)
        yield from directory.publish_complete(cluster.node(1), object_id, MB)

    cluster.sim.process(reader())
    cluster.sim.process(writer())
    cluster.run()
    assert times["seen"] >= 3.0


def test_creation_event_and_is_created(setup):
    cluster, directory = setup
    object_id = ObjectID.of("c")
    assert not directory.is_created(object_id)
    event = directory.creation_event(object_id)
    assert not event.triggered

    def writer():
        yield from directory.publish_partial(cluster.node(0), object_id, MB)

    drive(cluster, writer())
    assert directory.is_created(object_id)
    assert event.triggered
    assert directory.creation_event(object_id).triggered


def test_inline_cache_roundtrip(setup):
    cluster, directory = setup
    object_id = ObjectID.of("small")
    value = ObjectValue.from_bytes(b"tiny-object")

    def scenario():
        missing = yield from directory.try_get_inline(cluster.node(2), object_id)
        assert missing is None
        yield from directory.put_inline(cluster.node(0), object_id, value)
        cached = yield from directory.try_get_inline(cluster.node(2), object_id)
        return cached

    cached = drive(cluster, scenario())
    assert cached is value
    assert directory.known_size(object_id) == value.size


def test_acquire_prefers_complete_and_bounds_fanout(setup):
    """A complete copy is preferred, and an acquired copy leaves the table."""
    cluster, directory = setup
    object_id = ObjectID.of("x")

    def scenario():
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        yield from directory.publish_partial(cluster.node(1), object_id, MB)
        first = yield from directory.acquire_transfer_source(cluster.node(2), object_id)
        assert first.node_id == 0 and first.complete
        # Node 0 is now checked out; the next receiver must use a partial
        # copy — either the published one (node 1) or the first receiver's
        # in-flight partial (node 2); the seeded tie-break picks among them.
        second = yield from directory.acquire_transfer_source(cluster.node(3), object_id)
        assert second.node_id in (1, 2) and not second.complete
        # Release node 0; requester 2 becomes a complete location.
        yield from directory.release_transfer_source(cluster.node(2), object_id, first, True)
        locations = directory.locations_of(object_id)
        assert locations[0].complete and locations[2].complete
        return True

    assert drive(cluster, scenario())


def test_acquire_serves_in_flight_partial_copy(setup):
    """A later receiver is handed the partial copy of an in-flight receiver (Figure 4b)."""
    cluster, directory = setup
    object_id = ObjectID.of("x")
    times = {}

    def scenario():
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        yield from directory.acquire_transfer_source(cluster.node(1), object_id)

        def late_receiver():
            source = yield from directory.acquire_transfer_source(cluster.node(2), object_id)
            times["acquired"] = (cluster.sim.now, source.node_id, source.complete)

        cluster.sim.process(late_receiver())
        yield cluster.sim.timeout(1.0)

    drive(cluster, scenario())
    _, source_node, complete = times["acquired"]
    assert source_node == 1
    assert complete is False


def test_acquire_blocks_until_source_released(setup):
    """With every other copy excluded, a receiver waits for the checkout to return."""
    cluster, directory = setup
    object_id = ObjectID.of("x")
    times = {}

    def scenario():
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        first = yield from directory.acquire_transfer_source(cluster.node(1), object_id)

        def late_receiver():
            # Exclude node 1 (e.g. it previously failed a transfer to us), so
            # the only possible source is node 0, which is checked out.
            source = yield from directory.acquire_transfer_source(
                cluster.node(2), object_id, exclude=(1,)
            )
            times["acquired"] = (cluster.sim.now, source.node_id)

        cluster.sim.process(late_receiver())
        yield cluster.sim.timeout(5.0)
        yield from directory.release_transfer_source(cluster.node(1), object_id, first, True)

    drive(cluster, scenario())
    when, source_node = times["acquired"]
    assert when >= 5.0
    assert source_node == 0


def test_cycle_avoidance_excludes_dependent_sources(setup):
    """A receiver never fetches from a node whose copy depends on the receiver itself."""
    cluster, directory = setup
    object_id = ObjectID.of("x")

    def scenario():
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        # Node 1 fetches from node 0 (node 0 checked out, node 1 partial w/ upstream 0).
        first = yield from directory.acquire_transfer_source(cluster.node(1), object_id)
        assert first.node_id == 0
        # Node 2 fetches; only node 1 (partial) is available -> upstream chain 2 -> 1 -> 0.
        second = yield from directory.acquire_transfer_source(cluster.node(2), object_id)
        assert second.node_id == 1
        # If node 1's fetch now has to fail over, it must NOT pick node 2,
        # whose data transitively depends on node 1.
        sources = directory._eligible_sources(
            directory.peek_record(object_id), requester_id=1, exclude=()
        )
        assert all(info.node_id != 2 for info in sources)
        return True

    assert drive(cluster, scenario())


def test_failed_node_locations_are_purged_and_checkout_restored(setup):
    cluster, directory = setup
    object_id = ObjectID.of("x")

    def scenario():
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        yield from directory.publish_complete(cluster.node(1), object_id, MB)
        # Node 2 checks out node 0 and then dies before releasing it.
        yield from directory.acquire_transfer_source(cluster.node(2), object_id)
        return True

    drive(cluster, scenario())
    cluster.node(2).fail()
    locations = directory.locations_of(object_id)
    assert 2 not in locations
    # The checked-out source (node 0) is restored so others can still fetch.
    assert 0 in locations and 1 in locations

    cluster.node(1).fail()
    assert 1 not in directory.locations_of(object_id)


def test_delete_object_clears_everything(setup):
    cluster, directory = setup
    object_id = ObjectID.of("x")

    def scenario():
        yield from directory.put_inline(cluster.node(0), object_id, ObjectValue.from_bytes(b"v"))
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        yield from directory.delete_object(cluster.node(0), object_id)
        return directory.locations_of(object_id), directory.peek_record(object_id).inline_value

    locations, inline = drive(cluster, scenario())
    assert locations == {}
    assert inline is None


def test_remove_location(setup):
    cluster, directory = setup
    object_id = ObjectID.of("x")

    def scenario():
        yield from directory.publish_complete(cluster.node(0), object_id, MB)
        yield from directory.remove_location(cluster.node(0), object_id, 0)
        return directory.locations_of(object_id)

    assert drive(cluster, scenario()) == {}


def test_shard_placement_is_deterministic(setup):
    cluster, directory = setup
    object_id = ObjectID.of("stable-key")
    assert directory._shard_node(object_id) is directory._shard_node(ObjectID.of("stable-key"))


def _source_order(seed, key):
    """Eligible-source order for one object with three equally loaded copies."""
    cluster = Cluster(num_nodes=8, network=NetworkConfig())
    directory = ObjectDirectory(cluster, selection_seed=seed)
    object_id = ObjectID.of(key)

    def scenario():
        for node_id in range(1, 8):
            yield from directory.publish_complete(cluster.node(node_id), object_id, MB)

    drive(cluster, scenario())
    record = directory.peek_record(object_id)
    sources = directory._eligible_sources(record, requester_id=0, exclude=())
    return [info.node_id for info in sources]


def test_source_selection_tie_break_is_seeded_and_deterministic():
    """Equal-load ties break by a seeded hash: reproducible per seed, not
    biased to low node ids, and re-seedable for schedule variation."""
    # Byte-for-byte reproducible under the same seed.
    for seed in (0, 1, 7):
        assert _source_order(seed, "tie") == _source_order(seed, "tie")
    # Different seeds actually reshuffle ties for at least one object.
    keys = [f"tie-{i}" for i in range(4)]
    assert any(_source_order(0, key) != _source_order(1, key) for key in keys)
    # The tie-break varies per object too (no global convoy order).
    orders = {tuple(_source_order(0, key)) for key in keys}
    assert len(orders) > 1


def test_source_selection_prefers_load_over_tie_break():
    cluster = Cluster(num_nodes=4, network=NetworkConfig())
    directory = ObjectDirectory(cluster, selection_seed=3)
    object_id = ObjectID.of("loaded")

    def scenario():
        for node_id in (1, 2, 3):
            yield from directory.publish_complete(cluster.node(node_id), object_id, MB)

    drive(cluster, scenario())
    # Occupy node 2's uplink: it must sort behind the idle sources no matter
    # what the seeded hash says.
    request = cluster.node(2).uplink.request()
    assert request.triggered
    record = directory.peek_record(object_id)
    sources = directory._eligible_sources(record, requester_id=0, exclude=())
    assert sources[-1].node_id == 2
    cluster.node(2).uplink.release(request)


def test_wake_fanout_counters_pin_the_rescan_cost(setup):
    """The wake/eligibility counters quantify the O(waiters x candidates)
    rescan ROADMAP item 3 names, so the future batched-wake fix has a
    measurable before/after (these are always-on deterministic counters,
    like lookup_count/publish_count)."""
    cluster, directory = setup
    object_id = ObjectID.of("watched")

    assert directory.notify_calls == 0
    assert directory.waiter_wakes == 0
    assert directory.eligibility_scans == 0
    assert directory.eligibility_candidates == 0

    def waiter(node_id):
        yield from directory.wait_for_object(cluster.node(node_id), object_id)
        return node_id

    def publisher():
        yield cluster.sim.timeout(0.001)
        yield from directory.publish_complete(cluster.node(0), object_id, MB)

    waiters = [cluster.sim.process(waiter(n)) for n in (1, 2, 3)]
    cluster.sim.process(publisher())
    cluster.run()
    assert all(process.ok for process in waiters)

    # The publish notified the shard's waiter list once and woke all three.
    assert directory.notify_calls >= 1
    assert directory.waiter_wakes >= 3

    # An acquire scans the candidate location table exactly once here.
    scans_before = directory.eligibility_scans
    candidates_before = directory.eligibility_candidates

    def acquire():
        source = yield from directory.acquire_transfer_source(
            cluster.node(2), object_id
        )
        return source

    source = drive(cluster, acquire())
    assert source.node_id == 0
    assert directory.eligibility_scans == scans_before + 1
    # One complete location existed when the scan ran.
    assert directory.eligibility_candidates >= candidates_before + 1
