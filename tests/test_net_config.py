"""Tests for the network configuration and block arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.config import ClusterSpec, NetworkConfig


def test_default_config_matches_paper_testbed():
    config = NetworkConfig()
    # 10 Gbps NICs, 4 MB pipelining blocks, 64 KB small-object threshold.
    assert config.bandwidth == pytest.approx(1.25e9)
    assert config.block_size == 4 * 1024 * 1024
    assert config.small_object_threshold == 64 * 1024


def test_validation_errors():
    with pytest.raises(ValueError):
        NetworkConfig(bandwidth=0)
    with pytest.raises(ValueError):
        NetworkConfig(block_size=0)
    with pytest.raises(ValueError):
        NetworkConfig(latency=-1)
    with pytest.raises(ValueError):
        NetworkConfig(memcpy_bandwidth=0)
    with pytest.raises(ValueError):
        NetworkConfig(num_directory_shards=0)
    with pytest.raises(ValueError):
        ClusterSpec(num_nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(num_nodes=2, workers_per_node=0)


def test_validation_rejects_negative_timing_parameters():
    """Negative thresholds/rates/delays silently corrupt timing math."""
    with pytest.raises(ValueError):
        NetworkConfig(small_object_threshold=-1)
    with pytest.raises(ValueError):
        NetworkConfig(reduce_block_compute_bandwidth=0)
    with pytest.raises(ValueError):
        NetworkConfig(reduce_block_compute_bandwidth=-1e9)
    with pytest.raises(ValueError):
        NetworkConfig(failure_detection_delay=-0.1)
    # The boundary values stay legal: a zero threshold disables the
    # small-object fast path, a zero detection delay is an oracle detector.
    assert NetworkConfig(small_object_threshold=0).small_object_threshold == 0
    assert NetworkConfig(failure_detection_delay=0.0).failure_detection_delay == 0.0


def test_transmission_and_memcpy_times():
    config = NetworkConfig(bandwidth=1e9, memcpy_bandwidth=4e9)
    assert config.transmission_time(1e9) == pytest.approx(1.0)
    assert config.memcpy_time(2e9) == pytest.approx(0.5)
    assert config.reduce_compute_time(0) == 0


def test_num_blocks_and_block_bytes():
    config = NetworkConfig(block_size=1000)
    assert config.num_blocks(0) == 1
    assert config.num_blocks(1) == 1
    assert config.num_blocks(1000) == 1
    assert config.num_blocks(1001) == 2
    assert config.block_bytes(2500, 0) == 1000
    assert config.block_bytes(2500, 1) == 1000
    assert config.block_bytes(2500, 2) == 500
    with pytest.raises(IndexError):
        config.block_bytes(2500, 3)
    with pytest.raises(IndexError):
        config.block_bytes(2500, -1)


@settings(max_examples=100, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=10_000_000),
    block_size=st.integers(min_value=1, max_value=1_000_000),
)
def test_blocks_partition_the_object(nbytes, block_size):
    """Property: block sizes are positive, bounded by block_size, and sum to the object size."""
    config = NetworkConfig(block_size=block_size)
    total_blocks = config.num_blocks(nbytes)
    sizes = [config.block_bytes(nbytes, index) for index in range(total_blocks)]
    assert all(0 < size <= block_size for size in sizes)
    assert sum(sizes) == nbytes
    # All blocks except possibly the last are full.
    assert all(size == block_size for size in sizes[:-1])
