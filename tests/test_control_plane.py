"""The control plane as a failure domain: WAL durability, shard kills, replay.

Covers the durability layer end to end:

* the canonical JSON-safe wire form of WAL records (every payload type a
  control-plane op can carry round-trips bit-exactly);
* checkpoint mechanics: automatic folding at the interval, tail truncation,
  the frozen-while-down discipline, and ``upto_seq``-bounded replay;
* directory-shard kills mid-collective: the collective completes without a
  job restart, replay reconstructs the wiped records (checkpoint + tail),
  and the shard's post-replay self-check finds the state digest-identical;
* a crash-at-every-boundary sweep: the kill lands after each stride of the
  unkilled run's WAL append history and the collective must complete at
  every point;
* lineage/ownership kills through the orchestrator: in-flight specs resume
  from their last durable incarnation via ``replay_after_restart``;
* the streaming-allreduce recovery satellites (root progress preserved on a
  contributor loss, root prefix seeded back from a receiver on root loss);
* the ``control_plane_ops`` metrics family through the exporters.
"""

import numpy as np
import pytest

from repro.collectives.plane import HoplitePlane
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.obs.export import to_json
from repro.store.objects import ObjectID, ObjectValue, ReduceOp, reset_id_counter
from repro.tasksys import (
    CollectiveOrchestrator,
    CollectiveSpec,
    TaskSystem,
)
from repro.tasksys.wal import (
    WalRecord,
    WriteAheadLog,
    from_wire,
    record_from_wire,
    record_to_wire,
    to_wire,
)

MB = 1024 * 1024
NET = dict(bandwidth=1.25e8)  # 1 Gbps: collectives run long enough to kill into


class _Clock:
    def __init__(self):
        self._now = 0.0


# ---------------------------------------------------------------------------
# Wire form round-trips
# ---------------------------------------------------------------------------


def test_wal_record_wire_round_trip_all_payload_types():
    import json

    reset_id_counter()
    payload = (
        None,
        True,
        7,
        2.5,
        "tag",
        b"\x00\xff",
        np.arange(6, dtype=np.float64).reshape(2, 3),
        (1, ("nested", 2)),
        [1, 2, [3]],
        {("a", 1): ObjectID.unique("k"), 2: "v"},
        ReduceOp.MAX,
        ObjectValue.from_array(np.full(3, 4.0), logical_size=8 * MB),
    )
    record = WalRecord(seq=11, time=0.125, kind="mixed", data=payload)
    wire = record_to_wire(record)
    # The wire form must be plain JSON-safe data.
    json.dumps(wire)
    back = record_from_wire(wire)
    assert (back.seq, back.time, back.kind) == (11, 0.125, "mixed")
    assert back.data[0] is None
    assert back.data[1] is True and back.data[2] == 7 and back.data[3] == 2.5
    assert back.data[4] == "tag" and back.data[5] == b"\x00\xff"
    assert np.array_equal(back.data[6], payload[6])
    assert back.data[7] == (1, ("nested", 2))
    assert back.data[8] == [1, 2, [3]]
    assert back.data[9] == payload[9]
    assert back.data[10] is ReduceOp.MAX
    assert back.data[11].size == payload[11].size
    assert np.array_equal(back.data[11].payload, payload[11].payload)


def test_collective_spec_wire_round_trip():
    reset_id_counter()
    ranks = list(range(3))
    sources = {i: ObjectID.unique(f"w-src{i}") for i in ranks}
    spec = CollectiveSpec.reduce(
        "wire-spec",
        0,
        ranks,
        sources,
        ObjectID.unique("w-target"),
        {sources[i]: ObjectValue.from_array(np.full(2, float(i)), logical_size=MB)
         for i in ranks},
        ReduceOp.SUM,
        allreduce=True,
    )
    back = from_wire(to_wire(spec))
    assert back.spec_id == spec.spec_id
    assert back.kind == spec.kind
    assert back.participants == spec.participants
    assert back.root == spec.root
    assert back.op is spec.op
    assert back.sources == spec.sources
    assert back.targets == spec.targets
    assert back.incarnation == spec.incarnation
    assert set(back.payloads) == set(spec.payloads)


def test_wire_form_rejects_unknown_types():
    with pytest.raises(TypeError):
        to_wire(object())
    with pytest.raises(TypeError):
        from_wire({"__not_a_tag__": 1})


# ---------------------------------------------------------------------------
# WAL mechanics
# ---------------------------------------------------------------------------


def _counter_wal(interval=4):
    """A WAL owning a simple add-only counter dict, for mechanics tests."""
    state = {"applied": {}}
    wal = WriteAheadLog(
        _Clock(),
        "test",
        checkpoint_interval=interval,
        snapshot_fn=lambda: dict(state["applied"]),
    )

    def restore(snapshot):
        state["applied"] = {} if snapshot is None else dict(snapshot)

    def apply(record):
        key, amount = record.data
        state["applied"][key] = state["applied"].get(key, 0) + amount

    return wal, state, restore, apply


def test_wal_auto_checkpoint_truncates_tail():
    wal, state, restore, apply = _counter_wal(interval=4)
    for i in range(10):
        # Mutate-then-log: the snapshot a checkpoint takes inside append()
        # must already cover the record being appended.
        key = f"k{i % 3}"
        state["applied"][key] = state["applied"].get(key, 0) + 1
        wal.append("add", (key, 1))
    # Two automatic checkpoints fired (at 4 and 8 appends); the tail holds
    # only the records after the last fold.
    assert wal.checkpoints == 2
    assert wal.checkpoint_seq == 8
    assert [r.seq for r in wal.tail] == [8, 9]
    live = dict(state["applied"])
    state["applied"] = {}
    applied = wal.replay(restore, apply)
    assert applied == 2
    assert state["applied"] == live


def test_wal_frozen_suspends_checkpoints_and_replay_is_bounded():
    wal, state, restore, apply = _counter_wal(interval=4)
    for i in range(3):
        apply(wal.append("add", ("k", 1)))
    wal.frozen = True
    # Appends still land while the owner is down (the world keeps mutating)
    # but no snapshot of wiped state can ever be taken.
    for i in range(4):
        wal.append("add", ("k", 1))
    assert wal.checkpoints == 0
    with pytest.raises(ValueError):
        wal.checkpoint()
    # Bounded replay re-applies exactly the records durable before seq 5.
    state["applied"] = {"junk": 99}
    applied = wal.replay(restore, apply, upto_seq=5)
    assert applied == 5
    assert state["applied"] == {"k": 5}
    wal.frozen = False
    wal.checkpoint()
    assert wal.tail == [] and wal.checkpoint_seq == 7


# ---------------------------------------------------------------------------
# Shared collective harness
# ---------------------------------------------------------------------------


def _build(num_nodes=5):
    reset_id_counter()
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig(**NET))
    runtime = HopliteRuntime(cluster)
    system = TaskSystem(cluster, HoplitePlane(runtime))
    orchestrator = CollectiveOrchestrator(system)
    return cluster, runtime, system, orchestrator


def _allgather_spec(tag, num_nodes, nbytes):
    ranks = list(range(num_nodes))
    sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in ranks}
    return CollectiveSpec.allgather(
        tag,
        ranks,
        sources,
        {sources[i]: ObjectValue.from_array(np.full(2, float(i + 1)), logical_size=nbytes)
         for i in ranks},
    )


def _allreduce_spec(tag, num_nodes, nbytes):
    ranks = list(range(num_nodes))
    sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in ranks}
    return CollectiveSpec.reduce(
        tag,
        0,
        ranks,
        sources,
        ObjectID.unique(f"{tag}-target"),
        {sources[i]: ObjectValue.from_array(np.full(4, float(i + 1)), logical_size=nbytes)
         for i in ranks},
        ReduceOp.SUM,
        allreduce=True,
    )


def _invoke(cluster, orchestrator, spec, budget=240.0, kills=()):
    """Run one collective; ``kills`` is a list of (at, thunk) injections."""
    sim = cluster.sim
    done = {}

    def driver():
        outcome = yield from orchestrator.invoke(spec)
        done["outcome"] = outcome

    def killer(at, thunk):
        yield sim.timeout(at)
        thunk()

    sim.process(driver(), name=f"drv-{spec.spec_id}")
    for at, thunk in kills:
        sim.process(killer(at, thunk), name="killer")
    cluster.run(until=budget)
    assert "outcome" in done, (
        f"collective {spec.spec_id} did not complete (t={sim.now})"
    )
    return done["outcome"]


# ---------------------------------------------------------------------------
# Directory shard kills
# ---------------------------------------------------------------------------


def test_shard_kill_mid_collective_recovers_by_replay():
    cluster, runtime, _, orchestrator = _build(num_nodes=5)
    spec = _allgather_spec("sk", 5, 16 * MB)
    directory = runtime.directory
    baseline_appends = None

    outcome = _invoke(
        cluster,
        orchestrator,
        spec,
        kills=[(0.2, lambda: directory.fail_shard(0))],
    )
    shard = directory.shards[0]
    assert directory.shard_kills == 1
    assert shard.alive and shard.incarnation == 1
    # Replay actually re-applied durable history...
    assert shard.last_replay_applied > 0
    assert shard.wal.replays == 1
    # ...and reconstructed the wiped records digest-identically (no WAL
    # appends landed for this shard during the downtime, so the self-check
    # compares replayed state against the exact pre-kill digest).
    assert shard.replay_self_check is True
    # Recovery stalls requests; it never restarts the job.
    assert orchestrator.metrics["invocations"] == 1
    assert outcome.completion_time > 0.2


def test_shard_kill_replays_checkpoint_plus_tail():
    cluster, runtime, _, orchestrator = _build(num_nodes=5)
    spec = _allgather_spec("ck", 5, 16 * MB)
    directory = runtime.directory
    shard = directory.shards[0]

    def checkpoint_then_kill():
        shard.wal.checkpoint()
        assert shard.wal.tail == []
        directory.fail_shard(0)

    _invoke(cluster, orchestrator, spec, kills=[(0.2, checkpoint_then_kill)])
    assert shard.wal.checkpoints == 1
    assert shard.wal.replays == 1
    # The checkpoint covered everything at the kill, so the tail replay
    # applied nothing — recovery came from the snapshot.
    assert shard.last_replay_applied == 0
    assert shard.replay_self_check is True


def test_crash_at_every_boundary_sweep():
    """Kill shard 0 after each stride of the unkilled run's WAL history.

    The unkilled run's WAL append times enumerate every point at which the
    durable history grows; crashing just after each of them (strided to
    keep the sweep cheap) must never wedge or restart the collective.
    """
    num_nodes, nbytes = 4, 4 * MB
    cluster, runtime, _, orchestrator = _build(num_nodes=num_nodes)
    spec = _allgather_spec("cb", num_nodes, nbytes)
    baseline = _invoke(cluster, orchestrator, spec)
    append_times = sorted(
        {r.time for r in runtime.directory.shards[0].wal.tail if r.time > 0.0}
    )
    assert append_times, "shard 0 recorded no WAL appends in the baseline"
    stride = max(1, len(append_times) // 6)
    boundaries = append_times[::stride]

    epsilon = 1e-6
    for boundary in boundaries:
        cluster, runtime, _, orchestrator = _build(num_nodes=num_nodes)
        spec = _allgather_spec("cb", num_nodes, nbytes)
        directory = runtime.directory
        outcome = _invoke(
            cluster,
            orchestrator,
            spec,
            kills=[(boundary + epsilon, lambda d=directory: d.fail_shard(0))],
        )
        shard = directory.shards[0]
        assert shard.alive, f"shard not recovered for kill at {boundary}"
        assert shard.wal.replays == 1
        assert shard.replay_self_check is not False, (
            f"replay diverged from pre-kill state for kill at {boundary}"
        )
        assert orchestrator.metrics["invocations"] == 1
        assert outcome.completion_time > 0.0


def test_double_kill_same_shard_recovers_twice():
    cluster, runtime, _, orchestrator = _build(num_nodes=5)
    spec = _allgather_spec("dk", 5, 16 * MB)
    directory = runtime.directory
    _invoke(
        cluster,
        orchestrator,
        spec,
        kills=[
            (0.15, lambda: directory.fail_shard(1)),
            (0.45, lambda: directory.fail_shard(1)),
        ],
    )
    shard = directory.shards[1]
    assert directory.shard_kills == 2
    assert shard.alive and shard.incarnation == 2
    assert shard.wal.replays == 2


# ---------------------------------------------------------------------------
# Lineage / ownership kills (the orchestrator's own WAL)
# ---------------------------------------------------------------------------


def test_control_plane_kill_mid_collective_resumes_spec():
    cluster, runtime, _, orchestrator = _build(num_nodes=5)
    spec = _allreduce_spec("cp", 5, 16 * MB)
    _invoke(
        cluster,
        orchestrator,
        spec,
        kills=[(0.2, orchestrator.kill_control_plane)],
    )
    assert orchestrator.metrics["control_plane_kills"] == 1
    assert orchestrator.control_alive
    # The replayed lineage re-submitted the in-flight spec at its durable
    # incarnation; the (key, incarnation) dedup adopted the live tasks.
    assert orchestrator.metrics["control_plane_resubmissions"] >= 1
    assert spec.spec_id in orchestrator.lineage
    assert spec.spec_id in orchestrator.completed
    assert orchestrator.wal.replays == 1
    # One invocation end to end: recovery resumed, it did not restart.
    assert orchestrator.metrics["invocations"] == 1


def test_replay_after_restart_skips_completed_and_unsubmitted_specs():
    cluster, runtime, _, orchestrator = _build(num_nodes=3)
    done_spec = _allgather_spec("done", 3, MB)
    _invoke(cluster, orchestrator, done_spec)
    registered = _allgather_spec("registered-only", 3, MB)
    orchestrator.register(registered)
    applied, resubmitted = orchestrator.replay_after_restart()
    assert applied == orchestrator.wal.appends
    # Completed specs and registered-but-never-submitted specs are not
    # re-submitted; there was nothing in flight.
    assert resubmitted == 0
    assert done_spec.spec_id in orchestrator.completed
    assert registered.spec_id in orchestrator.lineage


# ---------------------------------------------------------------------------
# Streaming allreduce recovery satellites
# ---------------------------------------------------------------------------


def test_contributor_loss_preserves_root_progress():
    cluster, runtime, _, orchestrator = _build(num_nodes=5)
    spec = _allreduce_spec("arp", 5, 64 * MB)
    cluster.schedule_failure(1, at=0.5, recover_at=0.8)
    _invoke(cluster, orchestrator, spec)
    # The failed contributor was reconstructed from lineage with identical
    # data, so the root kept its already-reduced prefix instead of resetting.
    assert runtime.root_progress_preserved >= 1
    assert runtime.root_prefix_seeds == 0


def test_root_loss_seeds_prefix_from_receiver():
    cluster, runtime, _, orchestrator = _build(num_nodes=5)
    spec = _allreduce_spec("ars", 5, 64 * MB)
    # Node 4 hosts the reduce tree's root slot in this configuration; its
    # death forces the re-created root to pull the longest surviving prefix
    # back from a receiver instead of recomputing from scratch.
    cluster.schedule_failure(4, at=0.5, recover_at=0.8)
    _invoke(cluster, orchestrator, spec)
    assert runtime.root_prefix_seeds >= 1


# ---------------------------------------------------------------------------
# Metrics: the control_plane_ops family through the exporters
# ---------------------------------------------------------------------------


def test_control_plane_ops_metrics_exported():
    reset_id_counter()
    cluster = Cluster(num_nodes=5, network=NetworkConfig(**NET))
    obs = cluster.enable_observability()
    runtime = HopliteRuntime(cluster)
    system = TaskSystem(cluster, HoplitePlane(runtime))
    orchestrator = CollectiveOrchestrator(system)
    spec = _allgather_spec("mx", 5, 16 * MB)
    directory = runtime.directory
    _invoke(
        cluster,
        orchestrator,
        spec,
        kills=[(0.2, lambda: directory.fail_shard(0))],
    )
    family = obs.registry.families["control_plane_ops"]
    values = {key[0]: child.value for key, child in family.children.items()}
    assert values["wal_appends"] > 0
    assert values["replays"] == 1
    assert values["shard_rpcs"] > 0
    # The family exports through the frozen taxonomy like any other.
    payload = to_json(obs.registry)
    names = {f["name"] for f in payload["families"]}
    assert "control_plane_ops" in names
