"""Convoy coalescing: planner arithmetic properties and formation scenarios.

Three layers of lockdown for :mod:`repro.net.convoy`:

* property tests (hypothesis) over :func:`repro.net.convoy._plan` — the
  arithmetic replay of FIFO admission on a saturated capacity-1 link must
  conserve every member's blocks, keep the bottleneck mutually exclusive,
  respect priority-then-FIFO grant order, and reproduce the per-block
  issue recurrence ``q[j+1] = max(arr[j], gate[j+1])`` exactly;
* an end-to-end materialization property — a random contended scenario
  with a randomly-timed disturber must be byte-identical with the convoy
  fast path on and off (the disturbance re-splits the domain mid-flight);
* formation regressions — convoys form on saturated *tier* links of a
  hierarchical fabric (a 3-rack fabric's oversubscribed rack uplink), and
  a convoy needs at least two active members to form at all.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.runtime import HopliteRuntime
from repro.net import coalesce, convoy
from repro.net.cluster import Cluster
from repro.net.convoy import _Member, _plan
from repro.net.topology import Topology
from repro.store.objects import ObjectID, ObjectValue

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# Planner property tests
# ---------------------------------------------------------------------------


class _StubFlow:
    def __init__(self, flow_class: int):
        self.flow_class = flow_class


class _StubHandle:
    """The minimal surface `_plan`/`_priority` read off a StreamHandle."""

    def __init__(self, kind: str, priority: int):
        self.kind = kind
        self.flow = _StubFlow(priority) if kind != "copy" else None


def _member(kind, mode, n, tx, gates, latency, key=(), lead_release=0.0,
            lead_arr=0.0, first_issue=0.0):
    m = _Member(_StubHandle(kind, key[0] if key else 2))
    m.mode = mode
    m.n = n
    m.tx = list(tx)
    m.gates = list(gates)
    m.latency = latency
    m.key = key
    m.lead_release = lead_release
    m.lead_arr = lead_arr
    m.first_issue = first_issue
    return m


# Irrational-ish float grids keep accidental same-instant collisions (which
# the planner rightly refuses) rare without hiding genuine tie handling.
_tx_times = st.integers(min_value=3, max_value=40).map(lambda k: k * 0.0173)
_gaps = st.integers(min_value=0, max_value=50).map(lambda k: k * 0.00719)


@st.composite
def _scenarios(draw):
    """A consistent planner input: one link holder plus queued/future members."""
    t0 = 0.0
    members = []
    # The in-flight holder: its release is the first grant frame.
    lead_n = draw(st.integers(min_value=0, max_value=3))
    lead_release = 0.0173 + draw(_gaps)
    latency = 0.0051
    lead_tx = [draw(_tx_times) for _ in range(lead_n)]
    gate = 0.0
    lead_gates = []
    for _ in range(lead_n):
        gate += draw(_gaps)
        lead_gates.append(gate)
    members.append(
        _member("nic", "lead_tx", lead_n, lead_tx, lead_gates, latency,
                lead_release=lead_release, lead_arr=lead_release + latency)
    )
    # Members whose first reservation is already queued on the link.
    for rank in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(["nic", "copy"]))
        n = draw(st.integers(min_value=1, max_value=4))
        tx = [draw(_tx_times) for _ in range(n)]
        gate = 0.0
        gates = [0.0]
        for _ in range(n - 1):
            gate += draw(_gaps)
            gates.append(gate)
        prio = 0 if kind == "copy" else draw(st.sampled_from([1, 2, 2]))
        members.append(
            _member(kind, "queue", n, tx, gates,
                    0.0 if kind == "copy" else latency, key=(prio, rank))
        )
    # Members issuing their first request at a known future instant.
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        n = draw(st.integers(min_value=1, max_value=3))
        tx = [draw(_tx_times) for _ in range(n)]
        first = 0.00131 + draw(_gaps)
        gate = first
        gates = [first]
        for _ in range(n - 1):
            gate += draw(_gaps)
            gates.append(gate)
        members.append(
            _member("nic", "issue", n, tx, gates, latency, first_issue=first)
        )
    return t0, members


@settings(max_examples=200, deadline=None)
@given(_scenarios())
def test_plan_conserves_blocks_and_link_exclusivity(scenario):
    t0, members = scenario
    assume(_plan(t0, members))

    holds = []
    for m in members:
        if m.mode == "lead_tx":
            holds.append((t0, m.lead_release))
        # Every planned block granted exactly once, in order, after issue.
        assert len(m.s) == len(m.e) == len(m.arr) == m.n
        assert len(m.q) == m.n
        for j in range(m.n):
            assert m.q[j] <= m.s[j]
            assert m.e[j] == m.s[j] + m.tx[j]
            expected_arr = m.e[j] if m.copy else m.e[j] + m.latency
            assert m.arr[j] == expected_arr
            holds.append((m.s[j], m.e[j]))
        for j in range(m.n - 1):
            assert m.s[j] < m.s[j + 1]

    # Capacity-1 mutual exclusion: no two holds overlap.
    holds.sort()
    for (s1, e1), (s2, _) in zip(holds, holds[1:]):
        assert e1 <= s2, (s1, e1, s2)


@settings(max_examples=200, deadline=None)
@given(_scenarios())
def test_plan_respects_fifo_and_issue_recurrence(scenario):
    t0, members = scenario
    assume(_plan(t0, members))

    # Per-block issue recurrence: a NIC member re-issues when its previous
    # block arrives (or its gate opens, whichever is later); a memcpy member
    # re-issues at its own release.
    for m in members:
        if m.mode == "passive" or m.mode == "lead_tx" and m.n == 0:
            continue
        start = 1 if m.mode != "lead_tx" else 0
        for j in range(start, m.n):
            if j == 0:
                continue
            prev_done = m.e[j - 1] if m.copy else m.arr[j - 1]
            assert m.q[j] == max(prev_done, m.gates[j])

    # Priority-then-FIFO: among equal-priority blocks, an earlier issue is
    # never overtaken by a later one.
    blocks = []
    for m in members:
        prio = 0 if m.copy else (m.key[0] if m.key else 2)
        for j in range(m.n):
            blocks.append((prio, m.q[j], m.s[j]))
    for p1, q1, s1 in blocks:
        for p2, q2, s2 in blocks:
            if p1 == p2 and q1 < q2 and q1 < s2 < s1:
                raise AssertionError(
                    f"FIFO violation: issued {q1} granted {s1}, "
                    f"issued {q2} granted {s2}"
                )


# ---------------------------------------------------------------------------
# End-to-end: materialization at a boundary reproduces per-block state
# ---------------------------------------------------------------------------


def _contended_pull_digest(block_counts, disturb_after, fast_paths):
    """Two pulls saturating node 0's uplink, plus a late third receiver."""
    coalesce.ENABLED = fast_paths
    convoy.ENABLED = fast_paths
    try:
        cluster = Cluster(4)
        runtime = HopliteRuntime(cluster)
        sim = cluster.sim
        ids = [ObjectID.of(f"convoy-prop-{i}") for i in range(3)]
        sizes = [block_counts[0], block_counts[1], 2]
        done = {}

        def scenario():
            # All three objects live on node 0 so the two main pulls share
            # exactly one contended link — node 0's uplink — and the late
            # receiver of the third object (held nowhere else) must disturb
            # that same link mid-convoy.
            puts = [
                sim.process(
                    runtime.client(0).put(
                        ids[i],
                        ObjectValue.from_array(
                            np.full(4, 1.0), logical_size=sizes[i] * 4 * MB
                        ),
                    )
                )
                for i in range(3)
            ]
            for proc in puts:
                yield proc
            sim.process(get(2, ids[0], 0.0, "a"))
            sim.process(get(3, ids[1], 0.0, "b"))
            sim.process(get(1, ids[2], disturb_after, "disturb"))

        def get(node_id, oid, delay, tag):
            if delay:
                yield sim.timeout(delay)
            yield from runtime.client(node_id).get(oid)
            done[tag] = sim.now

        sim.process(scenario())
        cluster.run()
        return tuple(repr(done[k]) for k in sorted(done))
    finally:
        coalesce.ENABLED = True
        convoy.ENABLED = True


@settings(max_examples=40, deadline=None)
@given(
    st.tuples(
        st.integers(min_value=3, max_value=6), st.integers(min_value=3, max_value=6)
    ),
    st.integers(min_value=0, max_value=40).map(lambda k: k * 0.00317),
)
def test_materialization_reproduces_per_block_state(block_counts, disturb_after):
    on = _contended_pull_digest(block_counts, disturb_after, fast_paths=True)
    off = _contended_pull_digest(block_counts, disturb_after, fast_paths=False)
    assert on == off


# ---------------------------------------------------------------------------
# Formation regressions
# ---------------------------------------------------------------------------


def _cross_rack_scenario(fast_paths):
    """Two cross-rack pulls whose only shared contended link is rack0's uplink."""
    coalesce.ENABLED = fast_paths
    convoy.ENABLED = fast_paths
    try:
        topo = Topology.racks(3, 2, oversubscription=4.0)
        cluster = Cluster(6, topology=topo)
        runtime = HopliteRuntime(cluster)
        sim = cluster.sim
        ids = [ObjectID.of(f"tier-conv-{i}") for i in range(2)]
        done = {}

        def put(node_id):
            yield from runtime.client(node_id).put(
                ids[node_id],
                ObjectValue.from_array(np.full(4, 1.0), logical_size=24 * MB),
            )

        def get(node_id, oid, tag):
            yield from runtime.client(node_id).get(oid)
            done[tag] = sim.now

        for i in range(2):
            sim.process(put(i))
        sim.process(get(2, ids[0], "a"))  # rack 1 pulls from rack 0
        sim.process(get(4, ids[1], "b"))  # rack 2 pulls from rack 0
        cluster.run()
        return cluster, tuple(repr(done[k]) for k in sorted(done))
    finally:
        coalesce.ENABLED = True
        convoy.ENABLED = True


def test_convoy_forms_on_saturated_tier_link():
    """An oversubscribed rack uplink (one slot) hosts a convoy of two pulls."""
    formed = []
    orig_form = convoy.maybe_form

    def spy(handle, block_index):
        run = orig_form(handle, block_index)
        if run is not None:
            formed.append(run.domain.bottleneck)
        return run

    convoy.maybe_form = spy
    try:
        cluster, on_digest = _cross_rack_scenario(fast_paths=True)
    finally:
        convoy.maybe_form = orig_form
    assert cluster.fastpath_stats["domains_formed"] >= 1
    tier_resources = {link.resource for link in cluster.fabric.tier_links()}
    assert any(b in tier_resources for b in formed), "no tier-link convoy formed"
    # And the fast path is exact: same completion instants as per-block.
    _, off_digest = _cross_rack_scenario(fast_paths=False)
    assert on_digest == off_digest


def test_convoy_requires_two_active_members():
    """A convoy of one is just a queue: single-active plans must be refused.

    Beyond being useless (the exclusive coalesced path already covers a lone
    stream), a single-active convoy's wake events land at per-block instants
    with different event-queue sequence numbers — enough to flip a later
    same-timestamp tie between unrelated transfers elsewhere in the fabric.
    """
    active_counts = []
    orig_form = convoy.maybe_form

    def spy(handle, block_index):
        run = orig_form(handle, block_index)
        if run is not None:
            active_counts.append(len(run.domain.runs))
        return run

    convoy.maybe_form = spy
    try:
        _contended_pull_digest((6, 6), 0.0, fast_paths=True)
    finally:
        convoy.maybe_form = orig_form
    assert active_counts, "expected at least one convoy to form"
    assert all(count >= 2 for count in active_counts)
