"""Integration tests for the application workloads (Sections 5.2-5.6)."""

import pytest

from repro.apps import (
    AppResult,
    FailureSchedule,
    run_async_sgd,
    run_model_serving,
    run_rl_training,
    run_sync_training,
)
from repro.workloads import MODEL_CATALOG, SERVING_ENSEMBLE, model_profile


def test_model_catalog_contents():
    assert set(SERVING_ENSEMBLE) <= set(MODEL_CATALOG)
    alexnet = model_profile("alexnet")
    assert alexnet.param_bytes == 233 * 1024 * 1024
    with pytest.raises(KeyError):
        model_profile("not-a-model")


def test_failure_schedule_validation():
    with pytest.raises(ValueError):
        FailureSchedule(node_id=0, fail_at=-1)
    with pytest.raises(ValueError):
        FailureSchedule(node_id=0, fail_at=5, recover_at=1)


def test_async_sgd_hoplite_beats_ray():
    hoplite = run_async_sgd(8, "alexnet", "hoplite", num_iterations=3)
    ray = run_async_sgd(8, "alexnet", "ray", num_iterations=3)
    assert isinstance(hoplite, AppResult)
    assert hoplite.throughput > ray.throughput
    assert len(hoplite.iteration_latencies) == 3
    assert hoplite.metrics["model"] == "alexnet"
    assert hoplite.duration > 0


def test_async_sgd_validation():
    with pytest.raises(ValueError):
        run_async_sgd(1, "alexnet")
    with pytest.raises(ValueError):
        run_async_sgd(4, "alexnet", "not-a-plane")


def test_async_sgd_survives_worker_failure():
    result = run_async_sgd(
        6,
        "resnet50",
        "hoplite",
        num_iterations=8,
        failure=FailureSchedule(node_id=2, fail_at=1.0, recover_at=2.0),
    )
    assert len(result.iteration_latencies) == 8
    assert all(latency > 0 for latency in result.iteration_latencies)


def test_rl_training_both_algorithms():
    for algorithm in ("impala", "a3c"):
        hoplite = run_rl_training(6, algorithm, "hoplite", num_iterations=3)
        ray = run_rl_training(6, algorithm, "ray", num_iterations=3)
        assert hoplite.throughput > ray.throughput
        assert hoplite.app == f"rl_{algorithm}"
    with pytest.raises(ValueError):
        run_rl_training(6, "ppo")
    with pytest.raises(ValueError):
        run_rl_training(1, "impala")


def test_model_serving_throughput_and_latencies():
    hoplite = run_model_serving(8, "hoplite", num_queries=4)
    ray = run_model_serving(8, "ray", num_queries=4)
    assert hoplite.throughput > ray.throughput
    assert len(hoplite.iteration_latencies) == 4
    assert hoplite.metrics["ensemble_size"] == 8
    with pytest.raises(ValueError):
        run_model_serving(4, "hoplite")


def test_model_serving_with_failure_keeps_serving():
    result = run_model_serving(
        8,
        "hoplite",
        num_queries=12,
        failure=FailureSchedule(node_id=5, fail_at=0.4, recover_at=0.9),
    )
    assert len(result.iteration_latencies) == 12
    # The failure must not stall the query loop for long.
    assert max(result.iteration_latencies) < 10 * min(result.iteration_latencies)


def test_sync_training_system_ordering():
    results = {
        system: run_sync_training(8, "resnet50", system, num_rounds=2)
        for system in ("hoplite", "openmpi", "gloo", "ray")
    }
    assert results["hoplite"].throughput > results["ray"].throughput
    assert results["gloo"].throughput >= results["hoplite"].throughput * 0.9
    with pytest.raises(ValueError):
        run_sync_training(1, "resnet50")
    with pytest.raises(ValueError):
        run_sync_training(4, "resnet50", "nccl")


def test_app_result_summary():
    result = run_sync_training(4, "resnet50", "hoplite", num_rounds=1)
    summary = result.summary()
    assert summary["app"] == "sync_training"
    assert summary["system"] == "hoplite"
    assert summary["iterations"] == 1
