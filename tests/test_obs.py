"""The observability plane: metrics semantics, exporters, tracing, scoping.

Covers the plane's contracts in isolation and wired into the simulator:

* exact nearest-rank percentiles and the windowed time-series views;
* label discipline (declared names enforced, re-declaration rejected);
* Prometheus / JSON export shapes and the SLO evaluator's verdict rules;
* one-trace-per-collective linking through orchestrator lineage, including
  a fault-and-recover run whose failed and replacement attempts share the
  trace;
* the per-cluster fast-path counter scoping (the old module-global STATS
  footgun: two back-to-back runs must report identical counters) and the
  ``repro.net.fastpath`` context manager that gates both fast paths.
"""

import numpy as np
import pytest

from repro.net import coalesce, convoy
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.fastpath import COUNTER_KEYS, fastpath, is_enabled, set_enabled
from repro.obs.export import (
    SLOTarget,
    evaluate_slos,
    format_slo_table,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry, nearest_rank
from repro.store.objects import ObjectID, ObjectValue, ReduceOp, reset_id_counter

MB = 1024 * 1024


class _Clock:
    """A stand-in simulator: the registry only reads ``sim._now``."""

    def __init__(self):
        self._now = 0.0


# ---------------------------------------------------------------------------
# Metrics semantics
# ---------------------------------------------------------------------------


def test_nearest_rank_is_exact():
    values = [1.0, 2.0, 3.0, 4.0]
    assert nearest_rank(values, 50) == 2.0
    assert nearest_rank(values, 75) == 3.0
    assert nearest_rank(values, 76) == 4.0  # ceil(0.76*4)=4 -> 4th value
    assert nearest_rank(values, 100) == 4.0
    assert nearest_rank([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        nearest_rank([], 50)


def test_counter_windows_against_simulated_time():
    clock = _Clock()
    registry = MetricsRegistry(clock, window=0.1)
    counter = registry.counter("ops", "operations").labels()
    counter.inc()
    clock._now = 0.05
    counter.inc(2)
    clock._now = 0.25
    counter.inc()
    assert counter.value == 4.0
    # Two buckets: [0.0, 0.1) collected 3, [0.2, 0.3) collected 1.
    assert counter.series() == [(0.0, 3.0), (pytest.approx(0.2), 1.0)]


def test_histogram_percentiles_full_and_windowed():
    clock = _Clock()
    registry = MetricsRegistry(clock, window=1.0)
    hist = registry.histogram("latency", "", ("op",)).labels(op="get")
    for i in range(10):
        clock._now = float(i)
        hist.observe(float(i + 1))  # values 1..10 at times 0..9
    assert hist.count == 10
    assert hist.percentile(50) == 5.0
    assert hist.percentile(99) == 10.0
    # Time-windowed: only samples in [2, 5) -> values 3, 4, 5.
    assert hist.percentile(50, since=2.0, until=4.0) == 4.0
    windowed = hist.windowed_percentile(100)
    assert windowed == [(float(i), float(i + 1)) for i in range(10)]


def test_gauge_windowed_mean():
    clock = _Clock()
    registry = MetricsRegistry(clock, window=0.5)
    gauge = registry.gauge("depth", "").labels()
    for t, v in ((0.0, 2.0), (0.4, 4.0), (0.6, 10.0)):
        clock._now = t
        gauge.set(v)
    assert gauge.value == 10.0
    assert gauge.windowed_mean() == [(0.0, 3.0), (0.5, 10.0)]


def test_label_discipline():
    registry = MetricsRegistry(_Clock(), window=1.0)
    family = registry.counter("bytes", "", ("link", "cls"))
    child = family.labels(link="n0/up", cls="bulk")
    assert family.labels(cls="bulk", link="n0/up") is child  # order-free
    with pytest.raises(ValueError, match="missing label"):
        family.labels(link="n0/up")
    with pytest.raises(ValueError, match="unexpected label"):
        family.labels(link="n0/up", cls="bulk", extra="x")
    with pytest.raises(ValueError, match="re-declared"):
        registry.gauge("bytes", "", ("link", "cls"))
    with pytest.raises(ValueError, match="re-declared"):
        registry.counter("bytes", "", ("link",))
    with pytest.raises(ValueError):
        MetricsRegistry(_Clock(), window=0.0)


# ---------------------------------------------------------------------------
# Exporters and the SLO evaluator
# ---------------------------------------------------------------------------


def _latency_registry():
    clock = _Clock()
    registry = MetricsRegistry(clock, window=1.0)
    family = registry.histogram(
        "fleet_op_latency_seconds", "op latency", ("tenant", "op", "size")
    )
    for value in (0.010, 0.020, 0.030):
        family.labels(tenant="prod", op="broadcast", size="1MB").observe(value)
    family.labels(tenant="batch", op="broadcast", size="1MB").observe(0.500)
    family.labels(tenant="prod", op="gather", size="32KB").observe(0.002)
    return registry


def test_prometheus_export_shapes():
    registry = _latency_registry()
    registry.counter("ops", "total ops", ("cls",)).labels(cls="bulk").inc(3)
    registry.gauge("depth", "queue depth").labels().set(2.0)
    text = to_prometheus(registry)
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{cls="bulk"} 3' in text
    assert "# TYPE depth gauge" in text
    assert "depth 2" in text
    assert "# TYPE fleet_op_latency_seconds summary" in text
    assert (
        'fleet_op_latency_seconds{tenant="prod",op="broadcast",size="1MB",'
        'quantile="0.5"} 0.02' in text
    )
    assert (
        'fleet_op_latency_seconds_count{tenant="prod",op="broadcast",size="1MB"} 3'
        in text
    )
    # Deterministic: rendering twice is byte-identical.
    assert to_prometheus(registry) == text


def test_json_export_carries_series():
    registry = _latency_registry()
    payload = to_json(registry)
    assert payload["window"] == 1.0
    (family,) = payload["families"]
    assert family["name"] == "fleet_op_latency_seconds"
    assert family["label_names"] == ["tenant", "op", "size"]
    prod_bcast = next(
        child
        for child in family["children"]
        if child["labels"] == {"tenant": "prod", "op": "broadcast", "size": "1MB"}
    )
    assert prod_bcast["count"] == 3
    assert prod_bcast["quantiles"]["0.5"] == 0.020
    assert len(prod_bcast["series"]) == 3
    # No fastpath_stats passed -> no fastpath key (artifact shape is opt-in).
    assert "fastpath" not in payload


def test_json_export_carries_fastpath_counters():
    """The fastpath block's key set is pinned to COUNTER_KEYS: a new
    counter kind must show up in the artifact (and this test) on purpose."""
    cluster = Cluster(num_nodes=2, network=NetworkConfig())
    registry = MetricsRegistry(cluster.sim, window=1.0)
    payload = to_json(registry, fastpath_stats=cluster.fastpath_stats)
    assert set(payload["fastpath"].keys()) == set(COUNTER_KEYS)
    assert all(value == 0 for value in payload["fastpath"].values())


def test_prometheus_export_skips_empty_families():
    """Declared families nothing ever observed into emit no text at all."""
    registry = _latency_registry()
    registry.histogram("never_observed", "no children", ("op",))
    registry.counter("never_incremented", "no children", ("link",))
    text = to_prometheus(registry)
    assert "never_observed" not in text
    assert "never_incremented" not in text
    # JSON keeps the declaration (schema is part of the artifact).
    names = {family["name"] for family in to_json(registry)["families"]}
    assert "never_observed" in names and "never_incremented" in names
    # A labeled child with zero observations still renders sum/count.
    registry.counter("touched", "", ("cls",)).labels(cls="bulk")
    assert 'touched_total{cls="bulk"} 0' in to_prometheus(registry)


def test_prometheus_export_escapes_label_values_and_help():
    registry = MetricsRegistry(_Clock(), window=1.0)
    family = registry.counter("odd", 'help with \\ and\nnewline', ("name",))
    family.labels(name='a\\b"c\nd').inc()
    text = to_prometheus(registry)
    assert "# HELP odd_total help with \\\\ and\\nnewline" in text
    assert 'odd_total{name="a\\\\b\\"c\\nd"} 1' in text
    # The rendered exposition never contains a raw newline inside a sample.
    for line in text.splitlines():
        assert line == line.strip("\r")


def test_zero_or_negative_window_is_rejected():
    for window in (0.0, -1.0):
        with pytest.raises(ValueError, match="window"):
            MetricsRegistry(_Clock(), window=window)


def test_slo_evaluator_verdicts():
    registry = _latency_registry()
    targets = [
        SLOTarget("broadcast", "1MB", p50=0.025, p99=0.100),
        SLOTarget("alltoall", "2MB", p50=0.050, p99=0.100),  # no traffic
    ]
    rows = evaluate_slos(registry, targets)
    # gather has no target -> skipped; alltoall has no samples -> no row.
    assert [(row.tenant, row.op) for row in rows] == [
        ("batch", "broadcast"),
        ("prod", "broadcast"),
    ]
    batch, prod = rows
    assert prod.ok and prod.verdict == "PASS"
    assert not batch.ok and batch.verdict == "FAIL"  # 0.5s against 25ms
    table = format_slo_table(rows)
    assert "PASS" in table and "FAIL" in table
    assert evaluate_slos(MetricsRegistry(_Clock()), targets) == []


# ---------------------------------------------------------------------------
# Plane lifecycle on a live cluster
# ---------------------------------------------------------------------------


def test_enable_observability_counts_events_and_detaches():
    cluster = Cluster(num_nodes=2, network=NetworkConfig())
    obs = cluster.enable_observability()
    assert cluster.enable_observability() is obs  # idempotent accessor
    from repro.obs import Observability

    with pytest.raises(ValueError):
        Observability(cluster)

    from repro.core.runtime import HopliteRuntime

    runtime = HopliteRuntime(cluster)

    def driver():
        oid = ObjectID.unique("obs-ev")
        yield from runtime.client(0).put(oid, ObjectValue.of_size(4 * MB))
        yield from runtime.client(1).get(oid)

    cluster.sim.process(driver())
    cluster.run()
    counted = obs.registry.families["sim_events"].labels().value
    assert counted == cluster.sim.events_processed
    assert counted > 0
    bytes_family = obs.registry.families["link_bytes"]
    assert sum(child.value for child in bytes_family.children.values()) >= 4 * MB

    obs.detach()
    assert cluster.obs is None and cluster.sim.on_step is None
    assert cluster.nodes[0].uplink_sched._obs_bytes is None
    # The recorded data stays readable after detach.
    assert obs.registry.families["sim_events"].labels().value == counted


def test_fault_and_recover_is_one_trace():
    """A collective with a mid-flight failure traces as one span tree."""
    cluster = Cluster(num_nodes=5, network=NetworkConfig(bandwidth=1.25e8))
    obs = cluster.enable_observability()

    from repro.collectives.plane import HoplitePlane
    from repro.core.runtime import HopliteRuntime
    from repro.tasksys import CollectiveOrchestrator, CollectiveSpec, TaskSystem

    runtime = HopliteRuntime(cluster)
    system = TaskSystem(cluster, HoplitePlane(runtime))
    orchestrator = CollectiveOrchestrator(system)
    cluster.schedule_failure(2, at=0.2, recover_at=0.5)

    ranks = list(range(5))
    sources = {i: ObjectID.unique(f"trace-src{i}") for i in ranks}
    spec = CollectiveSpec.reduce(
        "traced",
        0,
        ranks,
        sources,
        ObjectID.unique("trace-target"),
        {
            sources[i]: ObjectValue.from_array(
                np.full(4, float(i + 1)), logical_size=16 * MB
            )
            for i in ranks
        },
        ReduceOp.SUM,
        allreduce=True,
    )
    done = {}

    def driver():
        done["outcome"] = yield from orchestrator.invoke(spec)

    cluster.sim.process(driver())
    cluster.run(until=240.0)
    assert "outcome" in done

    spans = obs.tracer.trace(spec.spec_id)
    assert spans, "the collective recorded no trace"
    root = spans[0]
    assert root.name == "collective:allreduce" and root.status == "ok"
    assert root.trace_id == spec.spec_id
    tasks = [s for s in spans if s.name.startswith("task:")]
    assert tasks and all(s.parent_id == root.span_id for s in tasks)
    # The node-2 failure killed at least one attempt; its replacement is a
    # sibling span of the same task in the same trace.
    interrupted = [s for s in tasks if s.status in ("retrying", "failed")]
    assert interrupted, "no attempt recorded the failure"
    retried_names = {s.name for s in interrupted}
    for name in retried_names:
        attempts = [s for s in tasks if s.name == name]
        assert len(attempts) >= 2, f"{name} has no replacement attempt"
        assert attempts[-1].status == "ok"
    assert system.metrics.failures >= 1
    rendered = obs.tracer.format_trace(spec.spec_id)
    assert "collective:allreduce" in rendered and "task:" in rendered


def test_trace_transfers_records_coalesced_run_spans():
    """A long broadcast coalesces; the runs appear as finished spans."""
    from repro.core.runtime import HopliteRuntime

    cluster = Cluster(num_nodes=6, network=NetworkConfig())
    obs = cluster.enable_observability(trace_transfers=True)
    runtime = HopliteRuntime(cluster)
    oid = ObjectID.unique("traced-bcast")

    def sender():
        yield from runtime.client(0).put(oid, ObjectValue.of_size(32 * MB))

    cluster.sim.process(sender())
    for node_id in range(1, 6):

        def receiver(node_id=node_id):
            yield from runtime.client(node_id).get(oid)

        cluster.sim.process(receiver())
    cluster.run()

    assert cluster.fastpath_stats["coalesced_runs"] > 0
    runs = [s for s in obs.tracer.spans if s.name == "coalesced_run"]
    assert len(runs) == cluster.fastpath_stats["coalesced_runs"]
    for span in runs:
        assert span.status in ("ok", "resplit") and span.end is not None
        assert span.attrs["kind"] == "CoalescedRun"
        assert span.attrs["blocks"] > 1


def _traced_system(num_nodes=3, workers_per_node=1):
    from repro.collectives.plane import HoplitePlane
    from repro.core.runtime import HopliteRuntime
    from repro.tasksys import TaskSystem

    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    obs = cluster.enable_observability()
    system = TaskSystem(
        cluster, HoplitePlane(HopliteRuntime(cluster)), workers_per_node=workers_per_node
    )
    return cluster, obs, system


def test_task_failing_before_start_spans_per_attempt():
    """An attempt killed while still queued is a 'retrying' span; the
    replacement attempt is a sibling in the same trace, and the task body
    never ran for the dead attempt."""
    cluster, obs, system = _traced_system()
    root = obs.tracer.root_for_spec("prestart-spec", "test")
    calls = []

    def blocker(ctx):
        yield ctx.compute(1.0)

    def victim(ctx):
        calls.append(ctx.node.node_id)
        yield ctx.compute(0.01)
        return ObjectValue.of_size(MB)

    cluster.schedule_failure(1, at=0.3)

    def driver():
        system.submit(blocker, node=1, name="blocker")
        # One worker slot per node: the victim queues behind the blocker and
        # is still waiting for the slot when node 1 dies at t=0.3.
        ref = system.submit(victim, node=1, name="victim", key="prestart-spec#w/0")
        yield from system.get(ref)

    cluster.sim.process(driver())
    cluster.run(until=60.0)

    attempts = [s for s in obs.tracer.spans if s.name == "task:victim"]
    assert len(attempts) == 2
    first, second = attempts
    assert first.status == "retrying" and first.attrs["attempt"] == 1
    assert first.attrs["node"] == 1
    assert second.status == "ok" and second.attrs["attempt"] == 2
    assert second.attrs["node"] != 1
    # Both attempts hang off the lineage root: one trace end-to-end.
    assert {s.trace_id for s in attempts} == {"prestart-spec"}
    assert {s.parent_id for s in attempts} == {root.span_id}
    # The first attempt failed before the body ever started.
    assert calls == [second.attrs["node"]]


def test_adopted_reexecution_span_is_marked():
    """A re-execution that finds its output already produced adopts it; the
    adopting attempt's span says so, in the same trace as the dead one."""
    cluster, obs, system = _traced_system()
    root = obs.tracer.root_for_spec("adopt-spec", "test")
    output_id = ObjectID.unique("adopt-out")

    def slow_task(ctx):
        yield ctx.compute(1.0)
        return ObjectValue.of_size(MB)

    def external_producer():
        # Another holder publishes the same output mid-run (e.g. a surviving
        # replica): the copy lands on node 1 before node 0 dies.
        yield cluster.sim.timeout(0.2)
        yield from system.plane.put(
            cluster.nodes[1], output_id, ObjectValue.of_size(MB)
        )

    cluster.schedule_failure(0, at=0.5)
    cluster.sim.process(external_producer())

    def driver():
        ref = system.submit(
            slow_task,
            node=0,
            name="adoptee",
            output_id=output_id,
            key="adopt-spec#w/0",
        )
        yield from system.get(ref)

    cluster.sim.process(driver())
    cluster.run(until=60.0)

    attempts = [s for s in obs.tracer.spans if s.name == "task:adoptee"]
    assert len(attempts) == 2
    first, second = attempts
    assert first.status == "retrying" and "adopted" not in first.attrs
    assert second.status == "ok" and second.attrs.get("adopted") is True
    assert system.metrics.adoptions == 1
    # Span per attempt, one trace end-to-end.
    assert {s.trace_id for s in attempts} == {"adopt-spec"}
    assert {s.parent_id for s in attempts} == {root.span_id}


# ---------------------------------------------------------------------------
# Fast-path scoping (satellites 1 and 2)
# ---------------------------------------------------------------------------


def test_fastpath_context_manager_gates_both_fast_paths():
    assert is_enabled() and coalesce.ENABLED and convoy.ENABLED
    with fastpath(False):
        assert not is_enabled()
        assert not coalesce.ENABLED and not convoy.ENABLED
        with fastpath(True):
            assert is_enabled()
        assert not is_enabled()
    assert is_enabled() and coalesce.ENABLED and convoy.ENABLED
    # set_enabled is the non-context form; restore either way.
    set_enabled(False)
    assert not coalesce.ENABLED and not convoy.ENABLED
    set_enabled(True)
    assert is_enabled()


def _broadcast_fastpath_counts() -> dict:
    """One fixed broadcast on a fresh cluster; returns its fast-path counters."""
    reset_id_counter()
    from repro.core.runtime import HopliteRuntime

    cluster = Cluster(num_nodes=6, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    oid = ObjectID.unique("scoped")

    def sender():
        yield from runtime.client(0).put(oid, ObjectValue.of_size(32 * MB))

    def receiver(node_id):
        yield from runtime.client(node_id).get(oid)

    cluster.sim.process(sender())
    for node_id in range(1, 6):
        cluster.sim.process(receiver(node_id))
    cluster.run()
    return cluster.fastpath_stats.as_dict()


def test_back_to_back_runs_report_identical_counters():
    """The counters are per cluster: no reset call, no bleed-through.

    With the old module-global STATS, the second run either reported the
    accumulated totals of both runs or required a manual reset between
    them; per-cluster scoping makes both failure modes impossible.
    """
    first = _broadcast_fastpath_counts()
    second = _broadcast_fastpath_counts()
    assert set(first) == set(COUNTER_KEYS)
    assert first["coalesced_runs"] > 0, "broadcast should coalesce"
    assert first == second
