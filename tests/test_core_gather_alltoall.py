"""Tests for the allgather / reduce-scatter / alltoall collective family."""

import math

import numpy as np
import pytest

from repro.bench.scenarios import (
    UnsupportedScenarioError,
    measure_allgather,
    measure_alltoall,
)
from repro.core import HopliteRuntime, ObjectID, ObjectValue, ReduceOp
from repro.net import Cluster, NetworkConfig
from repro.net.failure import FailureEvent

MB = 1024 * 1024


def _run_cluster(num_nodes, network=None):
    cluster = Cluster(num_nodes=num_nodes, network=network or NetworkConfig())
    return cluster, HopliteRuntime(cluster)


# ---------------------------------------------------------------------------
# Allgather
# ---------------------------------------------------------------------------


def test_allgather_every_participant_holds_every_object():
    num_nodes, nbytes = 4, 8 * MB
    cluster, runtime = _run_cluster(num_nodes)
    sim = cluster.sim
    source_ids = [ObjectID.of(f"ag-src-{i}") for i in range(num_nodes)]
    gathered = {}

    def participant(node_id):
        client = runtime.client(node_id)
        yield from client.put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(4, float(node_id + 1)), logical_size=nbytes),
        )
        result = yield from client.allgather(source_ids)
        gathered[node_id] = [value.as_array() for value in result.values]

    for node_id in range(num_nodes):
        sim.process(participant(node_id))
    cluster.run(until=60.0)

    assert sorted(gathered) == list(range(num_nodes))
    for node_id, arrays in gathered.items():
        for index, array in enumerate(arrays):
            assert np.allclose(array, index + 1), (node_id, index)


def test_allgather_requires_sources():
    cluster, runtime = _run_cluster(2)
    with pytest.raises(ValueError):
        next(runtime.client(0).allgather([]))


# ---------------------------------------------------------------------------
# Reduce-scatter
# ---------------------------------------------------------------------------


def test_reduce_scatter_each_shard_is_its_column_sum():
    num_nodes, nbytes = 4, 4 * MB
    cluster, runtime = _run_cluster(num_nodes)
    sim = cluster.sim
    # matrix[(i, j)]: produced by participant i, destined to shard j.
    matrix = {
        (i, j): ObjectID.of(f"rs-{i}-{j}")
        for i in range(num_nodes)
        for j in range(num_nodes)
    }
    shards = {}

    def participant(node_id):
        client = runtime.client(node_id)
        for j in range(num_nodes):
            yield from client.put(
                matrix[(node_id, j)],
                ObjectValue.from_array(
                    np.full(2, float(10 * node_id + j)), logical_size=nbytes
                ),
            )
        column = [matrix[(i, node_id)] for i in range(num_nodes)]
        result = yield from client.reduce_scatter(
            ObjectID.of(f"rs-shard-{node_id}"), column, ReduceOp.SUM
        )
        shards[node_id] = result.value.as_array()

    for node_id in range(num_nodes):
        sim.process(participant(node_id))
    cluster.run(until=60.0)

    assert sorted(shards) == list(range(num_nodes))
    for j, array in shards.items():
        expected = sum(10 * i + j for i in range(num_nodes))
        assert np.allclose(array, expected), j


# ---------------------------------------------------------------------------
# Alltoall
# ---------------------------------------------------------------------------


def test_alltoall_delivers_personalized_payloads():
    num_nodes, nbytes = 4, 4 * MB
    cluster, runtime = _run_cluster(num_nodes)
    sim = cluster.sim
    pair = {
        (src, dst): ObjectID.of(f"a2a-{src}-{dst}")
        for src in range(num_nodes)
        for dst in range(num_nodes)
        if src != dst
    }
    received = {}

    def participant(node_id):
        client = runtime.client(node_id)
        sends = [
            (
                pair[(node_id, dst)],
                ObjectValue.from_array(
                    np.full(2, float(100 * node_id + dst)), logical_size=nbytes
                ),
            )
            for dst in range(num_nodes)
            if dst != node_id
        ]
        recv_ids = [pair[(src, node_id)] for src in range(num_nodes) if src != node_id]
        result = yield from client.alltoall(sends, recv_ids)
        received[node_id] = {
            oid: value.as_array() for oid, value in zip(result.recv_ids, result.values)
        }

    for node_id in range(num_nodes):
        sim.process(participant(node_id))
    cluster.run(until=60.0)

    assert sorted(received) == list(range(num_nodes))
    for dst, values in received.items():
        for src in range(num_nodes):
            if src == dst:
                continue
            assert np.allclose(values[pair[(src, dst)]], 100 * src + dst), (src, dst)


def test_alltoall_requires_work():
    cluster, runtime = _run_cluster(2)
    with pytest.raises(ValueError):
        next(runtime.client(0).alltoall([], []))


# ---------------------------------------------------------------------------
# Scenario drivers (acceptance: hoplite + MPI, failures, analytical bound)
# ---------------------------------------------------------------------------


def test_measure_allgather_all_systems():
    for system in ("hoplite", "openmpi", "gloo", "ray"):
        assert measure_allgather(system, 4, 4 * MB) > 0, system
    assert measure_allgather("optimal", 4, 4 * MB) == pytest.approx(
        3 * 4 * MB / NetworkConfig().bandwidth
    )
    with pytest.raises(UnsupportedScenarioError):
        measure_allgather("gloo_ring", 4, MB)
    with pytest.raises(ValueError):
        measure_allgather("hoplite", 1, MB)


def test_measure_alltoall_all_systems():
    for system in ("hoplite", "openmpi", "gloo", "ray"):
        assert measure_alltoall(system, 4, 4 * MB) > 0, system
    with pytest.raises(UnsupportedScenarioError):
        measure_alltoall("gloo_halving_doubling", 4, MB)
    with pytest.raises(ValueError):
        measure_alltoall("hoplite", 1, MB)


def test_hoplite_allgather_within_pipelined_bound():
    """Acceptance: completion within 1.5x of S_total/B + L*log2(n)."""
    network = NetworkConfig()
    for num_nodes in (4, 8, 16):
        for nbytes in (8 * MB, 32 * MB):
            latency = measure_allgather("hoplite", num_nodes, nbytes)
            bound = (
                num_nodes * nbytes / network.bandwidth
                + network.latency * math.log2(num_nodes)
            )
            assert latency <= 1.5 * bound, (num_nodes, nbytes, latency / bound)


def test_hoplite_alltoall_within_pipelined_bound():
    """Acceptance: flow-scheduled alltoall within 1.2x of (n-1) * S / B.

    The sequential-acquisition transport left this at ~1.5x (head-of-line
    blocking at busy receivers); the reservation-based admission closes it.
    """
    network = NetworkConfig()
    for num_nodes in (8, 16):
        for nbytes in (16 * MB, 32 * MB):
            latency = measure_alltoall("hoplite", num_nodes, nbytes)
            bound = (num_nodes - 1) * nbytes / network.bandwidth
            assert latency <= 1.2 * bound, (num_nodes, nbytes, latency / bound)


def test_alltoall_flow_stats_report_busy_links():
    stats: dict = {}
    measure_alltoall("hoplite", 4, 8 * MB, flow_stats=stats)
    assert stats["mean_uplink_utilization"] > 0.5
    assert stats["bytes_by_class"]["bulk"] == 4 * 3 * 8 * MB
    assert stats["control_messages"] > 0
    assert len(stats["links"]) == 8  # one up + one down per node


def test_hoplite_allgather_and_alltoall_beat_naive_plane():
    for measure in (measure_allgather, measure_alltoall):
        hoplite = measure("hoplite", 8, 16 * MB)
        ray = measure("ray", 8, 16 * MB)
        assert hoplite < ray, measure.__name__


def test_measure_allgather_completes_under_failures():
    failures = [FailureEvent(node_id=2, fail_at=0.02, recover_at=0.3)]
    for system in ("hoplite", "openmpi"):
        clean = measure_allgather(system, 4, 16 * MB)
        disturbed = measure_allgather(system, 4, 16 * MB, failures=failures)
        assert disturbed > 0, system
        # The failure costs time but the operation still terminates.
        assert disturbed >= clean, system


def test_measure_alltoall_completes_under_failures():
    failures = [FailureEvent(node_id=1, fail_at=0.02, recover_at=0.3)]
    for system in ("hoplite", "openmpi"):
        disturbed = measure_alltoall(system, 4, 16 * MB, failures=failures)
        assert disturbed > 0, system
