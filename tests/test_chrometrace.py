"""Tests for the Chrome-trace (Perfetto) exporter."""

import json

from repro.obs.chrometrace import to_chrome_trace


def _traced_fleet():
    import repro.net.cluster as cluster_mod
    from repro.bench.fleet import run_fleet
    from repro.store.objects import reset_id_counter

    previous = cluster_mod.ON_CREATE

    def _hook(cluster):
        if previous is not None:
            previous(cluster)
        cluster.enable_flight_recorder()

    cluster_mod.ON_CREATE = _hook
    try:
        reset_id_counter()
        result = run_fleet(
            num_jobs=8, num_racks=2, nodes_per_rack=4, quick=True,
            trace_transfers=True,
        )
    finally:
        cluster_mod.ON_CREATE = previous
    return result


def _serialized() -> str:
    result = _traced_fleet()
    doc = to_chrome_trace(obs=result.obs, flight=result.cluster.flight)
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def test_fixed_seed_export_is_byte_identical():
    """The golden-determinism property CI checks: same seed, same bytes."""
    assert _serialized() == _serialized()


def test_trace_structure():
    result = _traced_fleet()
    doc = to_chrome_trace(obs=result.obs, flight=result.cluster.flight)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    by_phase: dict = {}
    for event in events:
        by_phase.setdefault(event["ph"], []).append(event)

    # Metadata names every process and thread with deterministic ids.
    meta = by_phase["M"]
    process_names = {
        e["args"]["name"]: e["pid"] for e in meta if e["name"] == "process_name"
    }
    assert {"ranks", "links", "counters"} <= set(process_names)
    thread_names = [e for e in meta if e["name"] == "thread_name"]
    rank_pid = process_names["ranks"]
    rank_tracks = {
        e["args"]["name"] for e in thread_names if e["pid"] == rank_pid
    }
    assert any(name.startswith("rank ") for name in rank_tracks)
    link_pid = process_names["links"]
    link_tracks = {
        e["args"]["name"] for e in thread_names if e["pid"] == link_pid
    }
    assert any(">" in name for name in link_tracks)  # n{src}>n{dst}

    # Complete events: spans on rank tracks, grant->release holds on links.
    complete = by_phase["X"]
    assert any(e["pid"] == rank_pid for e in complete)
    holds = [e for e in complete if e["pid"] == link_pid]
    assert holds and all(e["dur"] >= 0.0 for e in holds)
    assert all(e["ts"] >= 0.0 for e in complete)

    # Instants: arrivals on link tracks.
    instants = by_phase["i"]
    assert any(e["name"].startswith("arrive ") for e in instants)

    # Counter track: queue depth per link direction.
    counters = by_phase["C"]
    assert counters and all(e["pid"] == process_names["counters"] for e in counters)
    assert all("depth" in e["args"] for e in counters)

    # Ordering: body events are sorted by timestamp after the metadata.
    body = [e for e in events if e["ph"] != "M"]
    assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)


def test_empty_inputs_yield_empty_trace():
    doc = to_chrome_trace()
    assert doc["traceEvents"] == []


def test_spans_without_owner_group_by_trace_id():
    from repro.obs.chrometrace import _span_track

    class FakeSpan:
        attrs = {"bytes": 1}
        trace_id = "t-42"

    assert _span_track(FakeSpan()) == ("ops", "t-42")

    class Owned:
        attrs = {"src": 3}
        trace_id = "t-43"

    assert _span_track(Owned()) == ("ranks", "rank 3")
