"""Golden determinism: the fast-path kernel reproduces the slow kernel bit-for-bit.

The digests below were recorded on the pre-fast-path simulator (before
coalesced block transfers, incremental admission matching, and the memoized
fabric paths landed).  Every optimization since must keep them byte-identical:
a digest covers completion times at full float precision, per-link and
per-tier byte counters, control-message counts, and the global ObjectID
allocation state — see :mod:`repro.bench.digest` for exactly what is hashed.

If one of these fails after an intentional *behaviour* change (a new
scheduling policy, a model change), re-record the digest in the same commit
and say so in the commit message; if it fails after a *performance* change,
the performance change is wrong.
"""

import pytest

from repro.bench.digest import (
    RECORDED_DIGESTS as RECORDED,
    golden_fault_matrix_cell,
    golden_fig7_cell,
    golden_matching_cell,
)


def test_golden_fig7_cell_matches_pre_fastpath_kernel():
    assert golden_fig7_cell() == RECORDED["fig7_flat"]


def test_golden_fault_matrix_cell_matches_pre_fastpath_kernel():
    assert golden_fault_matrix_cell() == RECORDED["fault_matrix_2rack"]


def test_golden_matching_cell_16_matches_pre_convoy_kernel():
    """Contention-bound collectives at 16 nodes (pre-convoy recording)."""
    assert golden_matching_cell(16) == RECORDED["matching_16"]


def test_golden_matching_cell_64_matches_pre_convoy_kernel():
    """The fig7_64_matching population itself (pre-convoy recording)."""
    assert golden_matching_cell(64) == RECORDED["matching_64"]


@pytest.mark.parametrize("cell", ["fig7_flat", "fault_matrix_2rack"])
def test_golden_cells_are_run_to_run_stable(cell):
    """Two runs in the same process agree (no hidden global state leaks)."""
    from repro.bench.digest import GOLDEN_CELLS

    assert GOLDEN_CELLS[cell]() == GOLDEN_CELLS[cell]()
