"""Differential lockdown: fast paths on == fast paths off, bit for bit.

Each seed derives one random scenario (collective x size x topology x jitter
x faults — see :mod:`repro.bench.fuzz`) and runs it twice, with the
coalescing/convoy fast paths enabled and disabled.  The two runs must agree
on the full behaviour digest: completion times at repr precision, per-link
byte counters by flow class, control-message counts, and the ObjectID
allocation order.

The tier-1 band here is ~20 seeds; `python -m repro.bench.fuzz --seeds N`
sweeps deeper.  A failing seed prints its spec — reproduce it directly with
``fuzz.differential(seed)``.
"""

import pytest

from repro.bench.fuzz import TIER1_SEEDS, differential


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_fast_paths_match_slow_kernel(seed):
    spec, on, off = differential(seed)
    assert on == off, f"fast-path divergence: {spec.describe()}"
