"""The causal critical-path profiler: walk semantics and end-to-end blame.

The synthetic cases pin the backward walk's arithmetic — the exact
partition of an op window into the seven blame categories, the priority
order of the gap classifier, proportional link blame — and the span ->
evidence conversion.  The end-to-end case runs a fault-and-recover
allreduce under ``trace_transfers`` and checks the whole-cluster blame
partitions exactly and surfaces the failure as detect/recovery time.
"""

import numpy as np
import pytest

from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.obs.critpath import (
    CATEGORIES,
    BlameRow,
    TransferUnit,
    aggregate_blames,
    blame_window,
    cluster_blame,
    format_blame_table,
    scenario_summary,
    unit_from_span,
)
from repro.obs.trace import Span, Tracer
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

MB = 1024 * 1024


def _unit(submit, grant, tx_end, arrive, nbytes=MB, links=(), flow=""):
    return TransferUnit(
        submit=submit,
        grant=grant,
        tx_end=tx_end,
        arrive=arrive,
        nbytes=nbytes,
        links=tuple(links),
        flow=flow,
    )


def _sum(blame):
    return sum(blame.categories.values())


# ---------------------------------------------------------------------------
# The backward walk
# ---------------------------------------------------------------------------


def test_two_unit_chain_partitions_exactly():
    """Two back-to-back transfers plus leading/trailing slack."""
    units = [
        _unit(0.5, 1.0, 2.0, 2.5),  # gw 0.5, tx 1.0, prop 0.5
        _unit(2.5, 4.0, 5.0, 5.5),  # gw 1.5, tx 1.0, prop 0.5
    ]
    blame = blame_window("op", "t", 0.0, 6.0, units, [], [], [])
    c = blame.categories
    assert c["grant_wait"] == pytest.approx(2.0)
    assert c["tx"] == pytest.approx(2.0)
    assert c["propagation"] == pytest.approx(1.0)
    # [0, 0.5) before the first submit and (5.5, 6.0] after the last
    # arrival have no evidence: straggler.
    assert c["straggler"] == pytest.approx(1.0)
    assert c["compute"] == c["detect"] == c["recovery"] == 0.0
    assert _sum(blame) == pytest.approx(blame.length)
    assert blame.top_category()[0] in ("grant_wait", "tx")


def test_gap_classifier_priority_order():
    """detect > recovery > compute > straggler, overlap never double-counts."""
    blame = blame_window(
        "op",
        "t",
        0.0,
        10.0,
        units=[],
        busy=[(3.0, 6.0)],
        detect=[(1.0, 2.0)],
        recovery=[(1.5, 4.0)],
    )
    c = blame.categories
    assert c["detect"] == pytest.approx(1.0)  # [1, 2) wins over recovery
    assert c["recovery"] == pytest.approx(2.0)  # [2, 4) left after detect
    assert c["compute"] == pytest.approx(2.0)  # [4, 6) left after recovery
    assert c["straggler"] == pytest.approx(5.0)  # [0, 1) + [6, 10)
    assert _sum(blame) == pytest.approx(10.0)


def test_overlapping_units_never_overcount():
    """Concurrent transfers: blame clips to the uncovered prefix."""
    units = [
        _unit(0.0, 0.0, 2.0, 2.0),
        _unit(0.0, 0.0, 2.5, 2.5),  # the later arrival drives the walk
    ]
    blame = blame_window("op", "t", 0.0, 2.5, units, [], [], [])
    assert _sum(blame) == pytest.approx(2.5)
    assert blame.categories["tx"] == pytest.approx(2.5)


def test_link_blame_is_proportional_to_blamed_time():
    unit = _unit(0.0, 2.0, 3.0, 3.0, nbytes=1000, links=("rack0/up",))
    # Full window: gw 2.0 + tx 1.0 blamed -> all 1000 bytes.
    full = blame_window("op", "t", 0.0, 3.0, [unit], [], [], [])
    assert full.link_blame["rack0/up"] == pytest.approx(1000.0)
    assert full.top_link() == "rack0/up"
    # Window clipped to the last 0.5s of tx: 0.5 / 3.0 of the bytes.
    part = blame_window("op", "t", 2.5, 3.0, [unit], [], [], [])
    assert part.link_blame["rack0/up"] == pytest.approx(1000.0 / 6.0)


def test_empty_window_is_all_zero():
    blame = blame_window("op", "t", 1.0, 1.0, [], [], [], [])
    assert blame.length == 0.0 and _sum(blame) == 0.0
    assert blame.top_category() == ("straggler", 0.0)
    assert blame.top_link() is None


# ---------------------------------------------------------------------------
# Span -> evidence
# ---------------------------------------------------------------------------


def test_unit_from_block_span():
    span = Span(
        None,
        "t",
        1,
        None,
        "block",
        1.0,
        {
            "grant_wait": 0.25,
            "lat": 0.001,
            "bytes": 4 * MB,
            "links": ("n0/up", "n1/down"),
            "flow": "get:x->n1",
        },
    )
    span.end = 2.0
    unit = unit_from_span(span)
    assert unit == TransferUnit(
        submit=1.0,
        grant=1.25,
        tx_end=2.0,
        arrive=2.001,
        nbytes=4 * MB,
        links=("n0/up", "n1/down"),
        flow="get:x->n1",
    )
    # Unfinished spans contribute nothing.
    span.end = None
    assert unit_from_span(span) is None


def test_unit_from_coalesced_run_span():
    span = Span(
        None,
        "t",
        1,
        None,
        "coalesced_run",
        0.0,
        {"s0": 0.5, "tx_sum": 1.0, "bytes": 8 * MB, "links": ("n0/up",)},
    )
    span.end = 2.0
    unit = unit_from_span(span)
    assert unit.submit == 0.0 and unit.grant == 0.5
    assert unit.tx_end == pytest.approx(1.5) and unit.arrive == 2.0
    # tx_sum overshooting the arrival (clock skew) clamps, keeping the
    # phases ordered submit <= grant <= tx_end <= arrive.
    span.attrs["tx_sum"] = 10.0
    clamped = unit_from_span(span)
    assert clamped.tx_end == clamped.arrive == 2.0
    # Other span names are not transfer evidence.
    other = Span(None, "t", 2, None, "task:x", 0.0, {})
    other.end = 1.0
    assert unit_from_span(other) is None


def test_span_for_flow_strips_reduce_source_endpoint():
    class _Clock:
        _now = 0.0

    tracer = Tracer(_Clock())
    span = tracer.start_span("collective:reduce", trace_id="spec-1")
    tracer.bind_object("target:n2", span)
    # A reduce partial's flow id embeds the source endpoint after the oid.
    assert tracer.span_for_flow("reduce:target:n2->n0") is span
    # The bare form without a tag still resolves.
    tracer.bind_object("plain", span)
    assert tracer.span_for_flow("get:plain->n3") is span
    assert tracer.span_for_flow("get:unknown->n3") is None


# ---------------------------------------------------------------------------
# Aggregation + rendering
# ---------------------------------------------------------------------------


def test_aggregate_and_format_blame_table():
    from repro.obs.critpath import OpBlame

    def _blame(tenant, op, gw, tx):
        b = OpBlame(
            name=f"op:{op}",
            trace_id="t",
            start=0.0,
            end=gw + tx,
            categories={c: 0.0 for c in CATEGORIES},
            attrs={"tenant": tenant, "op": op},
        )
        b.categories["grant_wait"] = gw
        b.categories["tx"] = tx
        b.link_blame["rack0/up"] = 100.0
        return b

    rows = aggregate_blames(
        [
            _blame("prod", "allreduce", 1.0, 1.0),
            _blame("prod", "allreduce", 3.0, 1.0),
            _blame("batch", "gather", 0.0, 2.0),
        ]
    )
    assert [(r.tenant, r.op) for r in rows] == [
        ("batch", "gather"),
        ("prod", "allreduce"),
    ]
    prod = rows[1]
    assert prod.count == 2 and prod.total == pytest.approx(6.0)
    assert prod.top_category() == ("grant_wait", pytest.approx(4.0 / 6.0))
    assert prod.link_blame["rack0/up"] == pytest.approx(200.0)
    table = format_blame_table(rows)
    assert table == format_blame_table(rows)  # deterministic
    assert "rack0/up" in table and "grant_wait" in table
    assert "prod" in table and "batch" in table
    # scenario_summary fractions sum to ~1 for a fully attributed blame.
    summary = scenario_summary(_blame("prod", "allreduce", 1.0, 1.0))
    assert summary["length"] == pytest.approx(2.0)
    assert sum(summary["fractions"].values()) == pytest.approx(1.0, abs=1e-3)


def test_blame_row_as_dict_is_json_shaped():
    row = BlameRow(
        tenant="prod",
        op="gather",
        count=1,
        total=1.0,
        categories={"tx": 1.0},
        link_blame={"a": 1.0, "b": 2.0},
    )
    d = row.as_dict()
    assert set(d["categories"]) == set(CATEGORIES)
    assert list(d["link_blame"]) == ["a", "b"]


# ---------------------------------------------------------------------------
# End to end: a traced fault-and-recover collective
# ---------------------------------------------------------------------------


def test_cluster_blame_on_fault_and_recover_run():
    """The whole traced window partitions; the fault shows up as blame."""
    cluster = Cluster(num_nodes=5, network=NetworkConfig(bandwidth=1.25e8))
    obs = cluster.enable_observability(trace_transfers=True)

    from repro.collectives.plane import HoplitePlane
    from repro.core.runtime import HopliteRuntime
    from repro.tasksys import CollectiveOrchestrator, CollectiveSpec, TaskSystem

    runtime = HopliteRuntime(cluster)
    system = TaskSystem(cluster, HoplitePlane(runtime))
    orchestrator = CollectiveOrchestrator(system)
    cluster.schedule_failure(2, at=0.2, recover_at=0.5)

    ranks = list(range(5))
    sources = {i: ObjectID.unique(f"blame-src{i}") for i in ranks}
    spec = CollectiveSpec.reduce(
        "blamed",
        0,
        ranks,
        sources,
        ObjectID.unique("blame-target"),
        {
            sources[i]: ObjectValue.from_array(
                np.full(4, float(i + 1)), logical_size=16 * MB
            )
            for i in ranks
        },
        ReduceOp.SUM,
        allreduce=True,
    )
    done = {}

    def driver():
        done["outcome"] = yield from orchestrator.invoke(spec)

    cluster.sim.process(driver())
    cluster.run(until=240.0)
    assert "outcome" in done

    # The plane recorded the membership transitions the detect window needs.
    assert (0.2, 2, "down") in obs.node_events
    assert (0.5, 2, "up") in obs.node_events

    blame = cluster_blame(obs, "fault-allreduce")
    assert blame.length > 0
    assert _sum(blame) == pytest.approx(blame.length, rel=1e-9)
    # Real transfers put real time on the wire...
    assert blame.categories["tx"] > 0
    assert blame.link_blame and blame.top_link() is not None
    # ...and the failure is visible as detection and/or recovery time.
    assert blame.categories["detect"] + blame.categories["recovery"] > 0
