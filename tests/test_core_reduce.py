"""Tests for the dynamic tree reduce: shape, placement, correctness, failures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HopliteOptions, HopliteRuntime, ObjectID, ObjectValue, ReduceOp
from repro.core.reduce import (
    build_inorder_tree,
    choose_reduce_degree,
    inorder_traversal,
    reduce_time_model,
    tree_depth,
)
from repro.net import Cluster, NetworkConfig

MB = 1024 * 1024
KB = 1024


# ---------------------------------------------------------------------------
# Tree shape
# ---------------------------------------------------------------------------


def test_chain_tree_shape():
    slots = build_inorder_tree(5, 1)
    assert inorder_traversal(slots) == [0, 1, 2, 3, 4]
    # Chain: each rank's parent is the next arrival; the last arrival is the root.
    assert [slot.parent for slot in slots] == [1, 2, 3, 4, None]
    assert tree_depth(slots) == 4


def test_flat_tree_shape():
    slots = build_inorder_tree(6, 0)
    assert inorder_traversal(slots) == [0, 1, 2, 3, 4, 5]
    root = [slot for slot in slots if slot.parent is None][0]
    # Flat tree: the second arrival is the root and everyone else is its child.
    assert root.rank == 1
    assert sorted(root.children) == [0, 2, 3, 4, 5]
    assert tree_depth(slots) == 1


def test_binary_tree_shape_matches_paper_example():
    slots = build_inorder_tree(6, 2)
    assert inorder_traversal(slots) == [0, 1, 2, 3, 4, 5]
    assert tree_depth(slots) <= 3
    root = [slot for slot in slots if slot.parent is None][0]
    assert len(root.children) <= 2


def test_empty_and_single_slot_trees():
    assert build_inorder_tree(0, 2) == []
    single = build_inorder_tree(1, 2)
    assert single[0].parent is None and single[0].children == []


@settings(max_examples=80, deadline=None)
@given(
    num_slots=st.integers(min_value=1, max_value=40),
    degree=st.integers(min_value=0, max_value=6),
)
def test_inorder_tree_properties(num_slots, degree):
    """Property: the tree is a valid d-ary tree whose in-order walk is arrival order."""
    slots = build_inorder_tree(num_slots, degree)
    assert len(slots) == num_slots
    effective_degree = num_slots if degree <= 0 else degree
    roots = [slot for slot in slots if slot.parent is None]
    assert len(roots) == 1
    for slot in slots:
        assert len(slot.children) <= effective_degree
        for child in slot.children:
            assert slots[child].parent == slot.rank
    assert inorder_traversal(slots) == list(range(num_slots))


# ---------------------------------------------------------------------------
# Degree selection model (Equation 1)
# ---------------------------------------------------------------------------


def test_time_model_limits():
    latency, bandwidth = 1e-4, 1.25e9
    nbytes = 1024
    # Tiny objects: flat tree has the lowest estimate.
    flat = reduce_time_model(16, 0, nbytes, latency, bandwidth)
    chain = reduce_time_model(16, 1, nbytes, latency, bandwidth)
    assert flat < chain
    # Huge objects: the chain has the lowest estimate.
    nbytes = 1 << 30
    flat = reduce_time_model(16, 0, nbytes, latency, bandwidth)
    chain = reduce_time_model(16, 1, nbytes, latency, bandwidth)
    binary = reduce_time_model(16, 2, nbytes, latency, bandwidth)
    assert chain < binary < flat
    assert reduce_time_model(1, 2, nbytes, latency, bandwidth) == pytest.approx(latency)


@settings(max_examples=200, deadline=None)
@given(
    num_objects=st.integers(min_value=2, max_value=512),
    size_exp=st.floats(min_value=0.0, max_value=33.0),     # 1 B .. 8 GB
    latency_exp=st.floats(min_value=-6.0, max_value=-1.0),  # 1 us .. 100 ms
    bandwidth_exp=st.floats(min_value=6.0, max_value=11.0),  # 1 MB/s .. 100 GB/s
)
def test_choose_degree_is_bruteforce_argmin(num_objects, size_exp, latency_exp, bandwidth_exp):
    """Property: the selected degree achieves the brute-force minimum of the
    Equation 1 model over the paper's candidate set d in {1, 2, n}."""
    object_size = 2.0 ** size_exp
    latency = 10.0 ** latency_exp
    bandwidth = 10.0 ** bandwidth_exp
    chosen = choose_reduce_degree(num_objects, object_size, latency, bandwidth)
    assert chosen in (1, 2, num_objects)
    chosen_candidate = 0 if chosen == num_objects else chosen
    chosen_time = reduce_time_model(num_objects, chosen_candidate, object_size, latency, bandwidth)
    best_time = min(
        reduce_time_model(num_objects, candidate, object_size, latency, bandwidth)
        for candidate in (1, 2, 0)
    )
    assert chosen_time <= best_time * (1.0 + 1e-12)


def test_choose_reduce_degree_extremes_and_candidates():
    latency, bandwidth = 5e-5, 1.25e9
    assert choose_reduce_degree(16, 1 * KB, latency, bandwidth) == 16
    assert choose_reduce_degree(16, 1 << 30, latency, bandwidth) == 1
    assert choose_reduce_degree(1, 1 << 30, latency, bandwidth) == 1
    # Restricting the candidate set is honoured.
    assert choose_reduce_degree(16, 1 << 30, latency, bandwidth, candidates=(2,)) == 2


# ---------------------------------------------------------------------------
# End-to-end reduce
# ---------------------------------------------------------------------------


def run_reduce(
    num_nodes,
    nbytes,
    num_objects=None,
    options=None,
    producer_delays=None,
    failure=None,
    op=ReduceOp.SUM,
):
    """All nodes put one object (value = node_id + 1); node 0 reduces and gets."""
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    runtime = HopliteRuntime(cluster, options=options)
    sim = cluster.sim
    source_ids = [ObjectID.of(f"src-{i}") for i in range(num_nodes)]
    target_id = ObjectID.of("target")
    outcome = {}

    def producer(node_id):
        delay = (producer_delays or {}).get(node_id, 0.0)
        if delay:
            yield sim.timeout(delay)
        value = ObjectValue.from_array(
            np.full(4, float(node_id + 1)), logical_size=nbytes
        )
        yield from runtime.client(node_id).put(source_ids[node_id], value)

    def reducer():
        client = runtime.client(0)
        result = yield from client.reduce(target_id, source_ids, op, num_objects=num_objects)
        value = yield from client.get(target_id)
        outcome["result"] = result
        outcome["array"] = value.as_array()
        outcome["finish"] = sim.now

    for node_id in range(num_nodes):
        sim.process(producer(node_id))
    sim.process(reducer())
    if failure is not None:
        cluster.schedule_failure(*failure)
    cluster.run(until=600.0)
    return outcome, runtime


def test_reduce_sum_correctness_all_objects():
    outcome, _ = run_reduce(6, 32 * MB)
    assert np.allclose(outcome["array"], sum(range(1, 7)))
    assert sorted(o.key for o in outcome["result"].reduced_ids) == [
        f"src-{i}" for i in range(6)
    ]
    assert outcome["result"].unreduced_ids == []


def test_reduce_min_and_max():
    outcome, _ = run_reduce(4, 8 * MB, op=ReduceOp.MAX)
    assert np.allclose(outcome["array"], 4.0)
    outcome, _ = run_reduce(4, 8 * MB, op=ReduceOp.MIN)
    assert np.allclose(outcome["array"], 1.0)


def test_reduce_subset_takes_earliest_arrivals():
    delays = {0: 0.0, 1: 0.01, 2: 0.02, 3: 0.5, 4: 0.6, 5: 0.7}
    outcome, _ = run_reduce(6, 16 * MB, num_objects=3, producer_delays=delays)
    result = outcome["result"]
    assert len(result.reduced_ids) == 3
    assert sorted(o.key for o in result.reduced_ids) == ["src-0", "src-1", "src-2"]
    assert np.allclose(outcome["array"], 1 + 2 + 3)
    assert len(result.unreduced_ids) == 3


def test_reduce_degree_override_is_respected():
    for degree, expected in ((1, 1), (2, 2), (0, 5)):
        outcome, _ = run_reduce(
            5, 16 * MB, options=HopliteOptions(reduce_degree=degree)
        )
        assert outcome["result"].degree == expected
        assert np.allclose(outcome["array"], sum(range(1, 6)))


def test_reduce_selects_chain_for_large_and_flat_for_small():
    large, _ = run_reduce(6, 64 * MB)
    assert large["result"].degree == 1
    small, _ = run_reduce(
        6, 4 * KB, options=HopliteOptions(enable_small_object_cache=False)
    )
    assert small["result"].degree == 6


def test_reduce_single_source():
    outcome, _ = run_reduce(1, 4 * MB)
    assert np.allclose(outcome["array"], 1.0)


def test_reduce_makes_progress_before_last_arrival():
    """The reduce of early arrivals overlaps the wait for the last object."""
    nbytes = 64 * MB
    stagger = {node_id: 0.15 * node_id for node_id in range(6)}
    outcome, runtime = run_reduce(6, nbytes, producer_delays=stagger)
    last_arrival = max(stagger.values())
    transfer = runtime.config.transmission_time(nbytes)
    # If nothing overlapped, the finish would be at least last_arrival plus
    # several full transfers; with streaming it is close to one transfer after
    # the last arrival (plus the final Get by the caller).
    assert outcome["finish"] < last_arrival + 3.0 * transfer
    assert np.allclose(outcome["array"], sum(range(1, 7)))


def test_reduce_replaces_failed_participant():
    """A participant that dies is replaced by the next available object (Section 3.5.2)."""
    delays = {node_id: 0.02 * node_id for node_id in range(8)}
    outcome, _ = run_reduce(
        8,
        32 * MB,
        num_objects=5,
        producer_delays=delays,
        failure=(2, 0.08, None),
    )
    result = outcome["result"]
    assert len(result.reduced_ids) == 5
    # src-2 was lost with its node and must have been replaced by a later object.
    reduced_keys = {o.key for o in result.reduced_ids}
    assert "src-2" not in reduced_keys
    expected = sum(int(key.split("-")[1]) + 1 for key in reduced_keys)
    assert np.allclose(outcome["array"], expected)


def test_reduce_waits_for_reconstruction_when_nothing_can_replace():
    """With no spare objects, the reduce completes only after the failed object reappears."""
    cluster = Cluster(num_nodes=3, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    source_ids = [ObjectID.of(f"g-{i}") for i in range(3)]
    target_id = ObjectID.of("t")
    outcome = {}

    def producer(node_id, delay=0.0):
        if delay:
            yield sim.timeout(delay)
        yield from runtime.client(node_id).put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(2, float(node_id + 1)), logical_size=16 * MB),
        )

    def reducer():
        result = yield from runtime.client(0).reduce(target_id, source_ids, ReduceOp.SUM)
        value = yield from runtime.client(0).get(target_id)
        outcome["array"] = value.as_array()
        outcome["finish"] = sim.now
        outcome["result"] = result

    for node_id in range(3):
        sim.process(producer(node_id))
    sim.process(reducer())
    # Node 2 dies while its Put is still in flight, so its object is lost and
    # nothing can replace it; it "recovers" by re-putting the same ObjectID
    # (in a real deployment the task system re-executes the producer task).
    cluster.schedule_failure(2, at=0.003, recover_at=1.0)

    def reconstruct():
        yield sim.timeout(1.1)
        yield from runtime.client(2).put(
            source_ids[2], ObjectValue.from_array(np.full(2, 3.0), logical_size=16 * MB)
        )

    sim.process(reconstruct())
    cluster.run(until=300.0)
    assert "array" in outcome, "reduce did not complete after reconstruction"
    assert np.allclose(outcome["array"], 1 + 2 + 3)
    assert outcome["finish"] >= 1.1


def test_incremental_reduce_composes():
    """The output of one Reduce can be a source of the next (Section 3.4.2)."""
    cluster = Cluster(num_nodes=4, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    stage_one = ObjectID.of("stage-one")
    stage_two = ObjectID.of("stage-two")
    src = [ObjectID.of(f"s{i}") for i in range(4)]
    outcome = {}

    def producer(node_id):
        yield from runtime.client(node_id).put(
            src[node_id],
            ObjectValue.from_array(np.full(2, float(node_id + 1)), logical_size=8 * MB),
        )

    def reducer():
        client = runtime.client(0)
        yield from client.reduce(stage_one, src[:2], ReduceOp.SUM)
        yield from client.reduce(stage_two, [stage_one, src[2], src[3]], ReduceOp.SUM)
        value = yield from client.get(stage_two)
        outcome["array"] = value.as_array()

    for node_id in range(4):
        sim.process(producer(node_id))
    sim.process(reducer())
    cluster.run(until=300.0)
    assert np.allclose(outcome["array"], 1 + 2 + 3 + 4)


def test_reduce_argument_validation():
    cluster = Cluster(num_nodes=2, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    client = runtime.client(0)
    with pytest.raises(ValueError):
        next(client.reduce(ObjectID.of("t"), []))
    with pytest.raises(ValueError):
        next(client.reduce(ObjectID.of("t"), [ObjectID.of("a")], num_objects=5))
