"""Tests for the host-clock self-profiler and the event-locality oracle."""

import pathlib
import re

import pytest

from repro.net import Cluster, NetworkConfig
from repro.obs.hostprof import CATEGORIES, HostProfiler, format_table
from repro.obs.locality import format_locality_report

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: every file with profiler/locality instrumentation sites.
INSTRUMENTED = (
    "sim/core.py",
    "sim/resources.py",
    "directory/service.py",
    "net/flowsched.py",
    "net/coalesce.py",
    "net/convoy.py",
)

_BINDING = re.compile(r"^\s*(\w+)(?::[^=]+)? = .*\.(host_prof|locality)\s*$")
_DEFINITION = re.compile(r"^\s*self\.(host_prof|locality)\s*:")


def test_disabled_sites_are_single_is_not_none_branch():
    """Every profiler/locality site loads the hook into a local and guards
    it with one ``is (not) None`` branch — the cost when disabled is one
    attribute read and one branch, nothing else (the discipline every
    other observability hook in the kernel follows)."""
    for rel in INSTRUMENTED:
        lines = (SRC / rel).read_text().splitlines()
        for index, line in enumerate(lines):
            if ".host_prof" not in line and ".locality" not in line:
                continue
            stripped = line.strip()
            if stripped.startswith("#") or stripped.startswith('"'):
                continue
            if _DEFINITION.match(line) or '"host_prof"' in line:
                continue  # the Simulator attribute definitions
            match = _BINDING.match(line)
            assert match, f"{rel}:{index + 1}: unexpected site shape: {line!r}"
            name = match.group(1)
            window = "\n".join(lines[index + 1 : index + 6])
            assert (
                f"if {name} is not None" in window or f"if {name} is None" in window
            ), f"{rel}:{index + 1}: binding {name!r} is not None-guarded nearby"


def test_boundary_accounting_sums_and_nests():
    prof = HostProfiler()
    prof.begin_run()
    prof.enter("dispatch")
    prof.enter("admission")
    prof.exit()
    prof.enter("directory")
    prof.exit()
    prof.exit()
    prof.end_run()
    report = prof.report()
    assert report["clock"] == "host"
    assert report["counts"]["dispatch"] == 1
    assert report["counts"]["admission"] == 1
    assert report["counts"]["directory"] == 1
    # Self-times sum to the instrumented total, which covers ~all run wall
    # (each category rounds to the microsecond independently, hence abs=).
    assert report["instrumented_wall_s"] == pytest.approx(
        sum(report["categories"].values()), abs=len(CATEGORIES) * 1e-6
    )
    assert report["kernel_wall_s"] >= report["instrumented_wall_s"] > 0.0
    # This synthetic run is microseconds long, so the one uncovered gap
    # (last exit -> end_run) can be a visible fraction; the >= 0.95
    # acceptance bar is asserted on a real scenario below.
    assert 0.0 < report["coverage"] <= 1.0
    table = format_table(report)
    assert "dispatch" in table and "coverage" in table


def test_merge_accumulates_across_profilers():
    a, b = HostProfiler(), HostProfiler()
    for prof in (a, b):
        prof.begin_run()
        prof.enter("dispatch")
        prof.exit()
        prof.end_run()
    counts_a = a.counts["dispatch"]
    a.merge(b)
    assert a.counts["dispatch"] == counts_a + 1
    assert a.run_ns >= b.run_ns


def _profiled_fleet():
    import repro.net.cluster as cluster_mod
    from repro.bench.fleet import run_fleet
    from repro.store.objects import reset_id_counter

    captured = []
    previous = cluster_mod.ON_CREATE

    def _hook(cluster):
        if previous is not None:
            previous(cluster)
        cluster.enable_host_profiler()
        cluster.enable_locality_analyzer()
        captured.append(cluster)

    cluster_mod.ON_CREATE = _hook
    try:
        reset_id_counter()
        result = run_fleet(
            num_jobs=8, num_racks=2, nodes_per_rack=4, quick=True, observe=False
        )
    finally:
        cluster_mod.ON_CREATE = previous
    (cluster,) = captured
    return result, cluster


def test_blame_covers_kernel_wall_on_a_real_scenario():
    """Acceptance bar: categories sum to >= 95% of measured kernel wall."""
    _result, cluster = _profiled_fleet()
    report = cluster.hostprof.report()
    assert report["coverage"] >= 0.95
    assert report["instrumented_wall_s"] == pytest.approx(
        sum(report["categories"].values()), abs=len(CATEGORIES) * 1e-6
    )
    # The fleet exercises every instrumented subsystem except coalescing
    # (its collectives take the convoy/plain paths at these sizes).
    for cat in ("dispatch", "admission", "flowsched", "directory"):
        assert report["counts"][cat] > 0, cat


def test_locality_report_sanity_on_hierarchical_fleet():
    _result, cluster = _profiled_fleet()
    analyzer = cluster.locality
    report = analyzer.report()
    assert report["clock"] == "sim"
    assert report["events"] == cluster.sim.events_processed
    assert 0.0 < report["tagged_fraction"] <= 1.0
    # A two-rack fleet synchronizes: shared-tier reservations + cross-rack
    # directory RPCs both occur.
    assert report["cross_tier_reservations"] > 0
    assert report["cross_rack_rpcs"] > 0
    assert 0.0 < report["sync_fraction"] < 1.0
    arrivals = report["arrivals"]
    assert arrivals["rack_local"] > 0 and arrivals["cross_rack"] > 0
    racks = report["racks"]
    assert racks["count"] == 2
    assert sum(racks["events_per_rack"]) == len(analyzer.nodes)
    assert racks["load_balance_max_over_mean"] >= 1.0
    # The PDES bound covers the actual rack count and is a true bound:
    # >= 1 (never worse than serial) and monotone inputs keep it finite.
    assert "2" in report["pdes"]
    for row in report["pdes"].values():
        assert row["lookahead_s"] > 0.0
        assert row["projected_speedup_bound"] >= 1.0
    rendered = format_locality_report(report)
    assert "lookahead-safe" in rendered and "partitions" in rendered


def test_locality_report_is_deterministic():
    first = _profiled_fleet()[1].locality.report()
    second = _profiled_fleet()[1].locality.report()
    assert first == second


def test_profiling_changes_no_simulated_result():
    """Digest equality, the same property the --hostprof fuzz band sweeps."""
    from repro.bench.fuzz import _profilers, generate_spec, run_spec

    spec = generate_spec(3)
    bare = run_spec(spec, fast_paths=True)
    with _profilers():
        profiled = run_spec(spec, fast_paths=True)
    assert profiled == bare


def test_export_stamps_host_clock_label():
    cluster = Cluster(num_nodes=2, network=NetworkConfig())
    prof = cluster.enable_host_profiler()
    cluster.process(iter(cluster.sim.timeout(0.01) for _ in range(1)))
    cluster.run()
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry(cluster.sim)
    prof.export_to(registry)
    families = {family.name for family in registry.sorted_families()}
    assert {"host_wall_seconds", "host_regions", "host_kernel_wall_seconds"} <= families
    for family in registry.sorted_families():
        assert family.name.startswith("host_")
        clock_index = family.label_names.index("clock")
        for child in family.sorted_children():
            assert child.label_values[clock_index] == "host"
    wall = registry.families["host_wall_seconds"]
    subsystems = {
        child.label_values[wall.label_names.index("subsystem")]
        for child in wall.sorted_children()
    }
    assert subsystems == set(CATEGORIES)


def test_enable_is_idempotent_and_chains_after_flight():
    cluster = Cluster(num_nodes=2, network=NetworkConfig())
    first = cluster.enable_host_profiler()
    assert cluster.enable_host_profiler() is first
    assert cluster.sim.host_prof is first
    # Locality chains onto an existing flight recorder's pop hook: both
    # observers see every pop.
    flight = cluster.enable_flight_recorder()
    analyzer = cluster.enable_locality_analyzer()
    assert cluster.enable_locality_analyzer() is analyzer
    assert cluster.sim.locality is analyzer
    cluster.process(iter(cluster.sim.timeout(0.001) for _ in range(1)))
    cluster.run()
    assert analyzer.total_pops > 0
    assert len(flight.records) > 0
