"""Tests for block transfers, contention, local copies, and failure behaviour."""

import pytest

from repro.net import Cluster, NetworkConfig, NodeFailedError, TransferError, transfer_bytes
from repro.net.transport import control_rpc, local_copy, transfer_block

MB = 1024 * 1024


def make_cluster(num_nodes=3, **overrides):
    config = NetworkConfig(**overrides)
    return Cluster(num_nodes=num_nodes, network=config), config


def run_transfer(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.run()
    assert process.ok, process.value
    return process.value


def test_single_block_transfer_time():
    cluster, config = make_cluster()
    src, dst = cluster.node(0), cluster.node(1)
    finish = run_transfer(cluster, transfer_block(config, src, dst, 4 * MB))
    expected = config.transmission_time(4 * MB) + config.latency
    assert finish == pytest.approx(expected)


def test_multi_block_transfer_time_scales_with_size():
    cluster, config = make_cluster()
    src, dst = cluster.node(0), cluster.node(1)
    nbytes = 64 * MB
    finish = run_transfer(cluster, transfer_bytes(config, src, dst, nbytes))
    serialization = config.transmission_time(nbytes)
    blocks = config.num_blocks(nbytes)
    assert finish == pytest.approx(serialization + blocks * config.latency, rel=1e-6)


def test_zero_byte_transfer_and_local_copy_are_both_free():
    """Remote and local zero-byte moves share one contract: immediate return.

    (The old model charged one propagation latency to ``transfer_bytes(0)``
    while ``local_copy(0)`` returned immediately — an asymmetry with no
    physical counterpart, since a zero-byte move sends nothing.)
    """
    cluster, config = make_cluster()
    finish = run_transfer(cluster, transfer_bytes(config, cluster.node(0), cluster.node(1), 0))
    assert finish == 0.0
    copy_finish = run_transfer(cluster, local_copy(config, cluster.node(0), 0))
    assert copy_finish == 0.0
    # Negative sizes take the same immediate path.
    negative = run_transfer(cluster, transfer_bytes(config, cluster.node(0), cluster.node(1), -1))
    assert negative == 0.0


def test_zero_byte_transfer_still_checks_liveness():
    cluster, config = make_cluster()
    cluster.node(1).fail()
    process = cluster.sim.process(
        transfer_bytes(config, cluster.node(0), cluster.node(1), 0)
    )
    cluster.run()
    assert not process.ok
    assert isinstance(process.value, NodeFailedError)
    process.defused = True


def test_sender_uplink_serializes_two_receivers():
    """Two receivers pulling from one sender share its uplink (the Ray bottleneck)."""
    cluster, config = make_cluster()
    sim = cluster.sim
    src = cluster.node(0)
    finishes = []

    def pull(dst_id):
        yield from transfer_bytes(config, src, cluster.node(dst_id), 32 * MB)
        finishes.append(sim.now)

    sim.process(pull(1))
    sim.process(pull(2))
    cluster.run()
    single = config.transmission_time(32 * MB)
    # The later of the two cannot beat 2x the serialization time of one copy.
    assert max(finishes) >= 2 * single


def test_disjoint_transfers_proceed_in_parallel():
    cluster, config = make_cluster(num_nodes=4)
    sim = cluster.sim
    finishes = []

    def move(src_id, dst_id):
        yield from transfer_bytes(config, cluster.node(src_id), cluster.node(dst_id), 32 * MB)
        finishes.append(sim.now)

    sim.process(move(0, 1))
    sim.process(move(2, 3))
    cluster.run()
    single = config.transmission_time(32 * MB)
    assert max(finishes) < 1.5 * single


def test_transfer_to_failed_node_raises():
    cluster, config = make_cluster()
    cluster.node(1).fail()
    process = cluster.sim.process(
        transfer_bytes(config, cluster.node(0), cluster.node(1), MB)
    )
    cluster.run()
    assert not process.ok
    assert isinstance(process.value, NodeFailedError)
    process.defused = True


def test_failure_mid_transfer_raises_transfer_error():
    cluster, config = make_cluster()
    src, dst = cluster.node(0), cluster.node(1)
    process = cluster.sim.process(transfer_bytes(config, src, dst, 256 * MB))
    cluster.schedule_failure(1, at=0.05)
    cluster.run()
    assert not process.ok
    assert isinstance(process.value, TransferError)
    process.defused = True


def test_failure_mid_transfer_releases_links_for_others():
    """A transfer killed by a peer failure must not leak the sender's uplink."""
    cluster, config = make_cluster(num_nodes=3)
    sim = cluster.sim
    src = cluster.node(0)
    done = {}

    def doomed():
        try:
            yield from transfer_bytes(config, src, cluster.node(1), 256 * MB)
        except TransferError:
            done["doomed"] = sim.now

    def survivor():
        yield sim.timeout(0.1)
        yield from transfer_bytes(config, src, cluster.node(2), 32 * MB)
        done["survivor"] = sim.now

    sim.process(doomed())
    sim.process(survivor())
    cluster.schedule_failure(1, at=0.05)
    cluster.run()
    assert "doomed" in done
    assert "survivor" in done


def test_local_copy_time():
    cluster, config = make_cluster()
    node = cluster.node(0)
    finish = run_transfer(cluster, local_copy(config, node, 64 * MB))
    assert finish == pytest.approx(config.memcpy_time(64 * MB), rel=1e-6)


def test_control_rpc_costs_rpc_latency():
    cluster, config = make_cluster()
    finish = run_transfer(cluster, control_rpc(config, cluster.node(0), cluster.node(1)))
    assert finish == pytest.approx(config.rpc_latency)
    # Local shard access is cheaper than a cross-node RPC.
    local = run_transfer(cluster, control_rpc(config, cluster.node(0), cluster.node(0)))
    assert local - finish < config.rpc_latency
