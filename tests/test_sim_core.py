"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.5)
        yield sim.timeout(0.5)
        return sim.now

    process = sim.process(proc(sim))
    sim.run()
    assert process.value == pytest.approx(2.0)
    assert sim.now == pytest.approx(2.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value_and_waiting():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        return value * 2

    parent_proc = sim.process(parent(sim))
    sim.run()
    assert parent_proc.value == 84


def test_event_succeed_and_value():
    sim = Simulator()
    event = sim.event()
    assert not event.triggered
    event.succeed("payload")
    assert event.triggered and event.ok
    with pytest.raises(SimulationError):
        event.succeed("again")


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_event_failure_propagates_into_process():
    sim = Simulator()
    event = sim.event()
    seen = {}

    def proc(sim):
        try:
            yield event
        except ValueError as exc:
            seen["error"] = str(exc)
        return "handled"

    process = sim.process(proc(sim))
    event.fail(ValueError("boom"))
    sim.run()
    assert process.value == "handled"
    assert seen["error"] == "boom"


def test_unhandled_process_failure_is_recorded():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unobserved")

    sim.process(proc(sim))
    sim.run()
    assert len(sim.unhandled_failures) == 1


def test_run_until_time_stops_mid_simulation():
    sim = Simulator()
    ticks = []

    def proc(sim):
        for _ in range(10):
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == pytest.approx(3.5)
    sim.run()
    assert len(ticks) == 10


def test_run_until_event_returns_its_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "done"

    process = sim.process(proc(sim))
    assert sim.run(until=process) == "done"


def test_run_until_failed_event_raises():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise KeyError("nope")

    process = sim.process(proc(sim))
    with pytest.raises(KeyError):
        sim.run(until=process)


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.process(iter_timeout(sim, 5.0))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def proc(sim):
        yield "not an event"

    process = sim.process(proc(sim))
    sim.run()
    assert process.triggered and not process.ok
    assert isinstance(process.value, SimulationError)
    process.defused = True


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")
        values = yield sim.all_of([t1, t2])
        return values, sim.now

    process = sim.process(proc(sim))
    sim.run()
    values, when = process.value
    assert sorted(values) == ["a", "b"]
    assert when == pytest.approx(3.0)


def test_any_of_returns_at_first_event():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        yield sim.any_of([t1, t2])
        return sim.now

    process = sim.process(proc(sim))
    sim.run()
    assert process.value == pytest.approx(1.0)
    # The queue still drains the slower timeout without error.
    assert sim.now == pytest.approx(5.0)


def test_condition_operators():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(1.0)
        b = sim.timeout(2.0)
        combined = a & b
        assert isinstance(combined, AllOf)
        either = a | b
        assert isinstance(either, AnyOf)
        yield combined
        return sim.now

    process = sim.process(proc(sim))
    sim.run()
    assert process.value == pytest.approx(2.0)


def test_empty_condition_fires_immediately():
    sim = Simulator()
    condition = AllOf(sim, [])
    assert condition.triggered


def test_interrupt_is_delivered_and_process_continues():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(10.0)
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))
        yield sim.timeout(1.0)
        return "recovered"

    def attacker(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("failure injected")

    target = sim.process(victim(sim))
    sim.process(attacker(sim, target))
    sim.run()
    assert target.value == "recovered"
    assert log == [("interrupted", 2.0, "failure injected")]


def test_interrupting_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.1)

    process = sim.process(quick(sim))
    sim.run()
    process.interrupt("too late")  # must not raise
    sim.run()
    assert process.ok


def test_events_at_same_time_fire_in_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        sim.process(proc(sim, name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == pytest.approx(0.0) or sim.peek() <= 4.0
