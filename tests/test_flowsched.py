"""Tests for the reservation-based flow-scheduled transport.

Covers the head-of-line-blocking regression (the motivating scenario: a
sender with an idle second receiver stuck behind a busy first receiver),
reservation cancellation, priority classes, and per-flow accounting.
"""

import pytest

from repro.net import Cluster, NetworkConfig, TransferError
from repro.net.flowsched import Flow, FlowClass, FlowTransport, Reservation
from repro.net.transport import transfer_bytes

MB = 1024 * 1024


def make_cluster(num_nodes=4, **overrides):
    config = NetworkConfig(**overrides)
    return Cluster(num_nodes=num_nodes, network=config), config


# ---------------------------------------------------------------------------
# Head-of-line blocking regression
# ---------------------------------------------------------------------------


def _hol_scenario(config):
    """Sender A feeds a busy receiver B and an idle receiver C.

    D occupies B's downlink with one long transmission; under sequential
    acquisition A's uplink is held while A->B waits for B's downlink, so the
    A->C flow is starved even though both of its links are idle.  Returns the
    per-flow finish times.
    """
    from repro.net.transport import transfer_block

    cluster = Cluster(num_nodes=4, network=config)
    sim = cluster.sim
    a, b, c, d = (cluster.node(i) for i in range(4))
    finish = {}

    def move(src, dst, nbytes, key, delay=0.0, single_block=False):
        if delay > 0:
            yield sim.timeout(delay)
        if single_block:
            yield from transfer_block(config, src, dst, nbytes)
        else:
            yield from transfer_bytes(config, src, dst, nbytes)
        finish[key] = sim.now

    # One long unbroken occupancy of B's downlink (a receiver busy for ~0.1s).
    sim.process(move(d, b, 128 * MB, "d->b", single_block=True))
    sim.process(move(a, b, 64 * MB, "a->b", delay=1e-6))
    # Arrives just after a->b so the sequential model queues it behind the
    # held uplink.
    sim.process(move(a, c, 32 * MB, "a->c", delay=2e-6))
    cluster.run()
    return finish


def test_hol_blocking_reproduced_by_sequential_model_and_fixed_by_scheduler():
    """Regression for the ROADMAP head-of-line item.

    Under the old (sequential-acquisition) model the idle receiver C waits
    behind the busy receiver B; the flow scheduler interleaves the flows so
    C's transfer runs at full rate while A->B is still queued for B.
    """
    sequential = _hol_scenario(NetworkConfig(flow_scheduling=False))
    scheduled = _hol_scenario(NetworkConfig(flow_scheduling=True))

    config = NetworkConfig()
    ideal_c = config.transmission_time(32 * MB) + config.num_blocks(32 * MB) * config.latency

    # The scheduler serves the idle receiver at (near) full line rate: while
    # B is busy, the A->B reservation holds nothing and A's uplink belongs to
    # the A->C flow.
    assert scheduled["a->c"] <= 1.05 * ideal_c, scheduled
    # The sequential model parks C behind the busy receiver B: its uplink is
    # idle-but-held until D's transmission into B completes.
    assert sequential["a->c"] >= 3.0 * scheduled["a->c"], (sequential, scheduled)
    assert sequential["a->c"] >= sequential["d->b"]  # C waited out B's busy period
    # The flows genuinely interleave: C finishes long before A->B.
    assert scheduled["a->c"] < scheduled["a->b"]
    # And un-starving C never hurts the contended flows.
    assert scheduled["a->b"] <= sequential["a->b"] * 1.01


def test_busy_receiver_still_shares_fairly_under_scheduler():
    """B's downlink serves both senders block by block (fair interleaving)."""
    cluster, config = make_cluster()
    sim = cluster.sim
    finish = {}

    def move(src_id, dst_id, key):
        yield from transfer_bytes(
            config, cluster.node(src_id), cluster.node(dst_id), 32 * MB
        )
        finish[key] = sim.now

    sim.process(move(0, 1, "a"))
    sim.process(move(2, 1, "b"))
    cluster.run()
    # Two 32 MB flows into one 10 Gbps downlink: the first to finish still
    # waits out all but one block of the interleaved pair.
    pair_time = 2 * config.transmission_time(32 * MB)
    assert min(finish.values()) >= pair_time - config.transmission_time(config.block_size)


# ---------------------------------------------------------------------------
# Reservations
# ---------------------------------------------------------------------------


def test_pending_reservation_holds_nothing_and_cancels_cleanly():
    cluster, config = make_cluster()
    src, dst, other = cluster.node(0), cluster.node(1), cluster.node(2)
    # Occupy dst's downlink so the reservation cannot be admitted.
    blocker = Reservation(other, dst, MB, Flow("blocker"))
    assert blocker.granted
    pending = Reservation(src, dst, MB, Flow("pending"))
    assert not pending.granted
    # The pending reservation holds neither link slot.
    assert src.uplink.in_use == 0
    assert dst.downlink.in_use == 1
    assert src.uplink.queue_length == 1
    pending.cancel()
    assert src.uplink.queue_length == 0
    assert dst.downlink.queue_length == 0
    # Cancel/release are idempotent.
    pending.cancel()
    blocker.release()
    assert dst.downlink.in_use == 0


def test_reservation_admitted_when_both_slots_free():
    cluster, config = make_cluster()
    src, dst, other = cluster.node(0), cluster.node(1), cluster.node(2)
    blocker = Reservation(other, dst, MB, Flow("blocker"))
    pending = Reservation(src, dst, MB, Flow("pending"))
    assert not pending.granted
    blocker.release()
    assert pending.granted
    assert src.uplink.in_use == 1 and dst.downlink.in_use == 1
    pending.release()


def test_reduce_partial_class_cuts_ahead_of_bulk():
    """A later reduce-partial reservation is admitted before queued bulk."""
    cluster, config = make_cluster(num_nodes=5)
    dst = cluster.node(0)
    holder = Reservation(cluster.node(1), dst, MB, Flow("hold", FlowClass.BULK))
    bulk = Reservation(cluster.node(2), dst, MB, Flow("bulk", FlowClass.BULK))
    partial = Reservation(
        cluster.node(3), dst, MB, Flow("partial", FlowClass.REDUCE_PARTIAL)
    )
    assert holder.granted and not bulk.granted and not partial.granted
    holder.release()
    assert partial.granted and not bulk.granted
    partial.release()
    assert bulk.granted
    bulk.release()


def test_failure_before_admission_raises_and_withdraws_reservation():
    cluster, config = make_cluster()
    sim = cluster.sim
    src, dst, other = cluster.node(0), cluster.node(1), cluster.node(2)
    transport = FlowTransport(config)
    # Keep dst's downlink busy so src's transfer waits for admission.
    blocker = sim.process(transfer_bytes(config, other, dst, 256 * MB))
    process = sim.process(transport.transfer_block(src, dst, 4 * MB))
    # Fail dst during the blocker's first block, while the reservation is
    # still queued for admission.
    cluster.schedule_failure(1, at=0.001)
    cluster.run()
    assert not process.ok
    assert isinstance(process.value, TransferError)
    process.defused = True
    assert not blocker.ok
    blocker.defused = True
    # No ghost claim survives the failure.
    assert src.uplink.queue_length == 0 and src.uplink.in_use == 0


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


def test_per_flow_accounting_on_both_link_ends():
    cluster, config = make_cluster()
    sim = cluster.sim
    src, dst = cluster.node(0), cluster.node(1)
    flow = Flow("bench:flow", FlowClass.BULK)
    process = sim.process(transfer_bytes(config, src, dst, 8 * MB, flow))
    cluster.run()
    assert process.ok
    assert src.uplink_sched.bytes_by_flow["bench:flow"] == 8 * MB
    assert dst.downlink_sched.bytes_by_flow["bench:flow"] == 8 * MB
    assert src.uplink_sched.bytes_by_class[FlowClass.BULK] == 8 * MB
    assert src.uplink_sched.reservations_granted == config.num_blocks(8 * MB)
    # The link was busy for exactly the serialization time.
    assert src.uplink_sched.busy_time == pytest.approx(config.transmission_time(8 * MB))
    assert 0 < src.uplink_sched.utilization(cluster.now) <= 1.0


def test_untagged_transfers_fall_back_to_default_flow():
    cluster, config = make_cluster()
    sim = cluster.sim
    process = sim.process(transfer_bytes(config, cluster.node(0), cluster.node(1), MB))
    cluster.run()
    assert process.ok
    assert cluster.node(0).uplink_sched.bytes_by_flow == {"untagged": MB}
