"""Tests for the hierarchical fabric model and topology-aware collectives.

Covers the :class:`~repro.net.topology.Topology` spec, the instantiated
:class:`~repro.net.topology.Fabric` (slot math, path link claims, per-tier
accounting), the flat-equivalence guarantee (``Topology.flat(n)`` reproduces
the default fabric exactly), the locality invariants (intra-rack traffic
never touches a shared tier link — property-tested over random shapes), and
the 4:1-oversubscription regression: topology-aware broadcast and allreduce
beat the ``topology_aware=False`` ablation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.scenarios import (
    collect_flow_usage,
    measure_allgather,
    measure_allreduce,
    measure_broadcast,
    measure_reduce,
    rack_interleaved_delays,
)
from repro.core.hierarchical import HierarchicalReduceExecution
from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass, Reservation
from repro.net.topology import Topology
from repro.net.transport import transfer_bytes
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# Topology spec
# ---------------------------------------------------------------------------


def test_topology_shape_accessors():
    topo = Topology(rack_sizes=(2, 3, 1), rack_zones=(0, 0, 1))
    assert topo.num_nodes == 6
    assert topo.num_racks == 3
    assert topo.num_zones == 2
    assert [topo.rack_of(i) for i in range(6)] == [0, 0, 1, 1, 1, 2]
    assert topo.zone_of(0) == 0 and topo.zone_of(5) == 1
    assert list(topo.rack_nodes(1)) == [2, 3, 4]
    assert topo.same_rack(2, 4) and not topo.same_rack(1, 2)
    assert topo.same_zone(0, 4) and not topo.same_zone(0, 5)
    # distance classes: self < rack < zone < cross-zone
    assert topo.distance(2, 2) == 0
    assert topo.distance(2, 3) == 1
    assert topo.distance(0, 2) == 2
    assert topo.distance(0, 5) == 3


def test_topology_validation():
    with pytest.raises(ValueError):
        Topology(rack_sizes=())
    with pytest.raises(ValueError):
        Topology(rack_sizes=(2, 0))
    with pytest.raises(ValueError):
        Topology(rack_sizes=(2, 2), rack_zones=(0,))
    with pytest.raises(ValueError):
        Topology(rack_sizes=(2,), oversubscription=0.5)
    with pytest.raises(ValueError):
        Topology(rack_sizes=(2,), rack_latency=-1.0)
    with pytest.raises(ValueError):
        Topology(rack_sizes=(2,), nic_bandwidths=(1e9,))
    with pytest.raises(ValueError):
        Topology(rack_sizes=(2,), nic_bandwidths=(1e9, -1e9))
    with pytest.raises(ValueError):
        Topology.flat(0)
    with pytest.raises(ValueError):
        Topology.racks(0, 4)


def test_flat_topology_is_flat_and_hierarchies_are_not():
    assert Topology.flat(8).is_flat
    assert not Topology.racks(2, 4).is_flat
    # A single rack with heterogeneous NICs is not flat either.
    assert not Topology(rack_sizes=(4,), nic_bandwidths=(None, None, None, 5e8)).is_flat


def test_cluster_rejects_mismatched_topology():
    with pytest.raises(ValueError):
        Cluster(num_nodes=4, network=NetworkConfig(topology=Topology.racks(2, 4)))


# ---------------------------------------------------------------------------
# Fabric instantiation: slots, paths, timing
# ---------------------------------------------------------------------------


def test_fabric_slot_quantization():
    base = NetworkConfig().bandwidth
    # 4 nodes at 2:1 -> 2 full-rate slots.
    cluster = Cluster(8, topology=Topology.racks(2, 4, oversubscription=2.0))
    link = cluster.fabric.rack_up[0]
    assert link.capacity == 2 and link.slot_bandwidth == pytest.approx(base)
    # 4 nodes at 4:1 -> 1 full-rate slot.
    cluster = Cluster(8, topology=Topology.racks(2, 4, oversubscription=4.0))
    link = cluster.fabric.rack_up[0]
    assert link.capacity == 1 and link.slot_bandwidth == pytest.approx(base)
    # 4 nodes at 8:1 -> 1 half-rate slot (sub-NIC aggregate still bites).
    cluster = Cluster(8, topology=Topology.racks(2, 4, oversubscription=8.0))
    link = cluster.fabric.rack_up[0]
    assert link.capacity == 1 and link.slot_bandwidth == pytest.approx(base / 2)


def test_fabric_path_links_by_tier():
    topo = Topology.racks(4, 2, zones=(0, 0, 1, 1))
    cluster = Cluster(8, topology=topo)
    fabric = cluster.fabric
    assert fabric.path_links(0, 1) == ()  # same rack
    cross_rack = fabric.path_links(0, 2)  # same zone
    assert [link.tier for link in cross_rack] == ["rack_up", "rack_down"]
    cross_zone = fabric.path_links(0, 6)
    assert [link.tier for link in cross_zone] == [
        "rack_up",
        "zone_up",
        "zone_down",
        "rack_down",
    ]


def test_fabric_tier_latency_and_hetero_nic_timing():
    topo = Topology.racks(
        2,
        2,
        zones=(0, 1),
        rack_latency=1e-3,
        zone_latency=2e-3,
        nic_bandwidths=(None, 2.5e8, None, None),
    )
    config = NetworkConfig(topology=topo)
    cluster = Cluster(4, network=config)
    fabric = cluster.fabric
    assert fabric.latency(0, 1) == config.latency
    assert fabric.latency(0, 2) == pytest.approx(config.latency + 1e-3 + 2e-3)
    # The slow NIC bounds both directions of its transfers.
    assert fabric.transmission_time(0, 1, MB) == pytest.approx(MB / 2.5e8)
    assert fabric.transmission_time(1, 0, MB) == pytest.approx(MB / 2.5e8)
    assert fabric.transmission_time(2, 3, MB) == pytest.approx(MB / config.bandwidth)


def test_cross_rack_reservation_claims_tier_links():
    cluster = Cluster(8, topology=Topology.racks(2, 4, oversubscription=4.0))
    src, dst = cluster.node(0), cluster.node(4)
    reservation = Reservation(src, dst, MB, Flow("x", FlowClass.BULK))
    assert reservation.granted
    assert cluster.fabric.rack_up[0].resource.in_use == 1
    assert cluster.fabric.rack_down[1].resource.in_use == 1
    # A second cross-rack flow out of rack 0 must wait for the single slot.
    second = Reservation(cluster.node(1), cluster.node(5), MB, Flow("y"))
    assert not second.granted
    # ... but an intra-rack flow is admitted immediately (holds no tier slot).
    intra = Reservation(cluster.node(2), cluster.node(3), MB, Flow("z"))
    assert intra.granted
    intra.release()
    reservation.release()
    assert second.granted
    second.release()
    assert cluster.fabric.rack_up[0].resource.in_use == 0
    # Released holds were accounted on the tier link schedulers.
    assert cluster.fabric.rack_up[0].sched.bytes_by_flow == {"x": MB, "y": MB}


def test_per_tier_stats_nonzero_only_for_cross_rack_traffic():
    """Acceptance: tier stats are non-zero exactly when traffic crossed racks."""
    topo = Topology.racks(2, 2, oversubscription=2.0)

    def run(pairs):
        cluster = Cluster(4, topology=topo)
        for src, dst in pairs:
            cluster.sim.process(
                transfer_bytes(cluster.config, cluster.node(src), cluster.node(dst), 8 * MB)
            )
        cluster.run()
        return collect_flow_usage(cluster)

    intra = run([(0, 1), (3, 2)])
    assert intra["tier_bytes"]["rack_uplink"] == 0
    assert intra["tier_busy_time"]["rack_uplink"] == 0.0
    assert intra["cross_rack_fraction"] == 0.0
    assert intra["tier_bytes"]["nic"] == 16 * MB

    cross = run([(0, 1), (0, 2)])
    assert cross["tier_bytes"]["rack_uplink"] == 8 * MB
    assert cross["tier_busy_time"]["rack_uplink"] > 0.0
    assert cross["cross_rack_fraction"] == pytest.approx(0.5)


@settings(max_examples=30, deadline=None)
@given(
    rack_sizes=st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=4),
    oversubscription=st.sampled_from([1.0, 2.0, 4.0]),
    data=st.data(),
)
def test_intra_rack_traffic_never_reserves_spine_links(
    rack_sizes, oversubscription, data
):
    """Property: transfers that stay inside a rack touch no shared tier link."""
    topo = Topology(
        rack_sizes=tuple(rack_sizes),
        rack_zones=tuple(index % 2 for index in range(len(rack_sizes))),
        oversubscription=oversubscription,
    )
    cluster = Cluster(topo.num_nodes, topology=topo)
    # A handful of random intra-rack (src, dst) pairs, possibly concurrent.
    num_transfers = data.draw(st.integers(min_value=1, max_value=4))
    for _ in range(num_transfers):
        rack = data.draw(st.integers(min_value=0, max_value=len(rack_sizes) - 1))
        nodes = list(topo.rack_nodes(rack))
        src = data.draw(st.sampled_from(nodes))
        dst = data.draw(st.sampled_from([n for n in nodes if n != src]))
        cluster.sim.process(
            transfer_bytes(cluster.config, cluster.node(src), cluster.node(dst), 2 * MB)
        )
    cluster.run()
    for link in cluster.fabric.iter_links():
        assert link.sched.reservations_granted == 0, link.name
        assert sum(link.sched.bytes_by_class.values()) == 0, link.name
        assert link.resource.in_use == 0, link.name


# ---------------------------------------------------------------------------
# Flat equivalence: Topology.flat(n) reproduces the default results exactly
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "measure,kwargs",
    [
        (measure_broadcast, {}),
        (measure_reduce, {}),
        (measure_allreduce, {}),
        (measure_allgather, {}),
    ],
)
def test_flat_topology_reproduces_default_results_exactly(measure, kwargs, monkeypatch):
    import itertools

    from repro.store import objects as objects_module

    # The scenarios allocate ObjectIDs through the process-global unique()
    # counter and the directory's tie-break hashes the resulting keys, so
    # two otherwise-identical runs in one process schedule differently.
    # Pin the counter before each run to compare them bit for bit.
    monkeypatch.setattr(objects_module, "_id_counter", itertools.count())
    default = measure("hoplite", 8, 4 * MB, **kwargs)
    monkeypatch.setattr(objects_module, "_id_counter", itertools.count())
    flat = measure(
        "hoplite",
        8,
        4 * MB,
        network=NetworkConfig(topology=Topology.flat(8)),
        **kwargs,
    )
    assert flat == default  # bit-for-bit, not approximately


def test_sequential_ablation_claims_tier_links_on_fabric():
    """``flow_scheduling=False`` still routes cross-rack traffic through the fabric."""
    topo = Topology.racks(2, 2, oversubscription=4.0)
    config = NetworkConfig(flow_scheduling=False, topology=topo)
    cluster = Cluster(4, network=config)
    finish = {}

    def move(src, dst, key):
        yield from transfer_bytes(config, cluster.node(src), cluster.node(dst), 8 * MB)
        finish[key] = cluster.sim.now

    cluster.sim.process(move(0, 2, "a"))
    cluster.sim.process(move(1, 3, "b"))
    cluster.run()
    # Two cross-rack flows share the single half-rate tier slot: each block
    # serializes at B/2 and the flows interleave, so neither can finish
    # before the combined serialization time of both transfers.
    combined = 2 * 8 * MB / (config.bandwidth / 2)
    assert min(finish.values()) >= combined - 2 * config.block_size / (config.bandwidth / 2)


# ---------------------------------------------------------------------------
# Topology-aware collectives
# ---------------------------------------------------------------------------


def test_topology_aware_beats_oblivious_at_4_to_1():
    """Acceptance regression: 4:1 oversubscription, aware < oblivious.

    Arrival order is interleaved round-robin across racks (placement
    uncorrelated with node ids): synchronized id-ordered arrival happens to
    build rack-contiguous chains even without topology awareness, so the
    oblivious ablation only degrades once arrivals scatter.
    """
    num_racks, nodes_per_rack = 4, 4
    num_nodes = num_racks * nodes_per_rack
    network = NetworkConfig(
        topology=Topology.racks(num_racks, nodes_per_rack, oversubscription=4.0)
    )
    aware = HopliteOptions(topology_aware=True)
    oblivious = HopliteOptions(topology_aware=False)
    delays = rack_interleaved_delays(num_racks, nodes_per_rack)

    aware_stats: dict = {}
    bcast_aware = measure_broadcast(
        "hoplite",
        num_nodes,
        16 * MB,
        arrival_delays=delays[1:],
        network=network,
        options=aware,
        flow_stats=aware_stats,
    )
    bcast_oblivious = measure_broadcast(
        "hoplite",
        num_nodes,
        16 * MB,
        arrival_delays=delays[1:],
        network=network,
        options=oblivious,
    )
    assert bcast_aware < bcast_oblivious, (bcast_aware, bcast_oblivious)
    # Rack-aware relaying: roughly one cross-rack transfer per remote rack,
    # far below the one-per-receiver of the oblivious chain.
    assert aware_stats["cross_rack_fraction"] <= 0.35, aware_stats

    allred_aware = measure_allreduce(
        "hoplite",
        num_nodes,
        16 * MB,
        arrival_delays=delays,
        network=network,
        options=aware,
    )
    allred_oblivious = measure_allreduce(
        "hoplite",
        num_nodes,
        16 * MB,
        arrival_delays=delays,
        network=network,
        options=oblivious,
    )
    assert allred_aware < allred_oblivious, (allred_aware, allred_oblivious)


def test_rack_locality_survives_objects_larger_than_the_detection_delay():
    """The locality-park budget scales with the object's service time.

    A fixed failure_detection_delay budget expires mid-stream for objects
    whose serialization time exceeds it, and every parked rack-mate then
    falls back cross-rack — doubling the tier traffic exactly for the large
    objects that hurt most.  256 MB serializes in ~0.21 s > the 0.1 s
    detection delay, so this pins the service-time-scaled budget.
    """
    num_racks, nodes_per_rack = 4, 4
    network = NetworkConfig(
        topology=Topology.racks(num_racks, nodes_per_rack, oversubscription=4.0)
    )
    delays = rack_interleaved_delays(num_racks, nodes_per_rack)
    stats: dict = {}
    measure_broadcast(
        "hoplite",
        num_racks * nodes_per_rack,
        256 * MB,
        arrival_delays=delays[1:],
        network=network,
        options=HopliteOptions(topology_aware=True),
        flow_stats=stats,
    )
    # One cross-rack transfer per remote rack: 3 of 15 = 0.2 of NIC bytes.
    assert stats["cross_rack_fraction"] <= 0.25, stats["cross_rack_fraction"]


def test_topology_aware_is_safe_when_fabric_does_not_bind():
    """At 1:1 the aware mode must not regress materially vs oblivious."""
    network = NetworkConfig(topology=Topology.racks(2, 4, oversubscription=1.0))
    aware = measure_broadcast(
        "hoplite", 8, 8 * MB, network=network, options=HopliteOptions(topology_aware=True)
    )
    oblivious = measure_broadcast(
        "hoplite", 8, 8 * MB, network=network, options=HopliteOptions(topology_aware=False)
    )
    assert aware <= oblivious * 1.10, (aware, oblivious)


# ---------------------------------------------------------------------------
# Hierarchical reduce
# ---------------------------------------------------------------------------


def _put_sources(runtime, cluster, num_nodes, tag):
    source_ids = [ObjectID.of(f"{tag}-src-{i}") for i in range(num_nodes)]

    def put(node_id):
        yield from runtime.client(node_id).put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(4, float(node_id + 1)), logical_size=4 * MB),
        )

    procs = [cluster.sim.process(put(i)) for i in range(num_nodes)]
    return source_ids, procs


def test_hierarchical_reduce_correctness_and_structure():
    topo = Topology.racks(2, 4, oversubscription=4.0)
    cluster = Cluster(8, topology=topo)
    runtime = HopliteRuntime(cluster, options=HopliteOptions(topology_aware=True))
    source_ids, _ = _put_sources(runtime, cluster, 8, "hier")
    target_id = ObjectID.of("hier-target")
    done = {}

    def scenario():
        result = yield from runtime.client(0).reduce(target_id, source_ids, ReduceOp.SUM)
        value = yield from runtime.client(0).get(target_id)
        done["result"] = result
        done["value"] = value

    cluster.sim.process(scenario())
    cluster.run()
    assert np.allclose(done["value"].as_array(), sum(range(1, 9)))
    assert len(done["result"].reduced_ids) == 8
    assert done["result"].unreduced_ids == []
    # The registry entry is cleaned up on completion.
    assert target_id not in runtime.active_reductions


def test_hierarchical_reduce_single_stream_per_rack():
    """The inter-rack phase moves one shard's worth of bytes per rack."""
    topo = Topology.racks(2, 4, oversubscription=4.0)
    cluster = Cluster(8, topology=topo)
    runtime = HopliteRuntime(cluster, options=HopliteOptions(topology_aware=True))
    source_ids, _ = _put_sources(runtime, cluster, 8, "hier-bytes")
    target_id = ObjectID.of("hier-bytes-target")

    def scenario():
        yield from runtime.client(0).reduce(target_id, source_ids, ReduceOp.SUM)
        yield from runtime.client(0).get(target_id)

    cluster.sim.process(scenario())
    cluster.run()
    stats = collect_flow_usage(cluster)
    # The reduce crosses racks exactly once (one rack partial streamed to
    # the top tree; the other rack hosts the top root): cross-rack bytes
    # stay within a couple of object sizes instead of one per participant.
    assert 0 < stats["tier_bytes"]["rack_uplink"] <= 2 * 4 * MB, stats["tier_bytes"]


def test_hierarchical_reduce_adoption_and_flat_fallback():
    topo = Topology.racks(2, 4, oversubscription=2.0)
    cluster = Cluster(8, topology=topo)
    runtime = HopliteRuntime(cluster, options=HopliteOptions(topology_aware=True))
    source_ids, _ = _put_sources(runtime, cluster, 8, "hier-adopt")
    target_id = ObjectID.of("hier-adopt-target")

    from repro.core.reduce import adopt_or_create_reduction

    first = adopt_or_create_reduction(
        runtime, cluster.node(0), target_id, source_ids, ReduceOp.SUM
    )
    assert isinstance(first, HierarchicalReduceExecution)
    first._ensure_driver()
    # A re-executed caller issuing the same Reduce adopts the composition.
    second = adopt_or_create_reduction(
        runtime, cluster.node(1), target_id, source_ids, ReduceOp.SUM
    )
    assert second is first
    assert runtime.reduce_adoptions == 1
    done = {}

    def run_it():
        result = yield from first.run()
        done["result"] = result

    cluster.sim.process(run_it())
    cluster.run()
    assert len(done["result"].reduced_ids) == 8

    # Oblivious runtimes and small reductions keep the flat dynamic tree.
    oblivious = HopliteRuntime(
        Cluster(8, topology=topo), options=HopliteOptions(topology_aware=False)
    )
    from repro.core.reduce import ReduceExecution

    flat = adopt_or_create_reduction(
        oblivious,
        oblivious.cluster.node(0),
        ObjectID.of("flat-target"),
        source_ids,
        ReduceOp.SUM,
    )
    assert isinstance(flat, ReduceExecution)


def test_hierarchical_reduce_starts_before_last_arrival():
    """A straggling Put must not stall the rack trees (start-on-first-arrival).

    The flat dynamic tree starts reducing at the *first* ready source; the
    hierarchical composition must preserve that under staggered arrivals by
    growing each rack's tree incrementally — a straggler joins its rack's
    running partial as one chained fold stage instead of gating the whole
    grouping pass on the last arrival.
    """
    import repro.core.hierarchical as hierarchical_mod

    topo = Topology.racks(2, 3, oversubscription=4.0)
    cluster = Cluster(6, topology=topo)
    runtime = HopliteRuntime(cluster, options=HopliteOptions(topology_aware=True))
    sim = cluster.sim
    source_ids = [ObjectID.of(f"hier-jitter-src-{i}") for i in range(6)]
    delays = [0.0, 0.0, 0.0, 0.0, 0.0, 0.5]

    def put(node_id):
        if delays[node_id]:
            yield sim.timeout(delays[node_id])
        yield from runtime.client(node_id).put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(4, float(node_id + 1)), logical_size=4 * MB),
        )

    for i in range(6):
        sim.process(put(i))

    created = []
    real = hierarchical_mod.ReduceExecution

    def spy(runtime_, caller, target_id, src, op, **kwargs):
        created.append((sim.now, target_id.key))
        return real(runtime_, caller, target_id, src, op, **kwargs)

    target_id = ObjectID.of("hier-jitter-target")
    done = {}

    def scenario():
        result = yield from runtime.client(0).reduce(target_id, source_ids, ReduceOp.SUM)
        value = yield from runtime.client(0).get(target_id)
        done["result"] = result
        done["value"] = value

    sim.process(scenario())
    hierarchical_mod.ReduceExecution = spy
    try:
        cluster.run()
    finally:
        hierarchical_mod.ReduceExecution = real

    rack_creations = [t for t, key in created if "-rack" in key]
    assert rack_creations, "expected per-rack executions"
    # Both racks have two ready sources at t=0; their trees must start well
    # before the straggler's Put at t=0.5.
    assert min(rack_creations) < 0.5, rack_creations
    # The straggler joined as a chained fold stage, not a restart.
    assert any(key.endswith("-g1") for _t, key in created), created
    assert np.allclose(done["value"].as_array(), sum(range(1, 7)))
    assert sorted(o.key for o in done["result"].reduced_ids) == sorted(
        o.key for o in source_ids
    )
    assert done["result"].unreduced_ids == []
