"""Tests for the miniature task system: submission, wait/get, recovery."""

import numpy as np
import pytest

from repro.collectives.plane import HoplitePlane
from repro.core import HopliteRuntime, ObjectID, ObjectValue, ReduceOp
from repro.net import Cluster, NetworkConfig
from repro.tasksys import ObjectRef, TaskError, TaskSystem

MB = 1024 * 1024


def make_system(num_nodes=4):
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    plane = HoplitePlane(HopliteRuntime(cluster))
    return cluster, TaskSystem(cluster, plane)


def run_driver(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.run()
    assert process.ok, process.value
    return process.value


def _produce(ctx, value, size=MB):
    yield ctx.compute(0.01)
    return ObjectValue.from_array(np.full(2, float(value)), logical_size=size)


def _consume(ctx, upstream_value):
    yield ctx.compute(0.01)
    return ObjectValue.from_array(upstream_value.as_array() * 2, logical_size=MB)


def test_submit_and_get_result():
    cluster, system = make_system()

    def driver():
        ref = system.submit(_produce, args=(7,), name="produce")
        value = yield from system.get(ref)
        return value

    value = run_driver(cluster, driver())
    assert np.allclose(value.as_array(), 7.0)
    assert system.metrics.finished == 1


def test_object_ref_arguments_are_resolved():
    cluster, system = make_system()

    def driver():
        first = system.submit(_produce, args=(3,))
        second = system.submit(_consume, args=(first,))
        value = yield from system.get(second)
        return value

    value = run_driver(cluster, driver())
    assert np.allclose(value.as_array(), 6.0)


def test_wait_returns_first_finished():
    cluster, system = make_system()

    def slow(ctx, value):
        yield ctx.compute(5.0)
        return ObjectValue.from_array(np.full(1, float(value)), logical_size=MB)

    def fast(ctx, value):
        yield ctx.compute(0.1)
        return ObjectValue.from_array(np.full(1, float(value)), logical_size=MB)

    def driver():
        refs = [system.submit(slow, args=(1,)), system.submit(fast, args=(2,))]
        ready, pending = yield from system.wait(refs, num_returns=1)
        return ready, pending, cluster.sim.now

    ready, pending, when = run_driver(cluster, driver())
    assert len(ready) == 1 and len(pending) == 1
    assert when < 1.0

    with pytest.raises(ValueError):
        next(system.wait([], num_returns=1))


def test_driver_put_and_task_context_put():
    cluster, system = make_system()

    def task(ctx, value):
        ref = yield from ctx.put(ObjectValue.from_array(np.full(1, 5.0), logical_size=MB))
        fetched = yield from ctx.get(ref)
        return ObjectValue.from_array(fetched.as_array() + value.as_array(), logical_size=MB)

    def driver():
        base = yield from system.put(ObjectValue.from_array(np.full(1, 2.0), logical_size=MB))
        ref = system.submit(task, args=(base,))
        value = yield from system.get(ref)
        return value

    value = run_driver(cluster, driver())
    assert np.allclose(value.as_array(), 7.0)


def test_task_context_reduce_uses_the_plane():
    cluster, system = make_system()

    def producer(ctx, value):
        yield ctx.compute(0.0)
        return ObjectValue.from_array(np.full(1, float(value)), logical_size=4 * MB)

    def driver():
        refs = [system.submit(producer, args=(v,)) for v in (1, 2, 3)]
        yield from system.wait(refs, num_returns=3)
        target = ObjectID.of("sum")
        context_ref = refs[0]
        # Drive a reduce from the driver node via the plane directly.
        yield from system.plane.reduce(
            system.driver_node, target, [ref.object_id for ref in refs], ReduceOp.SUM
        )
        value = yield from system.fetch(system.driver_node, target)
        return value

    value = run_driver(cluster, driver())
    assert np.allclose(value.as_array(), 6.0)


def test_scheduler_respects_node_hint_and_skips_dead_nodes():
    cluster, system = make_system()
    cluster.node(2).fail()

    def task(ctx):
        yield ctx.compute(0.01)
        return ObjectValue.of_size(1024)

    def driver():
        hinted = system.submit(task, node=1)
        dead_hint = system.submit(task, node=2)
        yield from system.wait([hinted, dead_hint], num_returns=2)
        return (
            system.tasks[hinted.producer_task_id].node_id,
            system.tasks[dead_hint.producer_task_id].node_id,
        )

    hinted_node, fallback_node = run_driver(cluster, driver())
    assert hinted_node == 1
    assert fallback_node != 2


def test_running_task_is_resubmitted_after_node_failure():
    cluster, system = make_system()

    def long_task(ctx):
        yield ctx.compute(2.0)
        return ObjectValue.of_size(MB)

    def driver():
        ref = system.submit(long_task, node=1, name="doomed")
        yield from system.wait([ref], num_returns=1)
        value = yield from system.get(ref)
        return value, system.tasks[ref.producer_task_id].attempts

    cluster.schedule_failure(1, at=0.5)
    value, attempts = run_driver(cluster, driver())
    assert value.size == MB
    assert attempts >= 2
    assert system.metrics.reconstructions >= 1


def test_task_with_no_restarts_fails_permanently():
    cluster, system = make_system()

    def exploding(ctx):
        yield ctx.compute(0.01)
        raise RuntimeError("bug in task")

    def driver():
        ref = system.submit(exploding, max_restarts=0)
        try:
            yield from system.wait([ref], num_returns=1)
        except TaskError as exc:
            return str(exc)
        return "no error"

    message = run_driver(cluster, driver())
    assert "failed permanently" in message
    assert system.metrics.failures == 1


def test_finished_object_is_reconstructed_when_its_node_dies():
    cluster, system = make_system()

    def producer(ctx):
        yield ctx.compute(0.05)
        return ObjectValue.from_array(np.full(1, 9.0), logical_size=MB)

    def driver():
        ref = system.submit(producer, node=1)
        yield from system.wait([ref], num_returns=1)
        # Kill the node that holds the only copy of the result.
        cluster.node(1).fail()
        yield cluster.sim.timeout(1.0)
        value = yield from system.get(ref)
        return value

    value = run_driver(cluster, driver())
    assert np.allclose(value.as_array(), 9.0)
    assert system.metrics.reconstructions >= 1


def test_task_returning_wrong_type_is_an_error():
    cluster, system = make_system()

    def bad(ctx):
        yield ctx.compute(0.01)
        return 42

    def driver():
        ref = system.submit(bad, max_restarts=0)
        try:
            yield from system.wait([ref], num_returns=1)
        except TaskError:
            return "failed"
        return "ok"

    assert run_driver(cluster, driver()) == "failed"


def test_object_ref_str():
    ref = ObjectRef(object_id=ObjectID.of("x"), producer_task_id=None)
    assert "x" in str(ref)


def test_strict_placement_waits_for_the_nodes_recovery():
    cluster, system = make_system()
    cluster.node(2).fail()

    def task(ctx):
        yield ctx.compute(0.01)
        return ObjectValue.from_array(np.full(1, float(ctx.node.node_id)), logical_size=MB)

    def driver():
        ref = system.submit(task, node=2, placement="strict", name="pinned")
        yield cluster.sim.timeout(1.0)
        running_before_recovery = system.tasks[ref.producer_task_id].status.value
        cluster.node(2).recover()
        yield from system.wait([ref], num_returns=1)
        value = yield from system.get(ref)
        return running_before_recovery, value, system.tasks[ref.producer_task_id].node_id

    status_before, value, node_id = run_driver(cluster, driver())
    assert status_before == "pending"
    assert node_id == 2, "a strict task must not migrate"
    assert np.allclose(value.as_array(), 2.0)

    with pytest.raises(ValueError):
        system.submit(task, placement="strict")  # strict needs a node hint
    with pytest.raises(ValueError):
        system.submit(task, node=1, placement="sideways")


def test_higher_incarnation_supersedes_and_cancels_the_old_record():
    cluster, system = make_system()

    def slow(ctx):
        yield ctx.compute(5.0)
        return ObjectValue.of_size(MB)

    def driver():
        old = system.submit(slow, key="k", incarnation=0)
        yield cluster.sim.timeout(0.1)
        new = system.submit(slow, key="k", incarnation=1)
        yield from system.wait([new], num_returns=1)
        return old, new

    old, new = run_driver(cluster, driver())
    assert new.producer_task_id != old.producer_task_id
    # The old incarnation must not keep running alongside the new one.
    assert system.tasks[old.producer_task_id].status.value == "failed"
    assert system.tasks[new.producer_task_id].status.value == "finished"


def test_idempotent_key_revives_a_permanently_failed_task():
    cluster, system = make_system()
    state = {"raises": True}

    def flaky(ctx):
        yield ctx.compute(0.01)
        if state["raises"]:
            raise RuntimeError("transient bug")
        return ObjectValue.of_size(MB)

    def driver():
        ref = system.submit(flaky, key="flaky", max_restarts=0)
        try:
            yield from system.wait([ref], num_returns=1)
        except TaskError:
            pass
        state["raises"] = False
        revived = system.submit(flaky, key="flaky", max_restarts=0)
        assert revived.producer_task_id == ref.producer_task_id
        yield from system.wait([revived], num_returns=1)
        return system.tasks[revived.producer_task_id].status.value

    assert run_driver(cluster, driver()) == "finished"
    assert system.metrics.deduplicated == 1
