"""Lineage-driven collective orchestration: ownership, adoption, edge cases.

Covers the Section 6 subsystem end to end:

* the ownership table (declared objects, derived partials, relay copies,
  node drops);
* idempotent re-submission by (key, incarnation);
* simultaneous root + producer failure;
* a re-executed root adopting a reduce that finishes during the
  failure-detection delay (directory adoption) and one still in flight
  (active-execution adoption);
* release of pins and plane reference counts when a task exhausts
  ``max_restarts`` mid-collective.
"""

import numpy as np
import pytest

from repro.collectives.plane import HoplitePlane
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.tasksys import (
    CollectiveOrchestrator,
    CollectiveSpec,
    OwnedObject,
    OwnershipTable,
    TaskSystem,
)
from repro.tasksys.lineage import ROLE_PARTIAL, ROLE_RESULT, ROLE_SOURCE

MB = 1024 * 1024
NET = dict(bandwidth=1.25e8)  # 1 Gbps: 16 MB transfers take ~0.13 s


def _build(num_nodes=5):
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig(**NET))
    runtime = HopliteRuntime(cluster)
    system = TaskSystem(cluster, HoplitePlane(runtime))
    orchestrator = CollectiveOrchestrator(system)
    return cluster, runtime, system, orchestrator


def _value(tag, nbytes=16 * MB):
    return ObjectValue.from_array(np.full(4, float(tag)), logical_size=nbytes)


def _reduce_spec(tag, num_nodes, with_root_source=True, allreduce=False):
    ranks = list(range(num_nodes))
    contributors = ranks if with_root_source else ranks[1:]
    sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in contributors}
    spec = CollectiveSpec.reduce(
        tag,
        0,
        ranks,
        sources,
        ObjectID.unique(f"{tag}-target"),
        {sources[i]: _value(i + 1) for i in contributors},
        ReduceOp.SUM,
        allreduce=allreduce,
    )
    return spec, float(sum(i + 1 for i in contributors))


def _invoke(cluster, orchestrator, spec, budget=240.0):
    done = {}

    def driver():
        outcome = yield from orchestrator.invoke(spec)
        done["outcome"] = outcome

    process = cluster.sim.process(driver(), name=f"drv-{spec.spec_id}")
    cluster.run(until=budget)
    assert process.triggered and process.ok, (
        f"collective {spec.spec_id} did not terminate (t={cluster.sim.now})"
    )
    return done["outcome"]


# ---------------------------------------------------------------------------
# Ownership table unit behaviour
# ---------------------------------------------------------------------------


def test_ownership_registers_spec_objects_and_resolves_partials():
    table = OwnershipTable()
    spec, _ = _reduce_spec("own", 4)
    table.register_spec(spec)
    target = spec.targets[0]
    source = spec.sources[1][0]
    assert table.owner_of(source).role == ROLE_SOURCE
    assert table.owner_of(source).rank == 1
    assert table.owner_of(target).role == ROLE_RESULT
    # A derived partial resolves up the derivation chain even when never
    # explicitly recorded.
    derived = target.derived("partial-r2-g1")
    owned = table.owner_of(derived)
    assert owned is not None and owned.spec_id == spec.spec_id
    assert owned.role == ROLE_PARTIAL
    # Explicit recording attributes the copy to a node.
    table.record_partial(target, derived, node_id=3)
    assert 3 in table.copies_of(derived)
    assert table.owner_of(ObjectID.of("unrelated")) is None


def test_ownership_conflicting_spec_rejected_and_drop_node_reports_losses():
    table = OwnershipTable()
    object_id = ObjectID.of("shared")
    table.register(OwnedObject(object_id, "spec-a", ROLE_SOURCE, rank=0))
    with pytest.raises(ValueError):
        table.register(OwnedObject(object_id, "spec-b", ROLE_SOURCE, rank=1))
    table.record_copy(object_id, 2)
    lost = table.drop_node(2)
    assert [owned.spec_id for owned in lost] == ["spec-a"]
    assert table.copies_of(object_id) == set()


def test_orchestrator_records_partials_and_relays_during_a_reduce():
    cluster, _runtime, _system, orchestrator = _build(4)
    spec, expected = _reduce_spec("rec", 4, allreduce=True)
    outcome = _invoke(cluster, orchestrator, spec)
    assert np.allclose(outcome.results[2].as_array(), expected)
    partials = orchestrator.ownership.objects_of(spec.spec_id, role=ROLE_PARTIAL)
    assert partials, "reduce partials should be attributed to the spec"
    target = spec.targets[0]
    assert orchestrator.ownership.copies_of(target), "relay copies recorded"
    assert orchestrator.driver_processes_by_spec.get(spec.spec_id, 0) > 0, (
        "collective-internal driver processes should be attributed to the spec"
    )


# ---------------------------------------------------------------------------
# Idempotent re-submission
# ---------------------------------------------------------------------------


def test_submission_is_idempotent_per_key_and_incarnation():
    cluster, _runtime, system, _orch = _build(3)

    def body(ctx):
        yield ctx.compute(0.01)
        return ObjectValue.of_size(1024)

    first = system.submit(body, key="k", incarnation=0)
    duplicate = system.submit(body, key="k", incarnation=0)
    assert duplicate.producer_task_id == first.producer_task_id
    assert system.metrics.deduplicated == 1
    superseded = system.submit(body, key="k", incarnation=1)
    assert superseded.producer_task_id != first.producer_task_id
    cluster.run()


def test_resubmitting_a_spec_adopts_the_running_task_set():
    cluster, _runtime, system, orchestrator = _build(4)
    spec, expected = _reduce_spec("dup", 4)
    refs_first = orchestrator.submit(spec)
    refs_second = orchestrator.submit(spec)  # a recovery-style re-submission
    assert {
        key: ref.producer_task_id for key, ref in refs_first.items()
    } == {key: ref.producer_task_id for key, ref in refs_second.items()}
    assert system.metrics.deduplicated == len(refs_first)
    outcome = _invoke(cluster, orchestrator, spec)
    assert np.allclose(outcome.results[0].as_array(), expected)
    assert orchestrator.lineage.submissions[spec.spec_id] == 3  # 2 + invoke's


# ---------------------------------------------------------------------------
# Failure edge cases
# ---------------------------------------------------------------------------


def test_simultaneous_root_and_producer_failure():
    cluster, _runtime, system, orchestrator = _build(5)
    # Root (caller) and a producer die at the same instant mid-collective.
    cluster.schedule_failure(0, at=0.2, recover_at=0.5)
    cluster.schedule_failure(2, at=0.2, recover_at=0.5)
    spec, expected = _reduce_spec("dual", 5, allreduce=True)
    outcome = _invoke(cluster, orchestrator, spec)
    for rank in range(5):
        assert np.allclose(outcome.results[rank].as_array(), expected), rank
    assert system.metrics.failures >= 2, "both failures should hit driver tasks"


def test_root_reexecution_adopts_an_in_flight_reduce():
    cluster, runtime, _system, orchestrator = _build(5)
    # The caller contributes no source, so its death leaves the tree intact
    # and the detached driver keeps streaming while the root share is
    # rescheduled.  Killed early: the re-execution lands while the reduce is
    # still in flight, exercising the active-registry adoption path.
    cluster.schedule_failure(0, at=0.05, recover_at=0.6)
    spec, expected = _reduce_spec("adopt-flight", 5, with_root_source=False)
    outcome = _invoke(cluster, orchestrator, spec)
    assert np.allclose(outcome.results[0].as_array(), expected)
    assert runtime.reduce_adoptions >= 1, (
        "the re-executed root should adopt the surviving execution, "
        "not start a duplicate tree"
    )


def test_root_reexecution_adopts_a_partial_that_finishes_during_the_delay():
    # Learn the failure-free completion time of the target, deterministically.
    cluster, runtime, _system, orchestrator = _build(5)
    spec, expected = _reduce_spec("adopt-cal", 5, with_root_source=False)
    target = spec.targets[0]
    seen = {}

    def watch():
        while True:
            locations = runtime.directory.locations_of(target)
            if any(info.complete for info in locations.values()):
                seen["t"] = cluster.sim.now
                return
            yield cluster.sim.timeout(0.002)

    cluster.sim.process(watch(), name="watch-target")
    _invoke(cluster, orchestrator, spec)
    completion = seen["t"]

    # Re-run, killing the root just before the reduce completes: the tree
    # (callerless) finishes during the failure-detection delay, and the
    # re-executed root share finds the complete target in the directory.
    cluster, runtime, _system, orchestrator = _build(5)
    cluster.schedule_failure(0, at=max(0.01, completion - 0.02), recover_at=None)
    spec, expected = _reduce_spec("adopt-done", 5, with_root_source=False)
    outcome = _invoke(cluster, orchestrator, spec)
    assert np.allclose(outcome.results[0].as_array(), expected)
    assert (
        orchestrator.metrics["root_adoptions"] + runtime.reduce_adoptions >= 1
    ), "the finished partial should be adopted, not recomputed"


# ---------------------------------------------------------------------------
# Resource release on permanent failure
# ---------------------------------------------------------------------------


def test_permanently_failed_reduce_task_releases_partials_and_refs():
    cluster, runtime, system, _orch = _build(4)
    sim = cluster.sim
    plane = system.plane
    # Three of four sources exist; the reduce can never finish.
    source_ids = [ObjectID.unique(f"leak-src{i}") for i in range(4)]
    target_id = ObjectID.unique("leak-target")

    def setup():
        for i in range(3):
            yield from plane.put(cluster.node(i), source_ids[i], _value(i + 1))

    def doomed(ctx):
        result = yield from ctx.reduce(target_id, source_ids, ReduceOp.SUM)
        return ObjectValue.of_size(0)

    def driver():
        yield from setup()
        system.submit(doomed, node=1, name="doomed-reduce", max_restarts=0)
        # Let the reduce tree assemble and start holding references.
        yield sim.timeout(0.3)
        cluster.node(1).fail()

    sim.process(driver(), name="leak-driver")
    cluster.run(until=30.0)

    assert system.metrics.aborted_reductions == 1
    assert target_id not in runtime.active_reductions
    for store in runtime.stores.values():
        for entry in store.objects.values():
            assert entry.ref_count == 0, entry
            if not entry.sealed:
                assert not entry.has_waiters, entry


def test_permanently_failed_put_is_unpinned_so_the_store_can_evict():
    cluster, runtime, system, _orch = _build(3)
    big = ObjectID.unique("leak-put")

    def bad(ctx):
        yield from ctx.put(_value(5.0), object_id=big)
        raise RuntimeError("bug after put")

    def driver():
        ref = system.submit(bad, node=1, max_restarts=0)
        try:
            yield from system.wait([ref], num_returns=1)
        except Exception:
            pass

    cluster.sim.process(driver(), name="put-driver")
    cluster.run(until=10.0)

    store = runtime.stores[1]
    entry = store.objects.get(big)
    assert entry is not None and entry.sealed
    assert not entry.pinned, "the abandoned task's put must be evictable"
    assert system.metrics.released_objects >= 1
