"""Unit and property tests for simulation resources (Resource, Container, Store)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Container,
    MultiRequest,
    PriorityResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


def test_resource_serializes_exclusive_access():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def user(sim, name, hold):
        request = resource.request()
        yield request
        log.append((name, "start", sim.now))
        yield sim.timeout(hold)
        resource.release(request)
        log.append((name, "end", sim.now))

    sim.process(user(sim, "a", 2.0))
    sim.process(user(sim, "b", 1.0))
    sim.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 2.0),
        ("b", "start", 2.0),
        ("b", "end", 3.0),
    ]


def test_resource_capacity_allows_concurrency():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    finish = []

    def user(sim):
        with (yield resource.request()):
            yield sim.timeout(1.0)
        finish.append(sim.now)

    def runner(sim):
        request = resource.request()
        yield request
        yield sim.timeout(1.0)
        resource.release(request)
        finish.append(sim.now)

    for _ in range(4):
        sim.process(runner(sim))
    sim.run()
    # Two run immediately, two queue behind them.
    assert sorted(finish) == [1.0, 1.0, 2.0, 2.0]


def test_resource_invalid_requests():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        resource.request(0)
    with pytest.raises(SimulationError):
        resource.request(3)
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_release_of_ungranted_request_cancels_it():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = resource.request()
    second = resource.request()
    assert not second.triggered
    resource.release(second)  # cancel while still queued
    assert resource.queue_length == 0
    resource.release(first)
    assert resource.available == 1


def test_priority_resource_orders_waiters():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    order = []

    def user(sim, name, priority, delay):
        yield sim.timeout(delay)
        request = resource.request(priority=priority)
        yield request
        order.append(name)
        yield sim.timeout(1.0)
        resource.release(request)

    sim.process(user(sim, "holder", 0, 0.0))
    sim.process(user(sim, "low", 5, 0.1))
    sim.process(user(sim, "high", 1, 0.2))
    sim.run()
    assert order == ["holder", "high", "low"]


def test_multi_request_grants_atomically_and_holds_nothing_while_pending():
    sim = Simulator()
    first, second = Resource(sim, capacity=1), Resource(sim, capacity=1)
    holder = second.request()
    assert holder.triggered
    joint = MultiRequest(sim, [(first, 1), (second, 1)])
    # Pending: neither resource is held, both queues see the claim.
    assert not joint.granted
    assert first.in_use == 0 and second.in_use == 1
    assert first.queue_length == 1 and second.queue_length == 1
    second.release(holder)
    # The moment both fit, the whole claim set is debited at once.
    assert joint.granted
    assert first.in_use == 1 and second.in_use == 1
    assert first.queue_length == 0 and second.queue_length == 0
    joint.release()
    assert first.in_use == 0 and second.in_use == 0


def test_multi_request_is_skipped_not_blocking_the_queue():
    """Work conservation: a later request passes an unmatchable multi-request."""
    sim = Simulator()
    first, second = Resource(sim, capacity=1), Resource(sim, capacity=1)
    holder = second.request()
    joint = MultiRequest(sim, [(first, 1), (second, 1)])
    assert not joint.granted
    # A single request on the free resource is granted straight past the
    # pending multi-request.
    bypass = first.request()
    assert bypass.triggered
    first.release(bypass)
    second.release(holder)
    assert joint.granted
    joint.release()


def test_multi_request_cancel_withdraws_every_claim():
    sim = Simulator()
    first, second = Resource(sim, capacity=1), Resource(sim, capacity=1)
    holder = second.request()
    joint = MultiRequest(sim, [(first, 1), (second, 1)])
    joint.cancel()
    assert first.queue_length == 0 and second.queue_length == 0
    joint.cancel()  # idempotent
    second.release(holder)
    # A cancelled claim is never granted, even once capacity frees up.
    assert not joint.granted
    assert first.in_use == 0 and second.in_use == 0


def test_multi_request_priority_orders_admission():
    sim = Simulator()
    first, second = Resource(sim, capacity=1), Resource(sim, capacity=1)
    holder = second.request()
    low = MultiRequest(sim, [(first, 1), (second, 1)], priority=2)
    high = MultiRequest(sim, [(first, 1), (second, 1)], priority=1)
    second.release(holder)
    assert high.granted and not low.granted
    high.release()
    assert low.granted
    low.release()


def test_multi_request_validation():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        MultiRequest(sim, [])
    with pytest.raises(SimulationError):
        MultiRequest(sim, [(resource, 2)])
    with pytest.raises(SimulationError):
        MultiRequest(sim, [(resource, 1), (resource, 1)])


@settings(max_examples=30, deadline=None)
@given(
    holds=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # src link
            st.integers(min_value=0, max_value=2),  # dst link
            st.floats(min_value=0.01, max_value=1.0),
        ),
        min_size=1,
        max_size=14,
    )
)
def test_multi_requests_never_exceed_capacity_or_leak(holds):
    """Property: atomic pair claims respect each link's capacity and drain."""
    sim = Simulator()
    links = [Resource(sim, capacity=1) for _ in range(3)]

    def user(sim, src, dst, hold):
        if src == dst:
            dst = (dst + 1) % 3
        joint = MultiRequest(sim, [(links[src], 1), (links[dst], 1)])
        yield joint
        assert all(link.in_use <= link.capacity for link in links)
        yield sim.timeout(hold)
        joint.release()

    for src, dst, hold in holds:
        sim.process(user(sim, src, dst, hold))
    sim.run()
    assert all(link.in_use == 0 for link in links)
    assert all(link.queue_length == 0 for link in links)


def test_container_blocks_until_level_available():
    sim = Simulator()
    container = Container(sim, capacity=10, init=0)
    log = []

    def producer(sim):
        yield sim.timeout(1.0)
        yield container.put(5)
        log.append(("put", sim.now))

    def consumer(sim):
        yield container.get(3)
        log.append(("got", sim.now))

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert log == [("put", 1.0), ("got", 1.0)]
    assert container.level == pytest.approx(2)


def test_container_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=5, init=6)
    container = Container(sim, capacity=5)
    with pytest.raises(SimulationError):
        container.put(-1)
    with pytest.raises(SimulationError):
        container.get(-1)


def test_store_fifo_and_blocking_get():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            received.append((item, sim.now))

    def producer(sim):
        for index in range(3):
            yield sim.timeout(1.0)
            yield store.put(index)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert received == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)
    got = {}

    def consumer(sim):
        item = yield store.get(lambda value: value % 2 == 0)
        got["even"] = item

    def producer(sim):
        yield store.put(1)
        yield store.put(3)
        yield store.put(4)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got["even"] == 4
    assert list(store.items) == [1, 3]


def test_store_capacity_blocks_putters():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer(sim):
        for index in range(2):
            yield store.put(index)
            times.append(sim.now)

    def consumer(sim):
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert times[0] == pytest.approx(0.0)
    assert times[1] == pytest.approx(5.0)


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    holds=st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=12),
)
def test_resource_never_exceeds_capacity(capacity, holds):
    """Property: concurrent holders never exceed the configured capacity."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    active = {"now": 0, "max": 0}

    def user(sim, hold):
        request = resource.request()
        yield request
        active["now"] += 1
        active["max"] = max(active["max"], active["now"])
        assert resource.in_use <= capacity
        yield sim.timeout(hold)
        active["now"] -= 1
        resource.release(request)

    for hold in holds:
        sim.process(user(sim, hold))
    sim.run()
    assert active["now"] == 0
    assert active["max"] <= capacity
    assert resource.in_use == 0


@settings(max_examples=40, deadline=None)
@given(items=st.lists(st.integers(), min_size=0, max_size=30))
def test_store_preserves_fifo_order(items):
    """Property: items come out of an unfiltered Store in insertion order."""
    sim = Simulator()
    store = Store(sim)
    out = []

    def producer(sim):
        for item in items:
            yield store.put(item)

    def consumer(sim):
        for _ in items:
            value = yield store.get()
            out.append(value)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert out == items
