"""Tests for the object model: ObjectID, ObjectValue, ReduceOp."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.store import ObjectID, ObjectValue, ReduceOp


def test_object_id_identity_and_ordering():
    a = ObjectID.of("alpha")
    b = ObjectID.of("alpha")
    c = ObjectID.of("beta")
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a < c
    assert str(a) == "alpha"


def test_object_id_unique_is_monotonic_and_distinct():
    ids = {ObjectID.unique("x") for _ in range(100)}
    assert len(ids) == 100


def test_object_id_derived():
    base = ObjectID.of("target")
    derived = base.derived("partial-1")
    assert derived.key == "target/partial-1"
    assert derived != base


def test_object_value_from_array_and_size_override():
    array = np.ones(10, dtype=np.float32)
    value = ObjectValue.from_array(array)
    assert value.size == array.nbytes
    big = ObjectValue.from_array(array, logical_size=1 << 30)
    assert big.size == 1 << 30
    assert np.allclose(big.as_array(), array)


def test_object_value_from_bytes_and_of_size():
    value = ObjectValue.from_bytes(b"hello")
    assert value.size == 5
    assert value.as_array().tobytes() == b"hello"
    sized = ObjectValue.of_size(123)
    assert sized.size == 123
    assert sized.payload is None
    with pytest.raises(ValueError):
        sized.as_array()
    with pytest.raises(ValueError):
        ObjectValue(size=-1)


def test_object_value_copy_is_independent():
    array = np.arange(4, dtype=np.float64)
    value = ObjectValue.from_array(array)
    clone = value.copy()
    clone.as_array()[0] = 99
    assert value.as_array()[0] == 0


def test_reduce_op_combinations():
    a = np.array([1.0, 5.0])
    b = np.array([3.0, 2.0])
    assert np.allclose(ReduceOp.SUM.combine(a, b), [4.0, 7.0])
    assert np.allclose(ReduceOp.MIN.combine(a, b), [1.0, 2.0])
    assert np.allclose(ReduceOp.MAX.combine(a, b), [3.0, 5.0])
    assert np.allclose(ReduceOp.PROD.combine(a, b), [3.0, 10.0])


def test_reduce_op_none_is_identity():
    a = np.array([1.0, 2.0])
    assert np.allclose(ReduceOp.SUM.combine(None, a), a)
    assert np.allclose(ReduceOp.SUM.combine(a, None), a)
    assert ReduceOp.SUM.combine_many([]) is None
    assert np.allclose(ReduceOp.SUM.combine_many([None, a, None]), a)


arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=8),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(a=arrays, op=st.sampled_from(list(ReduceOp)))
def test_reduce_op_identity_property(a, op):
    """Property: combining with None leaves the payload unchanged."""
    assert np.allclose(op.combine(None, a), a)
    assert np.allclose(op.combine(a, None), a)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=1, max_size=6
    ),
    op=st.sampled_from([ReduceOp.SUM, ReduceOp.MIN, ReduceOp.MAX]),
)
def test_reduce_op_is_order_insensitive(values, op):
    """Property: the reduce operators are commutative/associative over any order."""
    arrays_list = [np.array([value]) for value in values]
    forward = op.combine_many(arrays_list)
    backward = op.combine_many(list(reversed(arrays_list)))
    assert np.allclose(forward, backward)
