"""Tests for the per-node local object store."""

import numpy as np
import pytest

from repro.net import Cluster, NetworkConfig
from repro.store import (
    LocalObjectStore,
    ObjectAlreadyExistsError,
    ObjectID,
    ObjectNotFoundError,
    ObjectValue,
)

MB = 1024 * 1024


@pytest.fixture()
def store():
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    return LocalObjectStore(cluster.node(0), cluster.config), cluster


def test_create_and_progress_tracking(store):
    local, cluster = store
    object_id = ObjectID.of("x")
    entry = local.create(object_id, 3 * MB)
    assert entry.num_blocks == 3
    assert not entry.complete
    assert entry.progress_fraction == 0.0

    entry.mark_block_ready(0)
    assert entry.blocks_ready == 1
    entry.mark_block_ready(2)
    assert entry.blocks_ready == 3  # progress is monotone by highest block
    entry.seal(payload=np.ones(3))
    assert entry.complete
    assert entry.progress_fraction == 1.0
    assert local.contains_complete(object_id)
    with pytest.raises(IndexError):
        entry.mark_block_ready(5)


def test_create_duplicate_rejected_and_create_or_get(store):
    local, _ = store
    object_id = ObjectID.of("dup")
    local.create(object_id, MB)
    with pytest.raises(ObjectAlreadyExistsError):
        local.create(object_id, MB)
    again = local.create_or_get(object_id, MB, pin=True)
    assert again.pinned


def test_get_entry_missing_raises(store):
    local, _ = store
    with pytest.raises(ObjectNotFoundError):
        local.get_entry(ObjectID.of("missing"))
    assert local.try_get_entry(ObjectID.of("missing")) is None


def test_put_complete_and_delete(store):
    local, _ = store
    object_id = ObjectID.of("whole")
    value = ObjectValue.from_array(np.arange(5), logical_size=2 * MB)
    entry = local.put_complete(object_id, value)
    assert entry.complete and entry.pinned
    assert local.bytes_stored == 2 * MB
    local.delete(object_id)
    assert object_id not in local
    assert local.bytes_stored == 0
    local.delete(object_id)  # idempotent


def test_wait_for_blocks_and_sealed_events(store):
    local, cluster = store
    sim = cluster.sim
    object_id = ObjectID.of("stream")
    entry = local.create(object_id, 2 * MB)
    observations = []

    def consumer(sim):
        yield entry.wait_for_blocks(1)
        observations.append(("block-1", sim.now))
        yield entry.wait_sealed()
        observations.append(("sealed", sim.now))

    def producer(sim):
        yield sim.timeout(1.0)
        entry.mark_block_ready(0)
        yield sim.timeout(1.0)
        entry.mark_block_ready(1)
        entry.seal()

    sim.process(consumer(sim))
    sim.process(producer(sim))
    cluster.run()
    assert observations == [("block-1", 1.0), ("sealed", 2.0)]
    # Waiting on an already-satisfied threshold fires immediately.
    assert entry.wait_for_blocks(1).triggered
    assert entry.wait_sealed().triggered


def test_reset_progress_only_for_unsealed(store):
    local, _ = store
    entry = local.create(ObjectID.of("p"), 2 * MB)
    entry.mark_block_ready(0)
    entry.reset_progress()
    assert entry.blocks_ready == 0
    entry.seal()
    with pytest.raises(ValueError):
        entry.reset_progress()


def test_pin_unpin_and_eviction_order():
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    local = LocalObjectStore(cluster.node(0), cluster.config, capacity_bytes=3 * MB)
    sim = cluster.sim

    pinned_id = ObjectID.of("pinned")
    local.put_complete(pinned_id, ObjectValue.of_size(MB), pin=True)
    old_id = ObjectID.of("old")
    local.put_complete(old_id, ObjectValue.of_size(MB), pin=False)
    sim._now = 10.0  # make subsequent accesses clearly newer
    new_id = ObjectID.of("new")
    local.put_complete(new_id, ObjectValue.of_size(MB), pin=False)

    # Inserting one more MB must evict the least recently used unpinned copy.
    local.put_complete(ObjectID.of("incoming"), ObjectValue.of_size(MB), pin=False)
    assert old_id not in local
    assert pinned_id in local and new_id in local
    assert local.evictions == 1


def test_eviction_failure_when_everything_pinned():
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    local = LocalObjectStore(cluster.node(0), cluster.config, capacity_bytes=2 * MB)
    local.put_complete(ObjectID.of("a"), ObjectValue.of_size(MB), pin=True)
    local.put_complete(ObjectID.of("b"), ObjectValue.of_size(MB), pin=True)
    with pytest.raises(MemoryError):
        local.create(ObjectID.of("c"), MB)
    with pytest.raises(MemoryError):
        local.create(ObjectID.of("huge"), 10 * MB)


def test_pin_and_unpin_api(store):
    local, _ = store
    object_id = ObjectID.of("x")
    local.put_complete(object_id, ObjectValue.of_size(MB), pin=False)
    local.pin(object_id)
    assert local.get_entry(object_id).pinned
    local.unpin(object_id)
    assert not local.get_entry(object_id).pinned


def test_eviction_prefers_sealed_over_idle_partial():
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    local = LocalObjectStore(cluster.node(0), cluster.config, capacity_bytes=2 * MB)
    partial = local.create(ObjectID.of("partial"), MB)
    partial.mark_block_ready(0)  # still unsealed
    cluster.sim._now = 5.0
    local.put_complete(ObjectID.of("sealed"), ObjectValue.of_size(MB), pin=False)
    # The sealed copy is evicted even though the partial is older (LRU).
    local.put_complete(ObjectID.of("incoming"), ObjectValue.of_size(MB), pin=False)
    assert ObjectID.of("sealed") not in local
    assert ObjectID.of("partial") in local


def test_idle_unpinned_partial_is_evictable():
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    local = LocalObjectStore(cluster.node(0), cluster.config, capacity_bytes=2 * MB)
    partial = local.create(ObjectID.of("partial"), MB)
    partial.mark_block_ready(0)
    local.put_complete(ObjectID.of("pinned"), ObjectValue.of_size(MB), pin=True)
    local.put_complete(ObjectID.of("incoming"), ObjectValue.of_size(MB), pin=False)
    assert ObjectID.of("partial") not in local
    assert local.evictions == 1


def test_partial_with_progress_waiters_is_not_evicted():
    """Evicting a partial someone streams from would wedge its waiters."""
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    local = LocalObjectStore(cluster.node(0), cluster.config, capacity_bytes=3 * MB)
    sim = cluster.sim

    hot = local.create(ObjectID.of("hot-partial"), 2 * MB)
    hot.mark_block_ready(0)
    observed = []

    def consumer():
        yield hot.wait_for_blocks(2)
        observed.append(sim.now)

    sim.process(consumer())
    cluster.run()  # park the consumer on the progress waiter
    assert hot.has_waiters

    # The store is full of a waited-on partial: inserting more must fail
    # loudly rather than silently evicting it and wedging the consumer.
    with pytest.raises(MemoryError):
        local.create(ObjectID.of("incoming"), 2 * MB)
    assert ObjectID.of("hot-partial") in local

    # Once the partial completes, the waiter fires and (sealed, unpinned)
    # the copy becomes an ordinary eviction candidate.
    hot.mark_block_ready(1)
    hot.seal()
    cluster.run()
    assert observed and not hot.has_waiters
    local.create(ObjectID.of("incoming"), 2 * MB)
    assert ObjectID.of("hot-partial") not in local


def test_inflight_fetch_partial_is_not_evicted():
    """A receive partial being written by a fetch is referenced, not idle.

    Progress waiters live on the *source* entry during a fetch, so without
    the fetch holding a reference the destination partial would look
    evictable and the fetch would keep writing into a detached object.
    """
    from repro.core import HopliteRuntime

    cluster = Cluster(
        num_nodes=2, network=NetworkConfig(bandwidth=1.25e7, block_size=MB)
    )
    runtime = HopliteRuntime(cluster, store_capacity_bytes=4 * MB)
    sim = cluster.sim
    object_id = ObjectID.of("big")

    def producer():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(4 * MB))

    def consumer():
        yield from runtime.client(1).get(object_id)

    checked = {}

    def saboteur():
        yield sim.timeout(0.2)  # mid-fetch: ~0.33 s total at 12.5 MB/s
        store = runtime.store(1)
        entry = store.try_get_entry(object_id)
        assert entry is not None and not entry.sealed
        assert entry.ref_count > 0
        with pytest.raises(MemoryError):
            store.create(ObjectID.of("pressure"), 4 * MB)
        checked["done"] = True

    sim.process(producer())
    sim.process(consumer())
    sim.process(saboteur())
    cluster.run(until=30.0)
    assert checked.get("done")
    assert runtime.store(1).contains_complete(object_id)


def test_sealed_waiter_blocks_eviction_until_sealed():
    cluster = Cluster(num_nodes=1, network=NetworkConfig(block_size=MB))
    local = LocalObjectStore(cluster.node(0), cluster.config, capacity_bytes=MB)
    entry = local.create(ObjectID.of("x"), MB)
    entry.wait_sealed()
    assert entry.has_waiters
    with pytest.raises(MemoryError):
        local.create(ObjectID.of("y"), MB)


def test_node_failure_clears_store(store):
    local, cluster = store
    local.put_complete(ObjectID.of("x"), ObjectValue.of_size(MB))
    assert len(local) == 1
    cluster.node(0).fail()
    assert len(local) == 0
    assert local.bytes_stored == 0


def test_to_value_roundtrip(store):
    local, _ = store
    payload = np.arange(3, dtype=np.float64)
    object_id = ObjectID.of("val")
    local.put_complete(object_id, ObjectValue.from_array(payload, logical_size=MB))
    value = local.get_entry(object_id).to_value()
    assert value.size == MB
    assert np.allclose(value.as_array(), payload)
