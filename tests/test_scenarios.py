"""Tests for the benchmark scenario drivers and the reporting helpers."""

import pytest

from repro.bench import (
    SUPPORTED_SYSTEMS,
    format_series,
    format_table,
    measure_allreduce,
    measure_broadcast,
    measure_gather,
    measure_point_to_point_rtt,
    measure_reduce,
)
from repro.bench.reporting import format_value
from repro.bench.scenarios import UnsupportedScenarioError
from repro.net import NetworkConfig

MB = 1024 * 1024
KB = 1024


def test_supported_systems_listed():
    assert "hoplite" in SUPPORTED_SYSTEMS and "openmpi" in SUPPORTED_SYSTEMS
    with pytest.raises(UnsupportedScenarioError):
        measure_point_to_point_rtt("nccl", KB)


def test_point_to_point_ordering_small_objects():
    latencies = {
        system: measure_point_to_point_rtt(system, KB)
        for system in ("optimal", "openmpi", "hoplite", "ray", "dask")
    }
    assert latencies["openmpi"] <= latencies["hoplite"] <= latencies["ray"] <= latencies["dask"]
    assert latencies["optimal"] <= latencies["openmpi"]


def test_point_to_point_large_objects_near_optimal():
    rtt = measure_point_to_point_rtt("hoplite", 256 * MB)
    optimal = measure_point_to_point_rtt("optimal", 256 * MB)
    assert rtt <= optimal * 1.15


def test_broadcast_measure_and_validation():
    latency = measure_broadcast("hoplite", 4, 8 * MB)
    assert latency > 0
    with pytest.raises(ValueError):
        measure_broadcast("hoplite", 1, MB)
    with pytest.raises(UnsupportedScenarioError):
        measure_broadcast("gloo_ring", 4, MB)
    assert measure_broadcast("optimal", 4, 8 * MB) == pytest.approx(
        8 * MB / NetworkConfig().bandwidth
    )


def test_broadcast_arrival_delays_validation():
    with pytest.raises(ValueError):
        measure_broadcast("hoplite", 4, MB, arrival_delays=[0.0, 0.1])  # wrong length


def test_gather_measure_and_unsupported():
    latency = measure_gather("hoplite", 4, 8 * MB)
    mpi = measure_gather("openmpi", 4, 8 * MB)
    assert latency > 0 and mpi > 0
    with pytest.raises(UnsupportedScenarioError):
        measure_gather("gloo", 4, MB)
    with pytest.raises(ValueError):
        measure_gather("hoplite", 1, MB)


def test_reduce_measure_sync_and_async():
    sync = measure_reduce("hoplite", 4, 8 * MB)
    staggered = measure_reduce("hoplite", 4, 8 * MB, arrival_interval=0.05)
    assert sync > 0
    # With staggered arrivals the measurement includes waiting for arrivals.
    assert staggered >= 0.05 * 3
    with pytest.raises(UnsupportedScenarioError):
        measure_reduce("gloo", 4, MB)


def test_allreduce_measure_all_variants():
    for system in ("hoplite", "openmpi", "gloo_ring", "gloo_ring_chunked", "gloo_halving_doubling", "ray"):
        assert measure_allreduce(system, 4, 4 * MB) > 0


def test_hoplite_broadcast_beats_ray_at_scale():
    hoplite = measure_broadcast("hoplite", 8, 64 * MB)
    ray = measure_broadcast("ray", 8, 64 * MB)
    assert hoplite < ray


def test_driver_failure_object_plane_recovery_beats_job_restart():
    """Acceptance: lineage re-execution beats the static restart model.

    Recovery overhead = completion with a mid-collective root failure minus
    the same system's failure-free baseline.  A rooted broadcast recovers
    for ~free (the root share migrates and re-creates the object from
    lineage); a late allreduce failure is nearly free because the finished
    reduce is adopted; a static system always waits out the downtime and
    reruns the whole job.
    """
    from repro.bench.scenarios import measure_driver_failure

    network = NetworkConfig(bandwidth=1.25e8)
    for collective, fraction in (("broadcast", 0.5), ("allreduce", 0.85)):
        overheads = {}
        for system in ("hoplite", "openmpi"):
            baseline = measure_driver_failure(
                system, 4, 8 * MB, collective=collective, network=network
            )
            failed = measure_driver_failure(
                system,
                4,
                8 * MB,
                collective=collective,
                fail_fraction=fraction,
                downtime=0.2,
                network=network,
            )
            overheads[system] = failed - baseline
        assert overheads["hoplite"] < overheads["openmpi"], (collective, overheads)

    with pytest.raises(ValueError):
        measure_driver_failure("hoplite", 4, MB, fail_at=0.1, fail_fraction=0.5)
    with pytest.raises(UnsupportedScenarioError):
        measure_driver_failure("optimal", 4, MB)


def test_format_value_and_table_and_series():
    assert format_value(0) == "0"
    assert format_value(1234.0) == "1,234"
    assert format_value(1.5) == "1.500"
    assert format_value(0.0015).endswith("m")
    assert format_value(1.5e-6).endswith("u")
    table = format_table("Title", [{"a": 1.0, "b": "x"}], ["a", "b"])
    assert "Title" in table and "1.000" in table and "x" in table
    series = format_series("S", "x", [1, 2], {"sys": [0.1, 0.2]})
    assert "sys" in series and "x" in series
    nan_series = format_series("S", "x", [1], {"sys": []})
    assert "nan" in nan_series
