"""The frozen ``collect_flow_usage`` schema, pinned on hand-computed traffic.

Satellite of the observability PR: ``collect_flow_usage`` feeds digests,
perf rows, examples, and the plane's consumers, so its return shape is a
contract (:class:`repro.bench.scenarios.FlowUsage`).  The numbers below are
small enough to check by hand: one 4 MB object crossing one known path.
"""

import dataclasses

import pytest

from repro.bench.scenarios import FlowUsage, collect_flow_usage
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.fastpath import COUNTER_KEYS
from repro.net.topology import Topology
from repro.store.objects import ObjectID, ObjectValue, reset_id_counter

MB = 1024 * 1024

#: the frozen key set.  Removing or renaming a key breaks digests and every
#: downstream consumer; additions are allowed but must be deliberate (update
#: this tuple and the FlowUsage dataclass in the same commit).
SCHEMA_KEYS = (
    "elapsed",
    "events_processed",
    "links",
    "bytes_by_class",
    "mean_uplink_utilization",
    "max_uplink_utilization",
    "control_messages",
    "tier_bytes",
    "tier_busy_time",
    "cross_rack_fraction",
    "cross_zone_fraction",
    "fastpath",
)


def _one_transfer(src: int, dst: int, nbytes: int = 4 * MB):
    """2 racks x 2 nodes over 2 zones; move one object ``src`` -> ``dst``."""
    reset_id_counter()
    topology = Topology.racks(2, 2, oversubscription=2.0, zones=(0, 1))
    cluster = Cluster(num_nodes=4, network=NetworkConfig(topology=topology))
    runtime = HopliteRuntime(cluster)
    oid = ObjectID.unique("hand")

    def sender():
        yield from runtime.client(src).put(oid, ObjectValue.of_size(nbytes))

    def receiver():
        yield from runtime.client(dst).get(oid)

    cluster.sim.process(sender())
    cluster.sim.process(receiver())
    cluster.run()
    return cluster, collect_flow_usage(cluster)


def test_schema_is_frozen():
    _, usage = _one_transfer(0, 1)
    assert tuple(usage.keys()) == SCHEMA_KEYS
    assert tuple(f.name for f in dataclasses.fields(FlowUsage)) == SCHEMA_KEYS
    assert set(usage["bytes_by_class"]) == {"control", "reduce_partial", "bulk"}
    assert set(usage["tier_bytes"]) == {"nic", "rack_uplink", "inter_zone"}
    assert set(usage["tier_busy_time"]) == {"nic", "rack_uplink", "inter_zone"}
    assert set(usage["fastpath"]) == set(COUNTER_KEYS)


def test_cross_zone_transfer_hand_computed():
    """Node 0 -> node 3 crosses rack0-up, the zone pair, and rack1-down."""
    cluster, usage = _one_transfer(0, 3)
    nbytes = 4 * MB
    # Uplink-side accounting: the 4 MB counts once per tier it crossed.
    assert usage["bytes_by_class"] == {
        "control": 0,
        "reduce_partial": 0,
        "bulk": nbytes,
    }
    assert usage["tier_bytes"] == {
        "nic": nbytes,
        "rack_uplink": nbytes,
        "inter_zone": nbytes,
    }
    assert usage["cross_rack_fraction"] == 1.0
    assert usage["cross_zone_fraction"] == 1.0
    # One transfer at a time: every tier was busy for exactly the NIC-rate
    # serialization time (2:1 oversubscription still leaves one NIC's worth).
    serialization = nbytes / cluster.config.bandwidth
    for tier, busy in usage["tier_busy_time"].items():
        assert busy == pytest.approx(serialization), tier
    # Only node 0's uplink carried bytes; the mean averages all 4 uplinks.
    assert usage["max_uplink_utilization"] == pytest.approx(
        4 * usage["mean_uplink_utilization"]
    )
    assert 0.0 < usage["max_uplink_utilization"] <= 1.0
    assert usage["control_messages"] > 0
    assert usage["elapsed"] >= serialization
    assert usage["events_processed"] == cluster.sim.events_processed
    busy_links = [
        (link.node_id, link.direction, link.tier)
        for link in usage["links"]
        if sum(link.bytes_by_class.values())
    ]
    assert busy_links == [
        (0, "up", "nic"),
        (3, "down", "nic"),
        (-1, "rack0-up", "rack_up"),
        (-1, "rack1-down", "rack_down"),
        (-1, "zone0-up", "zone_up"),
        (-1, "zone1-down", "zone_down"),
    ]


def test_same_rack_transfer_stays_off_the_fabric_tiers():
    _, usage = _one_transfer(0, 1)
    nbytes = 4 * MB
    assert usage["bytes_by_class"]["bulk"] == nbytes
    assert usage["tier_bytes"] == {"nic": nbytes, "rack_uplink": 0, "inter_zone": 0}
    assert usage["tier_busy_time"]["rack_uplink"] == 0.0
    assert usage["cross_rack_fraction"] == 0.0
    assert usage["cross_zone_fraction"] == 0.0
