"""Smoke tests for the experiment registry (tiny grids) and the examples."""

import runpy
from pathlib import Path

import pytest

from repro.bench.experiments import (
    KB,
    MB,
    collective_rows,
    directory_latency_microbenchmark,
    fig6_point_to_point,
    fig15_reduce_degree,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def test_fig6_rows_have_expected_columns():
    rows = fig6_point_to_point(sizes=(KB,), systems=("optimal", "hoplite", "ray"))
    assert len(rows) == 1
    assert set(rows[0]) == {"size", "optimal", "hoplite", "ray"}
    assert rows[0]["size"] == "1KB"


def test_collective_rows_tiny_grid():
    rows = collective_rows(
        sizes=(MB,),
        node_counts=(4,),
        primitives=("broadcast", "reduce"),
        systems_by_primitive={"broadcast": ("hoplite", "ray"), "reduce": ("hoplite",)},
    )
    assert len(rows) == 2
    for row in rows:
        assert row["nodes"] == 4
        assert row["hoplite"] > 0


def test_fig15_tiny_grid_has_degree_columns():
    rows = fig15_reduce_degree(sizes=(4 * KB,), node_counts=(8,), degrees=(1, 0))
    assert len(rows) == 1
    assert "d=1" in rows[0] and "d=n" in rows[0]


def test_directory_microbenchmark_orders_of_magnitude():
    stats = directory_latency_microbenchmark(num_nodes=4, repeats=8)
    assert 1e-5 < stats["publish_mean"] < 1e-3
    assert 1e-5 < stats["lookup_mean"] < 1e-3
    assert stats["publish_std"] >= 0


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "fault_tolerant_broadcast.py"],
)
def test_examples_run_end_to_end(script, capsys):
    """The runnable examples execute without errors on a fresh interpreter state."""
    path = EXAMPLES_DIR / script
    assert path.exists()
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert "node" in output
