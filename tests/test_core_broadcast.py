"""Tests for receiver-driven broadcast: relaying, bottleneck avoidance, failures."""

import numpy as np

from repro.core import HopliteOptions, HopliteRuntime, ObjectID, ObjectValue
from repro.net import Cluster, NetworkConfig

MB = 1024 * 1024


def broadcast_latency(num_nodes, nbytes, options=None, fail_node=None, fail_at=None, delays=None):
    """Put on node 0, Get on all others; return (per-receiver finish times, runtime)."""
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    runtime = HopliteRuntime(cluster, options=options)
    sim = cluster.sim
    object_id = ObjectID.of("bcast")
    payload = np.arange(4, dtype=np.float64)
    finishes = {}

    def scenario():
        yield from runtime.client(0).put(
            object_id, ObjectValue.from_array(payload, logical_size=nbytes)
        )
        epoch = sim.now
        receivers = []

        def receiver(node_id, delay):
            if delay:
                yield sim.timeout(delay)
            value = yield from runtime.client(node_id).get(object_id)
            assert np.allclose(value.as_array(), payload)
            finishes[node_id] = sim.now - epoch

        for index, node_id in enumerate(range(1, num_nodes)):
            delay = (delays or {}).get(node_id, 0.0)
            receivers.append(sim.process(receiver(node_id, delay)))
        yield sim.all_of(receivers)

    sim.process(scenario())
    if fail_node is not None:
        cluster.schedule_failure(fail_node, at=fail_at)
    cluster.run()
    return finishes, runtime


def test_broadcast_correctness_to_many_receivers():
    finishes, _ = broadcast_latency(8, 32 * MB)
    assert len(finishes) == 7


def test_broadcast_avoids_sender_bottleneck():
    """Dynamic broadcast must beat the flat every-receiver-pulls-from-sender plan."""
    config = NetworkConfig()
    num_nodes, nbytes = 8, 64 * MB
    dynamic, _ = broadcast_latency(num_nodes, nbytes)
    naive, _ = broadcast_latency(
        num_nodes, nbytes, options=HopliteOptions(enable_dynamic_broadcast=False, enable_pipelining=False)
    )
    flat_lower_bound = (num_nodes - 1) * config.transmission_time(nbytes)
    assert max(naive.values()) >= flat_lower_bound * 0.9
    assert max(dynamic.values()) < flat_lower_bound * 0.7
    assert max(dynamic.values()) < max(naive.values())


def test_broadcast_scales_sublinearly_with_receivers():
    small, _ = broadcast_latency(4, 64 * MB)
    large, _ = broadcast_latency(16, 64 * MB)
    # 5x more receivers must cost far less than 5x the latency.
    assert max(large.values()) < 3 * max(small.values())


def test_late_receiver_fetches_from_a_complete_peer():
    """A receiver arriving after the broadcast finished still completes quickly."""
    finishes, runtime = broadcast_latency(4, 32 * MB, delays={3: 1.0})
    # The late receiver's latency (measured from epoch) is dominated by its delay
    # plus a single object transfer time.
    config = runtime.config
    assert finishes[3] < 1.0 + 2 * config.transmission_time(32 * MB)
    locations = runtime.directory.locations_of(ObjectID.of("bcast"))
    assert locations[3].complete


def test_broadcast_survives_receiver_failure():
    """Killing an intermediate receiver mid-broadcast leaves the others intact."""
    finishes, runtime = broadcast_latency(
        5, 128 * MB, delays={2: 0.02, 3: 0.04, 4: 0.06}, fail_node=1, fail_at=0.08
    )
    # Node 1 died; every other receiver finished with correct data.
    assert set(finishes) == {2, 3, 4}
    for node_id in (2, 3, 4):
        assert runtime.store(node_id).contains_complete(ObjectID.of("bcast"))


def test_broadcast_survives_origin_failure_after_first_copy():
    """Once one receiver holds a complete copy, even the origin can die."""
    cluster = Cluster(num_nodes=4, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    object_id = ObjectID.of("x")
    finishes = {}

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(64 * MB))
        # First receiver completes while the origin is alive.
        yield from runtime.client(1).get(object_id)
        # The origin dies; later receivers must fetch from node 1.
        cluster.node(0).fail()

        def receiver(node_id):
            yield from runtime.client(node_id).get(object_id)
            finishes[node_id] = sim.now

        yield sim.all_of([sim.process(receiver(2)), sim.process(receiver(3))])

    sim.process(scenario())
    cluster.run()
    assert set(finishes) == {2, 3}
    assert runtime.store(2).contains_complete(object_id)
    assert runtime.store(3).contains_complete(object_id)


def test_failed_receiver_can_rejoin_broadcast():
    """A receiver that dies and recovers simply calls Get again and completes."""
    cluster = Cluster(num_nodes=3, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    object_id = ObjectID.of("x")
    outcome = {}

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(64 * MB))
        cluster.node(2).fail()
        yield sim.timeout(0.1)
        cluster.node(2).recover()
        value = yield from runtime.client(2).get(object_id)
        outcome["size"] = value.size

    sim.process(scenario())
    cluster.run()
    assert outcome["size"] == 64 * MB
