"""Tests for the OpenMPI/Gloo-style static collective baselines."""

import pytest

from repro.collectives import CollectiveGroup, GlooCollectives, MPICollectives, StaticCollectiveError
from repro.collectives.mpi import (
    BinomialBroadcast,
    PipelineChainBroadcast,
    binomial_children,
    binomial_parent,
)
from repro.net import Cluster, NetworkConfig

MB = 1024 * 1024
KB = 1024


def run_collective(cluster, op, delays=None):
    """Spawn one participant per rank; return {rank: finish_time}."""
    sim = cluster.sim
    finishes = {}

    def participant(rank, delay):
        if delay:
            yield sim.timeout(delay)
        result = yield from op.participate(rank)
        finishes[rank] = result.finish_time

    for rank in range(op.group.size):
        delay = (delays or {}).get(rank, 0.0)
        sim.process(participant(rank, delay))
    cluster.run()
    return finishes


def test_binomial_tree_structure():
    assert binomial_parent(0) is None
    assert binomial_parent(1) == 0
    assert binomial_parent(5) == 4
    assert binomial_parent(6) == 4
    assert binomial_children(0, 8) == [1, 2, 4]
    assert binomial_children(2, 8) == [3]
    assert binomial_children(4, 8) == [5, 6]
    # Every non-root rank appears as exactly one parent's child.
    for size in (2, 5, 8, 13):
        seen = []
        for vrank in range(size):
            seen.extend(binomial_children(vrank, size))
        assert sorted(seen) == list(range(1, size))


def test_collective_group_validation():
    cluster = Cluster(num_nodes=4)
    group = CollectiveGroup(cluster)
    assert group.size == 4
    with pytest.raises(StaticCollectiveError):
        group.node_of_rank(9)
    with pytest.raises(StaticCollectiveError):
        CollectiveGroup(cluster, [])


def test_mpi_broadcast_algorithm_selection_by_size():
    cluster = Cluster(num_nodes=8)
    mpi = MPICollectives(cluster)
    assert isinstance(mpi.broadcast(1 * KB), BinomialBroadcast)
    assert isinstance(mpi.broadcast(64 * MB), PipelineChainBroadcast)


def test_mpi_broadcast_delivers_to_all_ranks_and_pipelines():
    cluster = Cluster(num_nodes=8)
    config = cluster.config
    op = MPICollectives(cluster).broadcast(64 * MB)
    finishes = run_collective(cluster, op)
    assert len(finishes) == 8
    # With segment pipelining the chain finishes well under hops x full-transfer.
    single = config.transmission_time(64 * MB)
    assert max(finishes.values()) < 2.5 * single


def test_mpi_small_broadcast_latency_grows_logarithmically():
    latencies = {}
    for num_nodes in (4, 16):
        cluster = Cluster(num_nodes=num_nodes)
        op = MPICollectives(cluster).broadcast(1 * KB)
        finishes = run_collective(cluster, op)
        latencies[num_nodes] = max(finishes.values())
    assert latencies[16] < 4 * latencies[4]


def test_mpi_reduce_waits_for_all_ranks():
    cluster = Cluster(num_nodes=4)
    op = MPICollectives(cluster).reduce(8 * MB)
    finishes = run_collective(cluster, op, delays={3: 1.0})
    # Nothing finishes before the last rank arrives.
    assert min(finishes.values()) >= 1.0
    assert finishes[0] == max(finishes.values()) or finishes[0] >= 1.0


def test_mpi_gather_time_scales_with_senders():
    config = NetworkConfig()
    results = {}
    for num_nodes in (4, 8):
        cluster = Cluster(num_nodes=num_nodes, network=config)
        op = MPICollectives(cluster).gather(16 * MB)
        finishes = run_collective(cluster, op)
        results[num_nodes] = finishes[0]
    # The root's downlink serializes all senders.
    assert results[8] > results[4] * 1.5
    assert results[8] >= 7 * config.transmission_time(16 * MB) * 0.9


def test_mpi_allreduce_handles_non_power_of_two():
    for num_nodes in (4, 6, 7, 8):
        cluster = Cluster(num_nodes=num_nodes)
        op = MPICollectives(cluster).allreduce(8 * MB)
        finishes = run_collective(cluster, op)
        assert len(finishes) == num_nodes


def test_mpi_point_to_point_send():
    cluster = Cluster(num_nodes=2)
    mpi = MPICollectives(cluster)
    process = cluster.sim.process(mpi.send(0, 1, 16 * MB))
    cluster.run()
    assert process.value == pytest.approx(
        cluster.config.transmission_time(16 * MB)
        + cluster.config.num_blocks(16 * MB) * cluster.config.latency,
        rel=1e-6,
    )


def test_gloo_ring_allreduce_is_bandwidth_efficient():
    """Ring allreduce approaches 2 x S/B regardless of the group size."""
    config = NetworkConfig()
    nbytes = 256 * MB
    times = {}
    for num_nodes in (4, 16):
        cluster = Cluster(num_nodes=num_nodes, network=config)
        op = GlooCollectives(cluster).allreduce_ring_chunked(nbytes)
        finishes = run_collective(cluster, op)
        times[num_nodes] = max(finishes.values())
    lower_bound = 2 * nbytes / config.bandwidth * 3 / 4
    assert times[4] >= lower_bound * 0.9
    # Growing the ring barely changes the completion time.
    assert times[16] < times[4] * 1.5


def test_gloo_allreduce_variants_agree_roughly():
    # Build a fresh cluster per operation so each op runs on its own simulator.
    cluster_r = Cluster(num_nodes=8)
    ring = run_collective(cluster_r, GlooCollectives(cluster_r).allreduce_ring(64 * MB))
    cluster_a = Cluster(num_nodes=8)
    chunked = run_collective(cluster_a, GlooCollectives(cluster_a).allreduce_ring_chunked(64 * MB))
    cluster_b = Cluster(num_nodes=8)
    halving = run_collective(cluster_b, GlooCollectives(cluster_b).allreduce_halving_doubling(64 * MB))
    assert max(chunked.values()) <= max(ring.values()) * 1.2
    assert max(halving.values()) < 4 * max(chunked.values())


def test_gloo_flat_broadcast_serializes_at_root():
    config = NetworkConfig()
    cluster = Cluster(num_nodes=8, network=config)
    op = GlooCollectives(cluster).broadcast(32 * MB)
    finishes = run_collective(cluster, op)
    assert max(finishes.values()) >= 7 * config.transmission_time(32 * MB) * 0.9


def test_static_ops_reject_bad_sizes_and_single_rank_degenerates():
    cluster = Cluster(num_nodes=1)
    with pytest.raises(StaticCollectiveError):
        MPICollectives(cluster).broadcast(-1)
    op = GlooCollectives(cluster).allreduce_ring_chunked(1 * MB)
    finishes = run_collective(cluster, op)
    assert finishes[0] >= 0.0
