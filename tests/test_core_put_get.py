"""Tests for the Hoplite client API: Put, Get, Delete, and the small-object path."""

import numpy as np

from repro.core import HopliteOptions, HopliteRuntime, ObjectID, ObjectValue
from repro.net import Cluster, NetworkConfig

MB = 1024 * 1024
KB = 1024


def make_runtime(num_nodes=4, options=None, **config_overrides):
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig(**config_overrides))
    return cluster, HopliteRuntime(cluster, options=options)


def run(cluster, generator):
    process = cluster.sim.process(generator)
    cluster.run()
    assert process.ok, process.value
    return process.value


def test_put_then_local_get_returns_payload():
    cluster, runtime = make_runtime()
    payload = np.arange(16, dtype=np.float64)
    object_id = ObjectID.of("x")

    def scenario():
        client = runtime.client(0)
        yield from client.put(object_id, ObjectValue.from_array(payload, logical_size=8 * MB))
        value = yield from client.get(object_id)
        return value

    value = run(cluster, scenario())
    assert np.allclose(value.as_array(), payload)
    assert value.size == 8 * MB


def test_remote_get_transfers_and_caches_locally():
    cluster, runtime = make_runtime()
    object_id = ObjectID.of("x")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(32 * MB))
        first_start = cluster.sim.now
        yield from runtime.client(1).get(object_id)
        first_elapsed = cluster.sim.now - first_start
        second_start = cluster.sim.now
        yield from runtime.client(1).get(object_id)
        second_elapsed = cluster.sim.now - second_start
        return first_elapsed, second_elapsed

    first_elapsed, second_elapsed = run(cluster, scenario())
    # First fetch crosses the network; the second is served from the local store.
    assert first_elapsed > cluster.config.transmission_time(32 * MB) * 0.9
    assert second_elapsed < first_elapsed / 10


def test_get_blocks_until_object_exists():
    cluster, runtime = make_runtime()
    object_id = ObjectID.of("future")
    times = {}

    def consumer():
        value = yield from runtime.client(1).get(object_id)
        times["got"] = cluster.sim.now
        return value

    def producer():
        yield cluster.sim.timeout(2.0)
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(MB))

    cluster.sim.process(consumer())
    cluster.sim.process(producer())
    cluster.run()
    assert times["got"] > 2.0


def test_small_object_uses_directory_fast_path():
    cluster, runtime = make_runtime()
    payload = np.arange(8, dtype=np.int32)
    object_id = ObjectID.of("small")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.from_array(payload))
        start = cluster.sim.now
        value = yield from runtime.client(3).get(object_id)
        return value, cluster.sim.now - start

    value, elapsed = run(cluster, scenario())
    assert np.allclose(value.as_array(), payload)
    # The fast path is a couple of control RPCs, far below a block transfer.
    assert elapsed < 5 * cluster.config.rpc_latency
    record = runtime.directory.peek_record(object_id)
    assert record is not None and record.inline_value is not None


def test_small_object_cache_can_be_disabled():
    cluster, runtime = make_runtime(options=HopliteOptions(enable_small_object_cache=False))
    object_id = ObjectID.of("small")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(KB))
        yield from runtime.client(1).get(object_id)
        return runtime.directory.peek_record(object_id).inline_value

    assert run(cluster, scenario()) is None


def test_get_read_only_avoids_extra_copy():
    cluster, runtime = make_runtime()
    object_id = ObjectID.of("x")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(64 * MB))
        start = cluster.sim.now
        yield from runtime.client(1).get(object_id, read_only=True)
        read_only_elapsed = cluster.sim.now - start
        object_id2 = ObjectID.of("y")
        yield from runtime.client(0).put(object_id2, ObjectValue.of_size(64 * MB))
        start = cluster.sim.now
        yield from runtime.client(2).get(object_id2, read_only=False)
        copy_elapsed = cluster.sim.now - start
        return read_only_elapsed, copy_elapsed

    read_only_elapsed, copy_elapsed = run(cluster, scenario())
    assert copy_elapsed > read_only_elapsed


def test_concurrent_gets_share_one_fetch():
    cluster, runtime = make_runtime()
    object_id = ObjectID.of("shared")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(32 * MB))
        results = []

        def getter():
            yield from runtime.client(1).get(object_id)
            results.append(cluster.sim.now)

        first = cluster.sim.process(getter())
        second = cluster.sim.process(getter())
        yield cluster.sim.all_of([first, second])
        return results

    run(cluster, scenario())
    # Only one fetch crossed the network: exactly one complete location for
    # node 1 and the two getters finished at (nearly) the same time.
    locations = runtime.directory.locations_of(ObjectID.of("shared"))
    assert locations[1].complete


def test_delete_removes_all_copies():
    cluster, runtime = make_runtime()
    object_id = ObjectID.of("x")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(MB))
        yield from runtime.client(1).get(object_id)
        yield from runtime.client(0).delete(object_id)
        return True

    run(cluster, scenario())
    assert object_id not in runtime.store(0)
    assert object_id not in runtime.store(1)
    record = runtime.directory.peek_record(object_id)
    assert record.deleted and not record.locations


def test_put_pipelining_publishes_location_before_copy_finishes():
    """With pipelining the Put's location is visible before the Put completes."""
    cluster, runtime = make_runtime()
    object_id = ObjectID.of("x")
    observed = {}

    def producer():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(256 * MB))
        observed["put_done"] = cluster.sim.now

    def watcher():
        yield runtime.directory.creation_event(object_id)
        observed["visible"] = cluster.sim.now

    cluster.sim.process(producer())
    cluster.sim.process(watcher())
    cluster.run()
    assert observed["visible"] < observed["put_done"]


def test_put_without_pipelining_publishes_only_when_complete():
    cluster, runtime = make_runtime(options=HopliteOptions(enable_pipelining=False))
    object_id = ObjectID.of("x")
    observed = {}

    def producer():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(256 * MB))
        observed["put_done"] = cluster.sim.now

    def watcher():
        yield runtime.directory.creation_event(object_id)
        observed["visible"] = cluster.sim.now

    cluster.sim.process(producer())
    cluster.sim.process(watcher())
    cluster.run()
    assert observed["visible"] >= observed["put_done"] - cluster.config.rpc_latency


def test_pipelining_reduces_end_to_end_latency():
    """Receiving while the Put is still copying beats waiting for it to finish."""
    nbytes = 512 * MB
    latencies = {}
    for label, options in (
        ("pipelined", HopliteOptions()),
        ("store_and_forward", HopliteOptions(enable_pipelining=False)),
    ):
        cluster, runtime = make_runtime(options=options)
        object_id = ObjectID.of("x")

        def scenario():
            def producer():
                yield from runtime.client(0).put(object_id, ObjectValue.of_size(nbytes))

            cluster.sim.process(producer())
            yield from runtime.client(1).get(object_id)
            return cluster.sim.now

        latencies[label] = run(cluster, scenario())
    assert latencies["pipelined"] < latencies["store_and_forward"]


def test_runtime_client_is_cached_and_store_accessors_work():
    cluster, runtime = make_runtime(num_nodes=2)
    assert runtime.client(0) is runtime.client(cluster.node(0))
    assert runtime.store(0) is runtime.store(cluster.node(0))
    assert runtime.manager(1).node.node_id == 1
    assert runtime.small_object(KB)
    assert not runtime.small_object(MB)
