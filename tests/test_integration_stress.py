"""System-level integration and stress tests across the whole stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HopliteOptions, HopliteRuntime, ObjectID, ObjectValue, ReduceOp
from repro.net import Cluster, NetworkConfig

MB = 1024 * 1024


def test_allreduce_delivers_identical_result_to_every_node():
    """Reduce-then-broadcast (allreduce) gives every node the same correct sum."""
    num_nodes = 6
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    source_ids = [ObjectID.of(f"g{i}") for i in range(num_nodes)]
    target_id = ObjectID.of("sum")
    received: dict[int, np.ndarray] = {}

    def producer(node_id):
        yield from runtime.client(node_id).put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(3, float(node_id + 1)), logical_size=16 * MB),
        )

    def reducer():
        yield from runtime.client(0).reduce(target_id, source_ids, ReduceOp.SUM)

    def fetcher(node_id):
        value = yield from runtime.client(node_id).get(target_id)
        received[node_id] = value.as_array()

    for node_id in range(num_nodes):
        sim.process(producer(node_id))
    sim.process(reducer())
    for node_id in range(num_nodes):
        sim.process(fetcher(node_id))
    cluster.run(until=300.0)

    expected = sum(range(1, num_nodes + 1))
    assert set(received) == set(range(num_nodes))
    for node_id, array in received.items():
        assert np.allclose(array, expected), node_id


def test_many_concurrent_broadcasts_do_not_interfere_with_correctness():
    """Several objects broadcast at once; every receiver ends with the right payloads."""
    cluster = Cluster(num_nodes=6, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    num_objects = 4
    object_ids = [ObjectID.of(f"obj{i}") for i in range(num_objects)]
    results: dict[tuple[int, int], float] = {}

    def producer(index):
        owner = index % 3  # objects originate on nodes 0..2
        yield from runtime.client(owner).put(
            object_ids[index],
            ObjectValue.from_array(np.full(2, float(index)), logical_size=24 * MB),
        )

    def consumer(node_id, index):
        value = yield from runtime.client(node_id).get(object_ids[index])
        results[(node_id, index)] = float(value.as_array()[0])

    for index in range(num_objects):
        sim.process(producer(index))
    for node_id in range(3, 6):
        for index in range(num_objects):
            sim.process(consumer(node_id, index))
    cluster.run(until=300.0)

    assert len(results) == 3 * num_objects
    for (node_id, index), value in results.items():
        assert value == float(index)


def test_reduce_with_repeated_random_failures_still_completes():
    """A reduce keeps completing correctly while spare participants fail one by one."""
    num_nodes = 10
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    source_ids = [ObjectID.of(f"s{i}") for i in range(num_nodes)]
    target_id = ObjectID.of("t")
    outcome = {}

    def producer(node_id):
        yield sim.timeout(0.01 * node_id)
        yield from runtime.client(node_id).put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(2, float(node_id + 1)), logical_size=16 * MB),
        )

    def reducer():
        result = yield from runtime.client(0).reduce(
            target_id, source_ids, ReduceOp.SUM, num_objects=6
        )
        value = yield from runtime.client(0).get(target_id)
        outcome["result"] = result
        outcome["value"] = value.as_array()

    for node_id in range(num_nodes):
        sim.process(producer(node_id))
    sim.process(reducer())
    # Two mid-tree participants die at different times; spares replace them.
    cluster.schedule_failure(2, at=0.06)
    cluster.schedule_failure(4, at=0.12)
    cluster.run(until=600.0)

    assert "value" in outcome, "reduce did not complete under repeated failures"
    reduced_keys = {oid.key for oid in outcome["result"].reduced_ids}
    assert len(reduced_keys) == 6
    # The reported membership and the reduced payload agree exactly.
    expected = sum(int(key[1:]) + 1 for key in reduced_keys)
    assert np.allclose(outcome["value"], expected)
    # The participant that died while the reduce was still in progress was
    # replaced by a spare.  (The second failure may land after the reduce has
    # already completed, in which case its contribution legitimately remains.)
    assert "s2" not in reduced_keys


@settings(max_examples=10, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=8),
    size_mb=st.sampled_from([1, 8, 24]),
    degree=st.sampled_from([None, 1, 2, 0]),
)
def test_reduce_correctness_is_independent_of_shape(num_nodes, size_mb, degree):
    """Property: the reduced value never depends on the tree degree or cluster size."""
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    options = HopliteOptions(reduce_degree=degree, enable_small_object_cache=False)
    runtime = HopliteRuntime(cluster, options=options)
    sim = cluster.sim
    source_ids = [ObjectID.of(f"p{i}") for i in range(num_nodes)]
    target_id = ObjectID.of("t")
    outcome = {}

    def producer(node_id):
        yield from runtime.client(node_id).put(
            source_ids[node_id],
            ObjectValue.from_array(np.full(2, float(node_id + 1)), logical_size=size_mb * MB),
        )

    def reducer():
        yield from runtime.client(0).reduce(target_id, source_ids, ReduceOp.SUM)
        value = yield from runtime.client(0).get(target_id)
        outcome["value"] = value.as_array()

    for node_id in range(num_nodes):
        sim.process(producer(node_id))
    sim.process(reducer())
    cluster.run(until=600.0)
    assert np.allclose(outcome["value"], sum(range(1, num_nodes + 1)))


def test_simulation_leaves_no_leaked_nic_capacity():
    """After a workload with failures, every NIC resource is fully released."""
    cluster = Cluster(num_nodes=5, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    object_id = ObjectID.of("x")

    def scenario():
        yield from runtime.client(0).put(object_id, ObjectValue.of_size(128 * MB))
        receivers = [
            sim.process(runtime.client(node_id).get(object_id)) for node_id in range(1, 5)
        ]
        yield sim.any_of(receivers)

    sim.process(scenario())
    cluster.schedule_failure(2, at=0.05)
    cluster.run(until=120.0)
    for node in cluster.nodes:
        assert node.uplink.in_use == 0, node
        assert node.downlink.in_use == 0, node
        assert node.memcpy_channel.in_use == 0, node
