"""Fault-injection matrix: seeded Poisson failures x collectives x planes x class.

Every cell runs one collective (broadcast, reduce, allreduce, allgather,
reduce-scatter, alltoall) over one communication plane (hoplite,
naive/Ray-style) at 8 nodes while a seeded
:func:`~repro.net.failure.poisson_failures` schedule fails and recovers
random nodes.  Two failure classes are covered:

* **peer** — only non-caller nodes (1..n-1) fail; the collective is driven
  directly against the plane and rides through with Hoplite's per-transfer
  recovery plus framework-style reconstruction, exactly as in PR 1;
* **root** — the caller/root node 0 *also* fails mid-collective (a
  deterministic kill on top of the Poisson peers).  These cells run through
  the :class:`~repro.tasksys.orchestrator.CollectiveOrchestrator`: every
  share is a lineage-recorded driver task, the root share is re-executed on
  an alive node from the durable spec, and re-executions adopt surviving
  partials — the paper's Section 6 framework role, now in scope.

Assertions per cell:

* **termination after repair** — every participant's share completes within
  the simulation budget;
* **result correctness** — the payloads every participant ends up with equal
  the failure-free expectation.
"""

import numpy as np
import pytest

from repro.apps.common import reconstruct_on_recovery, retry_across_failures
from repro.collectives.naive import RAY_PROFILE, TaskSystemPlane
from repro.collectives.plane import HoplitePlane
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.failure import FailureEvent, poisson_failures, schedule
from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.tasksys import CollectiveOrchestrator, CollectiveSpec, TaskSystem

MB = 1024 * 1024

#: 1 Gbps network so 16 MB transfers take ~0.13 s and the failure schedule
#: reliably lands mid-collective.
TEST_NETWORK = dict(bandwidth=1.25e8)
NUM_NODES = 8
NBYTES = 16 * MB
SIM_BUDGET = 240.0

SYSTEMS = ("hoplite", "naive")
PRIMITIVES = (
    "broadcast",
    "reduce",
    "allreduce",
    "allgather",
    "reduce_scatter",
    "alltoall",
)
FAILURE_CLASSES = ("peer", "root")
SEEDS = (0, 1)

#: when the root/caller dies in the "root" class: after the first puts have
#: landed but well before the collective can finish.
ROOT_FAIL_AT = 0.15
ROOT_DOWNTIME = 0.25


def _make_plane(system, cluster):
    if system == "hoplite":
        return HoplitePlane(HopliteRuntime(cluster))
    return TaskSystemPlane(cluster, RAY_PROFILE)


def _failure_schedule(seed, failure_class):
    events = poisson_failures(
        node_ids=list(range(1, NUM_NODES)),
        rate_per_second=4.0,
        horizon=0.8,
        downtime=0.2,
        seed=seed,
    )
    assert events, "failure schedule is empty; pick a different seed"
    if failure_class == "root":
        events = list(events) + [
            FailureEvent(
                node_id=0,
                fail_at=ROOT_FAIL_AT,
                recover_at=ROOT_FAIL_AT + ROOT_DOWNTIME,
            )
        ]
    return events


def _value(tag: float) -> ObjectValue:
    return ObjectValue.from_array(np.full(4, float(tag)), logical_size=NBYTES)


def _retrying(cluster, node_id, attempt, on_done):
    """Run one participant's share, retrying across its own node's failures."""
    result = yield from retry_across_failures(cluster, node_id, attempt)
    on_done(result)


def _build(system, seed, failure_class="peer", topology=None):
    cluster = Cluster(
        num_nodes=NUM_NODES,
        network=NetworkConfig(**TEST_NETWORK, topology=topology),
    )
    plane = _make_plane(system, cluster)
    schedule(cluster, _failure_schedule(seed, failure_class))
    return cluster, plane


def _install_reconstructors(cluster, plane, produced):
    """``produced``: node_id -> list of (ObjectID, ObjectValue) it owns."""
    for node_id, objects in produced.items():
        if node_id == 0 or not objects:
            continue  # node 0 never fails in the peer class
        cluster.sim.process(
            reconstruct_on_recovery(cluster, plane, node_id, objects),
            name=f"reconstruct-{node_id}",
        )


# ---------------------------------------------------------------------------
# Per-primitive drivers — peer class (direct against the plane, node 0 safe)
# ---------------------------------------------------------------------------


def _run_broadcast(cluster, plane):
    sim = cluster.sim
    root_id = ObjectID.unique("fm-bcast")
    received = {}

    def scenario():
        yield from plane.put(cluster.node(0), root_id, _value(7.0))
        for node_id in range(1, NUM_NODES):
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id: plane.get(cluster.node(node_id), root_id),
                    lambda value, node_id=node_id: received.update(
                        {node_id: value.as_array()}
                    ),
                ),
                name=f"fm-bcast-recv-{node_id}",
            )

    sim.process(scenario(), name="fm-bcast")
    cluster.run(until=SIM_BUDGET)
    assert sorted(received) == list(range(1, NUM_NODES)), "broadcast did not terminate"
    for node_id, array in received.items():
        assert np.allclose(array, 7.0), node_id


def _run_reduce(cluster, plane, with_final_gets=False):
    sim = cluster.sim
    source_ids = {i: ObjectID.unique(f"fm-red-src{i}") for i in range(NUM_NODES)}
    target_id = ObjectID.unique("fm-red-target")
    produced = {i: [(source_ids[i], _value(i + 1))] for i in range(NUM_NODES)}
    _install_reconstructors(cluster, plane, produced)
    expected = sum(range(1, NUM_NODES + 1))
    outcome = {}

    def scenario():
        producers = [
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id: plane.put(
                        cluster.node(node_id), *produced[node_id][0]
                    ),
                    lambda _result: None,
                ),
                name=f"fm-red-put-{node_id}",
            )
            for node_id in range(NUM_NODES)
        ]
        yield sim.all_of(producers)
        result = yield from plane.reduce(
            cluster.node(0), target_id, list(source_ids.values()), ReduceOp.SUM
        )
        value = yield from plane.get(cluster.node(0), target_id)
        outcome["reduce"] = result
        outcome[0] = value.as_array()
        if with_final_gets:
            for node_id in range(1, NUM_NODES):
                sim.process(
                    _retrying(
                        cluster,
                        node_id,
                        lambda node_id=node_id: plane.get(
                            cluster.node(node_id), target_id
                        ),
                        lambda value, node_id=node_id: outcome.update(
                            {node_id: value.as_array()}
                        ),
                    ),
                    name=f"fm-allred-get-{node_id}",
                )

    sim.process(scenario(), name="fm-reduce")
    cluster.run(until=SIM_BUDGET)
    participants = range(NUM_NODES) if with_final_gets else (0,)
    for node_id in participants:
        assert node_id in outcome, f"participant {node_id} did not terminate"
        assert np.allclose(outcome[node_id], expected), node_id
    assert len(outcome["reduce"].reduced_ids) == NUM_NODES


def _run_allgather(cluster, plane):
    sim = cluster.sim
    source_ids = [ObjectID.unique(f"fm-ag-{i}") for i in range(NUM_NODES)]
    produced = {i: [(source_ids[i], _value(i + 1))] for i in range(NUM_NODES)}
    _install_reconstructors(cluster, plane, produced)
    gathered = {}

    def scenario():
        producers = [
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id: plane.put(
                        cluster.node(node_id), *produced[node_id][0]
                    ),
                    lambda _result: None,
                ),
                name=f"fm-ag-put-{node_id}",
            )
            for node_id in range(NUM_NODES)
        ]
        yield sim.all_of(producers)
        for node_id in range(NUM_NODES):
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id: plane.allgather(
                        cluster.node(node_id), source_ids
                    ),
                    lambda result, node_id=node_id: gathered.update(
                        {node_id: [v.as_array() for v in result.values]}
                    ),
                ),
                name=f"fm-ag-{node_id}",
            )

    sim.process(scenario(), name="fm-allgather")
    cluster.run(until=SIM_BUDGET)
    assert sorted(gathered) == list(range(NUM_NODES)), "allgather did not terminate"
    for node_id, arrays in gathered.items():
        for index, array in enumerate(arrays):
            assert np.allclose(array, index + 1), (node_id, index)


def _run_reduce_scatter(cluster, plane):
    sim = cluster.sim
    matrix = {
        (i, j): ObjectID.unique(f"fm-rs-{i}-{j}")
        for i in range(NUM_NODES)
        for j in range(NUM_NODES)
    }
    produced = {
        i: [(matrix[(i, j)], _value(10 * i + j)) for j in range(NUM_NODES)]
        for i in range(NUM_NODES)
    }
    _install_reconstructors(cluster, plane, produced)
    target_ids = {j: ObjectID.unique(f"fm-rs-shard-{j}") for j in range(NUM_NODES)}
    shards = {}

    def scenario():
        producers = [
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id: _put_row(node_id),
                    lambda _result: None,
                ),
                name=f"fm-rs-put-{node_id}",
            )
            for node_id in range(NUM_NODES)
        ]
        yield sim.all_of(producers)
        for node_id in range(NUM_NODES):
            column = [matrix[(i, node_id)] for i in range(NUM_NODES)]
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id, column=column: plane.reduce_scatter(
                        cluster.node(node_id), target_ids[node_id], column, ReduceOp.SUM
                    ),
                    lambda result, node_id=node_id: shards.update(
                        {node_id: result.value.as_array()}
                    ),
                ),
                name=f"fm-rs-{node_id}",
            )

    def _put_row(node_id):
        for object_id, value in produced[node_id]:
            yield from plane.put(cluster.node(node_id), object_id, value)

    sim.process(scenario(), name="fm-reduce-scatter")
    cluster.run(until=SIM_BUDGET)
    assert sorted(shards) == list(range(NUM_NODES)), "reduce-scatter did not terminate"
    for j, array in shards.items():
        expected = sum(10 * i + j for i in range(NUM_NODES))
        assert np.allclose(array, expected), j


def _run_alltoall(cluster, plane):
    sim = cluster.sim
    pair = {
        (src, dst): ObjectID.unique(f"fm-a2a-{src}-{dst}")
        for src in range(NUM_NODES)
        for dst in range(NUM_NODES)
        if src != dst
    }

    def sends_of(node_id):
        return [
            (pair[(node_id, dst)], _value(100 * node_id + dst))
            for dst in range(NUM_NODES)
            if dst != node_id
        ]

    produced = {i: sends_of(i) for i in range(NUM_NODES)}
    _install_reconstructors(cluster, plane, produced)
    received = {}

    def scenario():
        for node_id in range(NUM_NODES):
            recv_ids = [
                pair[(src, node_id)] for src in range(NUM_NODES) if src != node_id
            ]
            sim.process(
                _retrying(
                    cluster,
                    node_id,
                    lambda node_id=node_id, recv_ids=recv_ids: plane.alltoall(
                        cluster.node(node_id), sends_of(node_id), recv_ids
                    ),
                    lambda result, node_id=node_id: received.update(
                        {
                            node_id: {
                                oid: v.as_array()
                                for oid, v in zip(result.recv_ids, result.values)
                            }
                        }
                    ),
                ),
                name=f"fm-a2a-{node_id}",
            )
        yield sim.timeout(0)

    sim.process(scenario(), name="fm-alltoall")
    cluster.run(until=SIM_BUDGET)
    assert sorted(received) == list(range(NUM_NODES)), "alltoall did not terminate"
    for dst, values in received.items():
        for src in range(NUM_NODES):
            if src == dst:
                continue
            assert np.allclose(values[pair[(src, dst)]], 100 * src + dst), (src, dst)


_DRIVERS = {
    "broadcast": _run_broadcast,
    "reduce": lambda cluster, plane: _run_reduce(cluster, plane, with_final_gets=False),
    "allreduce": lambda cluster, plane: _run_reduce(cluster, plane, with_final_gets=True),
    "allgather": _run_allgather,
    "reduce_scatter": _run_reduce_scatter,
    "alltoall": _run_alltoall,
}


# ---------------------------------------------------------------------------
# Root class: orchestrator-driven specs + failure-free expectations
# ---------------------------------------------------------------------------


def _spec_and_expected(primitive, tag):
    """The durable spec for one cell plus the per-rank expected payloads."""
    ranks = list(range(NUM_NODES))
    if primitive == "broadcast":
        spec = CollectiveSpec.broadcast(
            tag, 0, ranks, ObjectID.unique(f"{tag}-obj"), _value(7.0)
        )
        return spec, {rank: 7.0 for rank in ranks[1:]}
    if primitive in ("reduce", "allreduce"):
        sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in ranks}
        spec = CollectiveSpec.reduce(
            tag,
            0,
            ranks,
            sources,
            ObjectID.unique(f"{tag}-target"),
            {sources[i]: _value(i + 1) for i in ranks},
            ReduceOp.SUM,
            allreduce=primitive == "allreduce",
        )
        expected_sum = float(sum(range(1, NUM_NODES + 1)))
        holders = ranks if primitive == "allreduce" else [0]
        return spec, {rank: expected_sum for rank in holders}
    if primitive == "allgather":
        sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in ranks}
        spec = CollectiveSpec.allgather(
            tag, ranks, sources, {sources[i]: _value(i + 1) for i in ranks}
        )
        stacked = np.stack([np.full(4, float(i + 1)) for i in ranks])
        return spec, {rank: stacked for rank in ranks}
    if primitive == "reduce_scatter":
        matrix = {
            (i, j): ObjectID.unique(f"{tag}-{i}-{j}") for i in ranks for j in ranks
        }
        targets = {j: ObjectID.unique(f"{tag}-shard{j}") for j in ranks}
        spec = CollectiveSpec.reduce_scatter(
            tag,
            ranks,
            matrix,
            targets,
            {matrix[(i, j)]: _value(10 * i + j) for i in ranks for j in ranks},
        )
        return spec, {
            j: float(sum(10 * i + j for i in ranks)) for j in ranks
        }
    if primitive == "alltoall":
        matrix = {
            (src, dst): ObjectID.unique(f"{tag}-{src}-{dst}")
            for src in ranks
            for dst in ranks
            if src != dst
        }
        spec = CollectiveSpec.alltoall(
            tag,
            ranks,
            matrix,
            {matrix[(s, d)]: _value(100 * s + d) for (s, d) in matrix},
        )
        return spec, {
            dst: np.stack(
                [np.full(4, float(100 * src + dst)) for src in ranks if src != dst]
            )
            for dst in ranks
        }
    raise ValueError(primitive)


def _run_orchestrated(cluster, plane, primitive, tag):
    """Drive one root-class cell through the collective orchestrator."""
    system = TaskSystem(cluster, plane)
    orchestrator = CollectiveOrchestrator(system)
    spec, expected = _spec_and_expected(primitive, tag)
    done = {}

    def driver():
        outcome = yield from orchestrator.invoke(spec)
        done["outcome"] = outcome

    process = cluster.sim.process(driver(), name=f"fm-root-{primitive}")
    cluster.run(until=SIM_BUDGET)
    assert process.triggered and process.ok, (
        f"{primitive} did not terminate under root failure "
        f"(t={cluster.sim.now}, tasks={system.metrics.as_dict()})"
    )
    outcome = done["outcome"]
    for rank, expectation in expected.items():
        value = outcome.results[rank]
        assert value.payload is not None, (primitive, rank)
        assert np.allclose(value.as_array(), expectation), (
            primitive,
            rank,
            value.as_array(),
        )
    # The root's death really was handled by the framework, not by luck:
    # node 0's own share (the soft root share for rooted collectives, the
    # strict rank share otherwise) was re-executed — either because the
    # kill interrupted it or because its finished output died with node 0
    # and lineage reconstruction re-ran it.
    victim_ref = outcome.refs.get(("root", 0)) or outcome.refs[("share", 0)]
    victim = system.tasks[victim_ref.producer_task_id]
    assert victim.attempts >= 2, (
        f"node-0 share of {primitive} was never re-executed "
        f"(attempts={victim.attempts})"
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("failure_class", FAILURE_CLASSES)
@pytest.mark.parametrize("primitive", PRIMITIVES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_collective_completes_and_is_correct_under_poisson_failures(
    system, primitive, failure_class, seed
):
    cluster, plane = _build(system, seed, failure_class)
    if failure_class == "root":
        _run_orchestrated(cluster, plane, primitive, f"fm-{system}-{primitive}-s{seed}")
    else:
        _DRIVERS[primitive](cluster, plane)


@pytest.mark.parametrize("failure_class", FAILURE_CLASSES)
@pytest.mark.parametrize("primitive", PRIMITIVES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_collective_fault_matrix_on_two_rack_topology(system, primitive, failure_class):
    """The full 2-plane x 6-collective x {peer, root} matrix on a 2-rack fabric.

    One seed, an oversubscribed two-rack topology: the topology-aware paths
    (locality-preferring directory with same-rack parking, hierarchical
    reduce, tier-link reservations) must survive the exact failure classes
    the flat matrix covers — cancellation of cross-rack reservations on peer
    death, rack-tree repair, and orchestrated root re-execution.
    """
    from repro.net.topology import Topology

    topology = Topology.racks(2, NUM_NODES // 2, oversubscription=2.0)
    cluster, plane = _build(system, SEEDS[0], failure_class, topology=topology)
    if failure_class == "root":
        _run_orchestrated(
            cluster, plane, primitive, f"fm2r-{system}-{primitive}-s{SEEDS[0]}"
        )
    else:
        _DRIVERS[primitive](cluster, plane)
