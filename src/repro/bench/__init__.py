"""Benchmark harness: scenario drivers, experiment registry, and table printing.

``repro.bench.scenarios`` contains the measurement drivers (one simulated
cluster per measurement, one number out), ``repro.bench.experiments``
assembles them into the paper's tables and figures, and
``repro.bench.reporting`` prints the same rows/series the paper reports.
"""

from repro.bench.reporting import format_series, format_table
from repro.bench.scenarios import (
    SUPPORTED_SYSTEMS,
    measure_allgather,
    measure_allreduce,
    measure_alltoall,
    measure_broadcast,
    measure_gather,
    measure_point_to_point_rtt,
    measure_reduce,
)

__all__ = [
    "SUPPORTED_SYSTEMS",
    "format_series",
    "format_table",
    "measure_allgather",
    "measure_allreduce",
    "measure_alltoall",
    "measure_broadcast",
    "measure_gather",
    "measure_point_to_point_rtt",
    "measure_reduce",
]
