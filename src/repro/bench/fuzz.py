"""Differential fuzzing of the coalescing fast paths.

The coalescing machinery (`repro.net.coalesce`, `repro.net.convoy`) promises
*bit-for-bit* equivalence: a run with the fast paths enabled must produce
exactly the completion times, per-link byte counters, control-message counts
and ObjectID allocation order of a run with every fast path disabled.  The
unit suites pin specific shapes; this module pins the combinatorial space
around them — seeded random scenarios mixing collectives, cluster sizes,
topologies, arrival jitter and fault schedules, each executed twice
(fast paths on / off) and compared by digest.

``tests/test_differential.py`` runs a fixed band of seeds in tier-1;

    PYTHONPATH=src python -m repro.bench.fuzz --seeds 200

runs a deep sweep.  Any mismatch prints the spec needed to reproduce it —
and, since the flight recorder landed, the harness re-runs a mismatching
seed with recording enabled on both settings and bisects to the **first
diverging semantic event** (time, kind, resource, detail) instead of
leaving a bare pair of hashes.  ``--flight`` runs the whole band with
recording on, checking both that digests still match (recording is
observational) and that the on/off semantic records are identical.
``--hostprof`` additionally enables the host-clock self-profiler and the
event-locality analyzer on every cluster and compares each profiled digest
against a bare (unprofiled) run of the same spec: profiling must change no
simulated result, byte for byte.
"""

from __future__ import annotations

import argparse
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from repro.bench.digest import _digest, _flow_fingerprint, _object_id_state, _reset_object_ids
from repro.net.config import NetworkConfig
from repro.net.failure import poisson_failures
from repro.net.topology import Topology

MB = 1024 * 1024

#: the default tier-1 band (see tests/test_differential.py).
TIER1_SEEDS = tuple(range(20))


@dataclass
class ScenarioSpec:
    """One reproducible differential scenario."""

    seed: int
    collective: str
    system: str
    num_nodes: int
    nbytes: int
    arrival_delays: Optional[list[float]] = None
    racks: int = 1
    oversubscription: float = 1.0
    topology_aware: bool = False
    bandwidth: float = 1.25e9
    failure_rate: float = 0.0
    failure_horizon: float = 0.0
    failure_seed: int = 0
    extra: dict = field(default_factory=dict)

    def describe(self) -> str:
        bits = [
            f"seed={self.seed}",
            f"{self.system}/{self.collective}",
            f"n={self.num_nodes}",
            f"size={self.nbytes // MB}MB",
        ]
        if self.racks > 1:
            bits.append(
                f"racks={self.racks}x{self.num_nodes // self.racks}"
                f"@{self.oversubscription}{'+aware' if self.topology_aware else ''}"
            )
        if self.arrival_delays:
            bits.append(f"jitter<= {max(self.arrival_delays):.4f}s")
        if self.failure_rate > 0:
            bits.append(
                f"faults(rate={self.failure_rate}, horizon={self.failure_horizon},"
                f" fseed={self.failure_seed})"
            )
        return " ".join(bits)


def generate_spec(seed: int) -> ScenarioSpec:
    """Deterministically derive one scenario from ``seed``."""
    rng = random.Random(0x5EED ^ seed)
    collective = rng.choice(
        [
            "broadcast",
            "reduce",
            "allreduce",
            "allreduce",
            "allgather",
            "allgather",
            "alltoall",
            "alltoall",
            "gather",
        ]
    )
    # Mostly the object plane (that is where the fast paths live), sometimes
    # the static baselines (they register streams on the same links).
    if collective in ("allreduce",) and rng.random() < 0.2:
        system = rng.choice(["gloo", "openmpi"])
    elif collective in ("allgather", "broadcast") and rng.random() < 0.15:
        system = "openmpi"
    else:
        system = "hoplite"

    num_nodes = rng.choice([4, 6, 8, 8, 12])
    # 2-5 pipelining blocks: small enough to fuzz densely, large enough that
    # every multi-block fast path (coalesced runs, convoys) can engage.
    nbytes = rng.choice([6, 8, 9, 12, 17, 20]) * MB

    spec = ScenarioSpec(
        seed=seed,
        collective=collective,
        system=system,
        num_nodes=num_nodes,
        nbytes=nbytes,
    )

    # Arrival jitter for the collectives that take it (spread of a few block
    # serialization times: enough to shuffle admission order).
    if collective in ("broadcast", "reduce", "allreduce") and rng.random() < 0.6:
        count = num_nodes - 1 if (collective == "broadcast" and system == "hoplite") else num_nodes
        scale = rng.choice([0.002, 0.01, 0.05])
        spec.arrival_delays = [rng.random() * scale for _ in range(count)]

    # Hierarchical fabric with oversubscribed tier links.  Three racks give
    # cross-rack flows to *distinct* destination racks, whose only shared
    # contended link is the source rack's uplink — the tier-link convoy shape.
    if rng.random() < 0.35:
        fits = [r for r in (2, 3) if num_nodes % r == 0]
        spec.racks = rng.choice(fits)
        spec.oversubscription = rng.choice([2.0, 4.0])
        spec.topology_aware = rng.random() < 0.5

    # Fault schedules ride the collectives that support injected failures.
    if collective in ("allgather", "alltoall") and system == "hoplite" and rng.random() < 0.35:
        spec.bandwidth = 1.25e8  # slow the run down so failures land mid-flight
        spec.failure_rate = rng.choice([2.0, 4.0])
        spec.failure_horizon = 0.6
        spec.failure_seed = rng.randrange(1 << 16)

    return spec


def run_spec(
    spec: ScenarioSpec, fast_paths: bool, latency_out: Optional[dict] = None
) -> str:
    """Run one scenario with the fast paths forced on or off; return its digest.

    ``latency_out`` (a dict) receives the measured completion latency under
    the key ``"latency"`` — the control-plane band uses it to place kills
    mid-collective without re-deriving scenario durations.
    """
    from repro.bench import scenarios as sc
    from repro.core.options import HopliteOptions
    from repro.net.fastpath import fastpath

    network_kwargs: dict = {}
    if spec.bandwidth != 1.25e9:
        network_kwargs["bandwidth"] = spec.bandwidth
    if spec.racks > 1:
        network_kwargs["topology"] = Topology.racks(
            spec.racks, spec.num_nodes // spec.racks, oversubscription=spec.oversubscription
        )
    network = NetworkConfig(**network_kwargs) if network_kwargs else None
    options = HopliteOptions(topology_aware=True) if spec.topology_aware else None

    kwargs: dict = {"network": network, "flow_stats": {}}
    if options is not None and spec.collective != "alltoall":
        kwargs["options"] = options
    if spec.arrival_delays is not None:
        kwargs["arrival_delays"] = list(spec.arrival_delays)
    if spec.failure_rate > 0:
        kwargs["failures"] = poisson_failures(
            node_ids=list(range(1, spec.num_nodes)),
            rate_per_second=spec.failure_rate,
            horizon=spec.failure_horizon,
            downtime=0.2,
            seed=spec.failure_seed,
        )

    measure = getattr(sc, f"measure_{spec.collective}")
    _reset_object_ids()
    with fastpath(fast_paths):
        latency = measure(spec.system, spec.num_nodes, spec.nbytes, **kwargs)
    if latency_out is not None:
        latency_out["latency"] = latency
    stats = kwargs["flow_stats"]
    parts: list = [(spec.describe(), repr(latency))]
    parts.extend(_flow_fingerprint(stats))
    parts.append(_object_id_state())
    return _digest(parts)


def differential(seed: int) -> tuple[ScenarioSpec, str, str]:
    """Digests of one seeded scenario with fast paths on vs. off."""
    spec = generate_spec(seed)
    on = run_spec(spec, fast_paths=True)
    off = run_spec(spec, fast_paths=False)
    return spec, on, off


@contextmanager
def _flight_recorders():
    """Install flight recorders on every cluster a scenario builds.

    Scenario code constructs its clusters deep inside ``measure_*``, so the
    harness reaches them through the module-level
    :data:`repro.net.cluster.ON_CREATE` hook; the collected recorders stay
    readable after the run.
    """
    import repro.net.cluster as cluster_mod

    recorders: list = []
    previous = cluster_mod.ON_CREATE

    def _hook(cluster) -> None:
        if previous is not None:
            previous(cluster)
        cluster.enable_flight_recorder()
        recorders.append(cluster.flight)

    cluster_mod.ON_CREATE = _hook
    try:
        yield recorders
    finally:
        cluster_mod.ON_CREATE = previous


@contextmanager
def _profilers():
    """Enable hostprof + locality on every cluster a scenario builds.

    Same ON_CREATE mechanism as :func:`_flight_recorders`; composing both
    (``--flight --hostprof``) exercises the chained ``on_pop`` path — the
    locality analyzer takes the hook first and the flight recorder chains
    after it.
    """
    import repro.net.cluster as cluster_mod

    previous = cluster_mod.ON_CREATE

    def _hook(cluster) -> None:
        if previous is not None:
            previous(cluster)
        cluster.enable_host_profiler()
        cluster.enable_locality_analyzer()

    cluster_mod.ON_CREATE = _hook
    try:
        yield
    finally:
        cluster_mod.ON_CREATE = previous


@contextmanager
def _control_plane_kills(events):
    """Install a control-plane kill schedule on every runtime a scenario builds.

    The directory lives inside the :class:`~repro.core.runtime.HopliteRuntime`
    a ``measure_*`` constructs, so the harness reaches it through the
    module-level :data:`repro.core.runtime.ON_CREATE` hook — the same idiom
    :func:`_flight_recorders` uses for clusters.
    """
    import repro.core.runtime as runtime_mod

    from repro.net.failure import schedule_control_plane

    previous = runtime_mod.ON_CREATE

    def _hook(runtime) -> None:
        if previous is not None:
            previous(runtime)
        schedule_control_plane(runtime.sim, events, directory=runtime.directory)

    runtime_mod.ON_CREATE = _hook
    try:
        yield
    finally:
        runtime_mod.ON_CREATE = previous


def control_plane_differential(seed: int):
    """One seeded scenario under directory-shard kills, fast paths on vs off.

    The ``control_plane`` fault class: a baseline run measures the scenario's
    latency, a seeded Poisson schedule then kills directory shards
    mid-collective, and the killed run must still digest-identical between
    fast-paths-on and fast-paths-off — shard death, RPC parking, and WAL
    replay are all deterministic machinery, so they must not reopen the
    equivalence the plain band pins.

    Returns ``(spec, events, on_digest, off_digest)``.
    """
    spec = generate_spec(seed)
    if spec.system != "hoplite":
        # Only the object plane has a directory to kill; the static
        # baselines are exercised by the plain band.
        spec.system = "hoplite"
        if spec.collective == "broadcast" and spec.arrival_delays is not None:
            spec.arrival_delays = spec.arrival_delays[: spec.num_nodes - 1]
    from repro.net.failure import poisson_control_plane_failures

    latency: dict = {}
    run_spec(spec, fast_paths=True, latency_out=latency)
    horizon = max(latency["latency"] * 0.8, 1e-3)
    events = poisson_control_plane_failures(
        num_shards=4,
        rate_per_second=2.0 / horizon,
        horizon=horizon,
        seed=0xC7A1 ^ seed,
        include_lineage=False,
    )
    with _control_plane_kills(events):
        on = run_spec(spec, fast_paths=True)
        off = run_spec(spec, fast_paths=False)
    return spec, events, on, off


def run_spec_recorded(spec: ScenarioSpec, fast_paths: bool) -> tuple[str, list]:
    """Like :func:`run_spec`, with flight recording on every cluster.

    Returns ``(digest, records)`` where ``records`` is the concatenation of
    every recorder's ring (one scenario can build several clusters).
    """
    with _flight_recorders() as recorders:
        digest = run_spec(spec, fast_paths)
    records = [record for recorder in recorders for record in recorder.records]
    return digest, records


def bisect_divergence(spec: ScenarioSpec):
    """Re-run one scenario recorded on both settings; first diverging event.

    Returns a :class:`repro.obs.flight.Divergence` (or ``None`` when the
    semantic timelines are identical — a digest mismatch without one means
    the divergence is outside the transfer timeline, e.g. ObjectID order).
    """
    from repro.obs.flight import first_divergence

    _, on_records = run_spec_recorded(spec, fast_paths=True)
    _, off_records = run_spec_recorded(spec, fast_paths=False)
    return first_divergence(on_records, off_records)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=len(TIER1_SEEDS), help="number of seeds")
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument(
        "--flight",
        action="store_true",
        help="record every run; also compare the semantic transfer timelines",
    )
    parser.add_argument(
        "--hostprof",
        action="store_true",
        help="profile every run (hostprof + locality); also compare each "
        "profiled digest against a bare run of the same spec",
    )
    parser.add_argument(
        "--control-plane",
        action="store_true",
        help="inject seeded directory-shard kills mid-collective and compare "
        "killed digests fast-paths-on vs off (the control_plane fault class)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    from contextlib import nullcontext

    from repro.obs.flight import first_divergence

    if args.control_plane:
        failures = 0
        killed = 0
        for seed in range(args.start, args.start + args.seeds):
            spec, events, on, off = control_plane_differential(seed)
            killed += len(events)
            ok = on == off
            if not ok:
                failures += 1
            if args.verbose or not ok:
                print(
                    f"{'OK  ' if ok else 'FAIL'} {spec.describe()} "
                    f"kills={len(events)}"
                )
        print(
            f"{args.seeds - failures}/{args.seeds} seeds identical "
            f"({killed} control-plane kills injected)"
        )
        return 1 if failures else 0

    failures = 0
    for seed in range(args.start, args.start + args.seeds):
        spec = generate_spec(seed)
        divergence = None
        bare = run_spec(spec, fast_paths=True) if args.hostprof else None
        with _profilers() if args.hostprof else nullcontext():
            if args.flight:
                on, on_records = run_spec_recorded(spec, fast_paths=True)
                off, off_records = run_spec_recorded(spec, fast_paths=False)
                divergence = first_divergence(on_records, off_records)
                ok = on == off and divergence is None
            else:
                on = run_spec(spec, fast_paths=True)
                off = run_spec(spec, fast_paths=False)
                ok = on == off
                if not ok:
                    divergence = bisect_divergence(spec)
        if bare is not None and on != bare:
            ok = False
            print(f"FAIL {spec.describe()}: profiling changed the digest")
        if not ok:
            failures += 1
        if args.verbose or not ok:
            print(f"{'OK  ' if ok else 'FAIL'} {spec.describe()}")
        if not ok and divergence is not None:
            print(divergence.describe())
    print(f"{args.seeds - failures}/{args.seeds} seeds identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
