"""Small helpers to print benchmark results as the paper's tables and series."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_value(value: float) -> str:
    """Render a latency/throughput value compactly."""
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.3f}"
    if abs(value) >= 1e-3:
        return f"{value * 1e3:.3f}m"
    return f"{value * 1e6:.1f}u"


def format_table(
    title: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
) -> str:
    """Render rows as a fixed-width text table."""
    widths = {column: len(column) for column in columns}
    rendered_rows = []
    for row in rows:
        rendered = {}
        for column in columns:
            value = row.get(column, "")
            text = format_value(value) if isinstance(value, float) else str(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)

    def line(values: Mapping[str, str]) -> str:
        return "  ".join(values[column].rjust(widths[column]) for column in columns)

    header = line({column: column for column in columns})
    separator = "-" * len(header)
    body = [line(rendered) for rendered in rendered_rows]
    return "\n".join([title, separator, header, separator, *body, separator])


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render one figure panel: one row per x value, one column per system."""
    rows = []
    for index, x_value in enumerate(x_values):
        row: dict[str, object] = {x_label: x_value}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else float("nan")
        rows.append(row)
    return format_table(title, rows, [x_label, *series.keys()])
