"""Multi-tenant fleet scenario: dozens of concurrent jobs on one fabric.

This is the observability plane's proving ground.  One oversubscribed
rack/zone fabric hosts a fleet of independent jobs — synchronous training,
model serving, MoE alltoall routing, and RL policy loops, one
:class:`~repro.core.runtime.HopliteRuntime` each — arriving open-loop with
Poisson (exponential inter-arrival) timing from a seeded RNG, so the whole
run is deterministic per seed.  Jobs belong to tenants; a tenant maps to an
admission :class:`~repro.net.flowsched.FlowClass` for its driver-level
fetch traffic (``prod`` rides the reduce-partial class ahead of ``batch``
bulk), which is how a real deployment would price-tier a shared fabric.

Every collective the drivers issue is recorded into the cluster's
observability plane as one ``fleet_op_latency_seconds`` observation labeled
``(tenant, op, size)`` — the cells the SLO evaluator scores — plus a
``fleet_job_ops`` counter per job.  Recording is optional: with
``observe=False`` the same fleet runs with no plane installed, and the
differential test in ``tests/test_fleet.py`` pins that the simulated
behaviour (the :meth:`FleetResult.digest`) is byte-identical either way.

The scenario also demonstrates the windowed series: congestion on the
shared rack uplinks (per-window ``link_bytes``) correlates with the
latency the fleet experiences in the same windows —
:func:`congestion_latency_correlation` computes that Pearson coefficient
from the recorded series alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Generator, Optional

from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass
from repro.net.topology import Topology
from repro.obs.critpath import aggregate_blames, op_blames
from repro.obs.export import SLOTarget, evaluate_slos
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

KB = 1024
MB = 1024 * 1024

#: the op kinds a fleet job can issue (the ``op`` label values).
FLEET_OPS = ("allreduce", "broadcast", "gather", "alltoall")

#: job kinds, cycled over the fleet in arrival order.
JOB_KINDS = ("training", "serving", "moe", "rl")


def size_label(nbytes: int) -> str:
    """Human size bucket used as the ``size`` label (``256KB``, ``4MB``)."""
    if nbytes % MB == 0:
        return f"{nbytes // MB}MB"
    if nbytes % KB == 0:
        return f"{nbytes // KB}KB"
    return f"{nbytes}B"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name and the admission class its fetch traffic rides."""

    name: str
    flow_class: FlowClass


#: the default two-tier tenancy: ``prod`` traffic is admitted ahead of
#: ``batch`` on every contended link (FlowClass order is admission order).
TENANTS = (
    TenantSpec("prod", FlowClass.REDUCE_PARTIAL),
    TenantSpec("batch", FlowClass.BULK),
)


@dataclass(frozen=True)
class FleetJobSpec:
    """One job of the fleet, fully determined before the simulation starts."""

    job_id: int
    tenant: TenantSpec
    kind: str
    nodes: tuple[int, ...]
    payload_bytes: int
    rounds: int
    arrival: float

    @property
    def name(self) -> str:
        return f"j{self.job_id}-{self.tenant.name}-{self.kind}"


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    duration: float
    specs: list[FleetJobSpec]
    #: job name -> simulated completion time.
    completions: dict[str, float]
    #: SLO verdicts (empty when the run was unobserved or had no targets).
    slo_rows: list = field(default_factory=list)
    #: Pearson r between windowed rack-uplink bytes and windowed mean op
    #: latency; ``None`` without a plane or with degenerate series.
    congestion_latency_r: Optional[float] = None
    #: per-op critical-path attributions (with ``trace_transfers``).
    op_blames: list = field(default_factory=list)
    #: the (tenant, op) blame cells rendered next to the SLO table.
    blame_rows: list = field(default_factory=list)
    obs: Optional[object] = None
    cluster: Optional[Cluster] = None

    @property
    def peak_concurrency(self) -> int:
        """Most jobs simultaneously in flight (arrived, not yet complete)."""
        events = []
        for spec in self.specs:
            done = self.completions.get(spec.name)
            if done is None:
                continue
            events.append((spec.arrival, 1))
            events.append((done, -1))
        peak = live = 0
        for _, delta in sorted(events):
            live += delta
            peak = max(peak, live)
        return peak

    def digest(self) -> tuple:
        """The simulated behaviour, as comparable data: who finished when."""
        return (
            round(self.duration, 12),
            tuple(sorted((name, round(t, 12)) for name, t in self.completions.items())),
        )


#: latency targets for the default (non-quick) fleet, in simulated seconds.
#: Calibrated against the seed-0 run on the 4x8 fabric with ~1.5-2x headroom
#: over the slower tenant, so the committed seed passes and a scheduling or
#: admission regression that doubles tail latency turns rows to FAIL.
DEFAULT_SLOS = [
    SLOTarget("allreduce", "4MB", p50=0.060, p99=0.130),
    SLOTarget("broadcast", "8MB", p50=0.055, p99=0.110),
    SLOTarget("gather", "256KB", p50=0.025, p99=0.080),
    SLOTarget("alltoall", "2MB", p50=0.055, p99=0.080),
]

#: targets for the shrunken --quick fleet (CI smoke).
QUICK_SLOS = [
    SLOTarget("allreduce", "512KB", p50=0.008, p99=0.013),
    SLOTarget("broadcast", "1MB", p50=0.007, p99=0.010),
    SLOTarget("gather", "32KB", p50=0.002, p99=0.003),
    SLOTarget("alltoall", "256KB", p50=0.004, p99=0.007),
]


def build_fleet(
    num_jobs: int,
    num_nodes: int,
    seed: int = 0,
    quick: bool = False,
    nodes_per_job: int = 4,
    arrival_mean: float = 0.001,
) -> list[FleetJobSpec]:
    """Draw a deterministic fleet: placements, sizes, and Poisson arrivals.

    One seeded :class:`random.Random` drives everything, so the same
    ``(num_jobs, num_nodes, seed, quick)`` always yields the same fleet.
    Placements are sampled across the whole fabric (uncorrelated with rack
    boundaries), which is what pushes traffic onto the shared tier links.
    """
    rng = Random(seed)
    scale = 1 if quick else 8
    sizes = {
        "training": 512 * KB * scale,  # gradient per worker
        "serving": MB * scale,  # model artifact
        "moe": 256 * KB * scale,  # expert shard per pair
        "rl": MB * scale,  # policy broadcast
    }
    specs: list[FleetJobSpec] = []
    clock = 0.0
    for job_id in range(num_jobs):
        clock += rng.expovariate(1.0 / arrival_mean)
        # Kinds advance every two jobs and tenants alternate, so every
        # (tenant, kind) pair occurs — a shared cycle length would pin each
        # kind to one tenant and leave half the SLO cells empty.
        kind = JOB_KINDS[(job_id // 2) % len(JOB_KINDS)]
        specs.append(
            FleetJobSpec(
                job_id=job_id,
                tenant=TENANTS[job_id % len(TENANTS)],
                kind=kind,
                nodes=tuple(rng.sample(range(num_nodes), nodes_per_job)),
                payload_bytes=sizes[kind],
                rounds=2 if quick else 3,
                arrival=clock,
            )
        )
    return specs


class _FleetRecorder:
    """The fleet's metric families on one observability plane (or a no-op)."""

    def __init__(self, obs):
        self.obs = obs
        self.tracer = obs.tracer if obs is not None and obs.trace_transfers else None
        if obs is None:
            self.latency = None
            self.ops = None
            return
        self.latency = obs.registry.histogram(
            "fleet_op_latency_seconds",
            "driver-observed collective latency",
            ("tenant", "op", "size"),
        )
        self.ops = obs.registry.counter(
            "fleet_job_ops", "collectives issued per job", ("tenant", "job", "op")
        )

    def begin_op(self, spec: FleetJobSpec, op: str):
        """An ``op:*`` span opening one measured window (None when untraced).

        The span carries the SLO cell identity (tenant, op) so the
        critical-path profiler can aggregate blames into the same cells the
        SLO evaluator scores.
        """
        if self.tracer is None:
            return None
        return self.tracer.start_span(
            f"op:{op}",
            trace_id=f"fleet-{spec.name}",
            tenant=spec.tenant.name,
            op=op,
            job=spec.name,
        )

    def bind(self, span, *object_ids) -> None:
        """Attribute future transfers of these objects to ``span``."""
        if span is None:
            return
        for object_id in object_ids:
            self.tracer.bind_object(object_id, span)

    def record(
        self, spec: FleetJobSpec, op: str, nbytes: int, elapsed: float, span=None
    ) -> None:
        if span is not None:
            span.finish("ok")
        if self.latency is None:
            return
        tenant = spec.tenant.name
        self.latency.labels(tenant=tenant, op=op, size=size_label(nbytes)).observe(
            elapsed
        )
        self.ops.labels(tenant=tenant, job=spec.name, op=op).inc()


def _tenant_get(runtime, spec: FleetJobSpec, node_id: int, object_id) -> Generator:
    """A driver-level Get riding the tenant's admission class.

    The flow id matches the transport's ``get:{object}->n{node}`` shape, so
    the tracer's flow-to-object linkage keeps working for tenant traffic.
    """
    flow = Flow(f"get:{object_id}->n{node_id}", spec.tenant.flow_class)
    yield from runtime.client(node_id).get(object_id, flow=flow)


def _put(runtime, node_id: int, object_id, nbytes: int) -> Generator:
    yield from runtime.client(node_id).put(object_id, ObjectValue.of_size(nbytes))


def _training_job(sim, runtime, spec, recorder) -> Generator:
    """Per round: every worker puts a gradient, reduce, everyone fetches."""
    nodes = spec.nodes
    for r in range(spec.rounds):
        start = sim.now
        span = recorder.begin_op(spec, "allreduce")
        grad_ids = [
            ObjectID.unique(f"fleet-{spec.name}-grad{r}-n{nid}") for nid in nodes
        ]
        recorder.bind(span, *grad_ids)
        yield sim.all_of(
            [
                sim.process(_put(runtime, nid, gid, spec.payload_bytes))
                for nid, gid in zip(nodes, grad_ids)
            ]
        )
        target = ObjectID.unique(f"fleet-{spec.name}-update{r}")
        recorder.bind(span, target)
        yield from runtime.client(nodes[0]).reduce(target, grad_ids, ReduceOp.SUM)
        yield sim.all_of(
            [
                sim.process(_tenant_get(runtime, spec, nid, target))
                for nid in nodes
            ]
        )
        recorder.record(spec, "allreduce", spec.payload_bytes, sim.now - start, span)


def _serving_job(sim, runtime, spec, recorder) -> Generator:
    """Per round: broadcast a model version out, gather responses back."""
    driver, replicas = spec.nodes[0], spec.nodes[1:]
    response_bytes = max(KB, spec.payload_bytes // 32)
    for r in range(spec.rounds):
        start = sim.now
        span = recorder.begin_op(spec, "broadcast")
        model = ObjectID.unique(f"fleet-{spec.name}-model{r}")
        recorder.bind(span, model)
        yield from _put(runtime, driver, model, spec.payload_bytes)
        yield sim.all_of(
            [sim.process(_tenant_get(runtime, spec, nid, model)) for nid in replicas]
        )
        recorder.record(spec, "broadcast", spec.payload_bytes, sim.now - start, span)

        start = sim.now
        span = recorder.begin_op(spec, "gather")
        responses = [
            ObjectID.unique(f"fleet-{spec.name}-resp{r}-n{nid}") for nid in replicas
        ]
        recorder.bind(span, *responses)
        yield sim.all_of(
            [
                sim.process(_put(runtime, nid, rid, response_bytes))
                for nid, rid in zip(replicas, responses)
            ]
        )
        yield sim.all_of(
            [sim.process(_tenant_get(runtime, spec, driver, rid)) for rid in responses]
        )
        recorder.record(spec, "gather", response_bytes, sim.now - start, span)


def _moe_job(sim, runtime, spec, recorder) -> Generator:
    """Per round: a personalized alltoall among the job's experts."""
    nodes = spec.nodes
    for r in range(spec.rounds):
        start = sim.now
        span = recorder.begin_op(spec, "alltoall")
        pair = {
            (src, dst): ObjectID.unique(f"fleet-{spec.name}-a2a{r}-{src}-{dst}")
            for src in nodes
            for dst in nodes
            if src != dst
        }
        recorder.bind(span, *pair.values())

        def participant(node_id: int) -> Generator:
            sends = [
                (pair[(node_id, dst)], ObjectValue.of_size(spec.payload_bytes))
                for dst in nodes
                if dst != node_id
            ]
            recv_ids = [pair[(src, node_id)] for src in nodes if src != node_id]
            yield from runtime.client(node_id).alltoall(sends, recv_ids)

        yield sim.all_of([sim.process(participant(nid)) for nid in nodes])
        recorder.record(spec, "alltoall", spec.payload_bytes, sim.now - start, span)


def _rl_job(sim, runtime, spec, recorder) -> Generator:
    """Per round: broadcast the policy, then gather rollouts at the driver."""
    driver, workers = spec.nodes[0], spec.nodes[1:]
    rollout_bytes = max(KB, spec.payload_bytes // 4)
    for r in range(spec.rounds):
        start = sim.now
        span = recorder.begin_op(spec, "broadcast")
        policy = ObjectID.unique(f"fleet-{spec.name}-policy{r}")
        recorder.bind(span, policy)
        yield from _put(runtime, driver, policy, spec.payload_bytes)
        yield sim.all_of(
            [sim.process(_tenant_get(runtime, spec, nid, policy)) for nid in workers]
        )
        recorder.record(spec, "broadcast", spec.payload_bytes, sim.now - start, span)

        start = sim.now
        span = recorder.begin_op(spec, "gather")
        rollouts = [
            ObjectID.unique(f"fleet-{spec.name}-roll{r}-n{nid}") for nid in workers
        ]
        recorder.bind(span, *rollouts)
        yield sim.all_of(
            [
                sim.process(_put(runtime, nid, rid, rollout_bytes))
                for nid, rid in zip(workers, rollouts)
            ]
        )
        yield sim.all_of(
            [sim.process(_tenant_get(runtime, spec, driver, rid)) for rid in rollouts]
        )
        recorder.record(spec, "gather", rollout_bytes, sim.now - start, span)


_JOB_BODIES = {
    "training": _training_job,
    "serving": _serving_job,
    "moe": _moe_job,
    "rl": _rl_job,
}


def congestion_latency_correlation(
    registry,
    tiers: tuple[str, ...] = ("rack_up", "rack_down", "zone_up", "zone_down"),
    metric: str = "fleet_op_latency_seconds",
) -> Optional[float]:
    """Pearson r between windowed tier-link bytes and windowed op latency.

    Both series come straight out of the registry: per-window ``link_bytes``
    increments summed over the shared tier links, and the per-window mean of
    the fleet latency histogram.  Windows with no completed op contribute
    nothing (there is no latency sample to correlate).  Returns ``None``
    when fewer than two windows overlap or a series is constant.
    """
    link_bytes = registry.families.get("link_bytes")
    latency = registry.families.get(metric)
    if link_bytes is None or latency is None:
        return None
    window = registry.window
    tier_idx = link_bytes.label_names.index("tier")

    congestion: dict[int, float] = {}
    for child in link_bytes.children.values():
        if child.label_values[tier_idx] not in tiers:
            continue
        for t, total in child.series():
            bucket = round(t / window)
            congestion[bucket] = congestion.get(bucket, 0.0) + total

    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for child in latency.children.values():
        for t, value in child.series():
            bucket = int(t / window)
            sums[bucket] = sums.get(bucket, 0.0) + value
            counts[bucket] = counts.get(bucket, 0) + 1
    if not counts:
        return None

    xs = []
    ys = []
    for bucket in sorted(counts):
        xs.append(congestion.get(bucket, 0.0))
        ys.append(sums[bucket] / counts[bucket])
    n = len(xs)
    if n < 2:
        return None
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return None
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return cov / (var_x * var_y) ** 0.5


def run_fleet(
    num_jobs: int = 24,
    num_racks: int = 4,
    nodes_per_rack: int = 8,
    oversubscription: float = 4.0,
    seed: int = 0,
    quick: bool = False,
    observe: bool = True,
    trace_transfers: bool = False,
    window: Optional[float] = None,
    slos: Optional[list[SLOTarget]] = None,
) -> FleetResult:
    """Run the multi-tenant fleet and (optionally) observe it.

    The fabric is ``num_racks`` racks of ``nodes_per_rack`` NICs behind
    ``oversubscription``:1 ToR uplinks, racks split over two zones.  Every
    job gets its own Hoplite runtime (its own directory and stores — the
    tenants share nothing but the fabric).  With ``observe=False`` the run
    is identical except that no plane is installed; with it, the result
    carries SLO verdicts and the congestion/latency correlation.
    """
    if window is None:
        # ~10-25 buckets over the run either way (quick fleets are shorter).
        window = 0.005 if quick else 0.02
    num_nodes = num_racks * nodes_per_rack
    half = num_racks // 2
    topology = Topology.racks(
        num_racks,
        nodes_per_rack,
        oversubscription=oversubscription,
        zones=tuple(0 if r < half else 1 for r in range(num_racks)),
        rack_latency=5.0e-5,
        zone_latency=1.0e-4,
    )
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig(topology=topology))
    obs = (
        cluster.enable_observability(window=window, trace_transfers=trace_transfers)
        if observe
        else None
    )
    recorder = _FleetRecorder(obs)
    specs = build_fleet(num_jobs, num_nodes, seed=seed, quick=quick)

    sim = cluster.sim
    completions: dict[str, float] = {}
    runtimes = [
        HopliteRuntime(
            cluster, options=HopliteOptions(source_selection_seed=spec.job_id)
        )
        for spec in specs
    ]

    def job(spec: FleetJobSpec, runtime: HopliteRuntime) -> Generator:
        yield sim.timeout(spec.arrival)
        yield from _JOB_BODIES[spec.kind](sim, runtime, spec, recorder)
        completions[spec.name] = sim.now

    for spec, runtime in zip(specs, runtimes):
        sim.process(job(spec, runtime), name=f"fleet-{spec.name}")
    cluster.run()

    result = FleetResult(
        duration=sim.now,
        specs=specs,
        completions=completions,
        obs=obs,
        cluster=cluster,
    )
    if obs is not None:
        targets = slos if slos is not None else (QUICK_SLOS if quick else DEFAULT_SLOS)
        result.slo_rows = evaluate_slos(obs.registry, targets)
        result.congestion_latency_r = congestion_latency_correlation(obs.registry)
        if trace_transfers:
            result.op_blames = op_blames(obs)
            result.blame_rows = aggregate_blames(result.op_blames)
    return result
