"""Simulator-throughput basket: wall-clock and events/sec on fixed scenarios.

The simulated results of every scenario here are pinned elsewhere (bound
assertions in the benchmarks, golden digests in :mod:`repro.bench.digest`);
this module measures how fast the *simulator itself* chews through them.
Metrics per scenario:

* ``wall_s`` — host seconds for the run (build + simulate), best of
  ``repeats`` (the numbers are wall-clock and this container's CPU is
  noisy);
* ``events`` / ``events_per_s`` — simulator events processed, and the
  throughput number the CI regression gate watches.

Basket groups, chosen to separate the two kernel regimes:

* ``fig7_64_pipeline`` — 64-node figure-7 cells dominated by uncontended
  block pipelines (broadcast chains, degree-1 reduce chains at 1 GB).
  These are the cells the coalesced-transfer fast path collapses to O(1)
  events per hop: the PR's >= 5x wall-clock acceptance target is measured
  on this group.
* ``fig7_64_matching`` — 64-node cells dominated by *contended* admission
  (gather fan-in, allreduce phase overlap, allgather/alltoall many-to-many,
  static baselines).  Under the bit-for-bit constraint every per-block
  grant decision here is real information — two flows interleaving on one
  link resolve order through the event queue — so these cells improve only
  by the incremental-matching constant factors (~1.2-1.5x), not by
  coalescing.  Tracked so the trajectory is honest about both regimes.
* ``fig7_16`` — 16-node variants cheap enough for the CI ``--quick`` gate.
* ``topology_4rack`` — the oversubscribed-fabric sweep point (memoized
  fabric paths + rack-aware chains).
* ``moe`` — the alltoall-dominated application mix.
* ``fleet`` — the multi-tenant fleet (many jobs sharing one hierarchical
  fabric), timed bare (``observe=False``): the workload ROADMAP item 3
  wants to scale, and the one the ``--profile`` pass dissects.

``benchmarks/bench_perf.py`` wraps this module as a pytest benchmark, and
``python benchmarks/bench_perf.py --write`` regenerates the committed
``BENCH_perf.json`` trajectory file; ``--profile`` adds an untimed
host-profiler + locality pass per scenario (see :func:`_profiled`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.net.config import NetworkConfig
from repro.net.topology import Topology

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class PerfScenario:
    """One basket entry: a runner returning ``(sim_seconds, events)``."""

    key: str
    group: str
    run: Callable[[], tuple[float, int]]
    #: scenarios cheap enough for the CI --quick gate.
    quick: bool = False


def _reset_object_ids() -> None:
    from repro.store.objects import reset_id_counter

    reset_id_counter()


def _measured(measure, *args, **kwargs) -> tuple[float, int, dict]:
    stats: dict = {}
    sim_s = measure(*args, flow_stats=stats, **kwargs)
    return sim_s, stats["events_processed"], stats["fastpath"]


def _topology(measure, nodes_per_rack: int, nbytes: int, **kwargs) -> tuple[float, int, dict]:
    from repro.bench.scenarios import rack_interleaved_delays
    from repro.core.options import HopliteOptions

    num_racks = 4
    network = NetworkConfig(
        topology=Topology.racks(num_racks, nodes_per_rack, oversubscription=4.0)
    )
    delays = rack_interleaved_delays(num_racks, nodes_per_rack)
    return _measured(
        measure,
        "hoplite",
        num_racks * nodes_per_rack,
        nbytes,
        network=network,
        options=HopliteOptions(topology_aware=True),
        arrival_delays=delays[1:] if kwargs.pop("receivers_only", False) else delays,
        **kwargs,
    )


def _moe(num_nodes: int, num_iterations: int) -> tuple[float, int, dict]:
    from repro.apps.moe import run_moe_routing

    result = run_moe_routing(num_nodes, "hoplite", num_iterations=num_iterations)
    return result.duration, result.metrics["events_processed"], result.metrics["fastpath"]


def _fleet(
    num_jobs: int, num_racks: int, nodes_per_rack: int, quick: bool
) -> tuple[float, int, dict]:
    from repro.bench.fleet import run_fleet

    # observe=False: the throughput gate times the bare simulator; the
    # observability/profiling variants of this scenario run separately
    # (bench_fleet.py and the --profile pass here).
    result = run_fleet(
        num_jobs=num_jobs,
        num_racks=num_racks,
        nodes_per_rack=nodes_per_rack,
        quick=quick,
        observe=False,
    )
    cluster = result.cluster
    return (
        result.duration,
        cluster.sim.events_processed,
        cluster.fastpath_stats.as_dict(),
    )


def _basket() -> list[PerfScenario]:
    from repro.bench.scenarios import (
        measure_allgather,
        measure_allreduce,
        measure_alltoall,
        measure_broadcast,
        measure_gather,
        measure_reduce,
    )

    return [
        # -- pipeline-bound 64-node fig7 cells (the >= 5x acceptance group) --
        PerfScenario(
            "fig7_64_pipeline/broadcast_1GB_hoplite",
            "fig7_64_pipeline",
            lambda: _measured(measure_broadcast, "hoplite", 64, GB),
        ),
        PerfScenario(
            "fig7_64_pipeline/reduce_1GB_hoplite",
            "fig7_64_pipeline",
            lambda: _measured(measure_reduce, "hoplite", 64, GB),
        ),
        # -- contention-bound 64-node cells (incremental matching only) --
        PerfScenario(
            "fig7_64_matching/gather_32MB_hoplite",
            "fig7_64_matching",
            lambda: _measured(measure_gather, "hoplite", 64, 32 * MB),
        ),
        PerfScenario(
            "fig7_64_matching/allreduce_1GB_hoplite",
            "fig7_64_matching",
            lambda: _measured(measure_allreduce, "hoplite", 64, GB),
        ),
        PerfScenario(
            "fig7_64_matching/allreduce_256MB_gloo",
            "fig7_64_matching",
            lambda: _measured(measure_allreduce, "gloo", 64, 256 * MB),
        ),
        PerfScenario(
            "fig7_64_matching/allgather_32MB_hoplite",
            "fig7_64_matching",
            lambda: _measured(measure_allgather, "hoplite", 64, 32 * MB),
        ),
        PerfScenario(
            "fig7_64_matching/allgather_32MB_openmpi",
            "fig7_64_matching",
            lambda: _measured(measure_allgather, "openmpi", 64, 32 * MB),
        ),
        PerfScenario(
            "fig7_64_matching/alltoall_32MB_hoplite",
            "fig7_64_matching",
            lambda: _measured(measure_alltoall, "hoplite", 64, 32 * MB),
        ),
        # -- 16-node fig7 cells (cheap enough for the CI quick gate) --
        PerfScenario(
            "fig7_16/broadcast_1GB_hoplite",
            "fig7_16",
            lambda: _measured(measure_broadcast, "hoplite", 16, GB),
            quick=True,
        ),
        PerfScenario(
            "fig7_16/reduce_256MB_hoplite",
            "fig7_16",
            lambda: _measured(measure_reduce, "hoplite", 16, 256 * MB),
            quick=True,
        ),
        PerfScenario(
            "fig7_16/alltoall_32MB_hoplite",
            "fig7_16",
            lambda: _measured(measure_alltoall, "hoplite", 16, 32 * MB),
            quick=True,
        ),
        # -- topology sweep point: 4 racks at 4:1, rack-interleaved arrivals --
        PerfScenario(
            "topology_4rack/broadcast_32MB_aware",
            "topology_4rack",
            lambda: _topology(measure_broadcast, 4, 32 * MB, receivers_only=True),
        ),
        PerfScenario(
            "topology_4rack/broadcast_8MB_aware_quick",
            "topology_4rack",
            lambda: _topology(measure_broadcast, 2, 8 * MB, receivers_only=True),
            quick=True,
        ),
        PerfScenario(
            "topology_4rack/allreduce_32MB_aware",
            "topology_4rack",
            lambda: _topology(measure_allreduce, 4, 32 * MB),
        ),
        # -- MoE expert routing (alltoall-dominated application mix) --
        PerfScenario(
            "moe/alltoall_16n_2it",
            "moe",
            lambda: _moe(16, 2),
        ),
        PerfScenario(
            "moe/alltoall_8n_1it",
            "moe",
            lambda: _moe(8, 1),
            quick=True,
        ),
        # -- multi-tenant fleet (the scaling target ROADMAP item 3 names) --
        PerfScenario(
            "fleet/24job_4rack",
            "fleet",
            lambda: _fleet(24, 4, 8, quick=False),
        ),
        PerfScenario(
            "fleet/24job_2rack_quick",
            "fleet",
            lambda: _fleet(24, 2, 4, quick=True),
            quick=True,
        ),
    ]


def _observed_critpath(scenario: PerfScenario) -> dict:
    """One extra (untimed) run with tracing on; the blame-category summary.

    Runs *after* the timed repeats so the observability overhead never
    touches ``wall_s`` / ``events_per_s`` — the throughput gate keeps
    measuring the bare simulator.  Clusters are reached through the
    :data:`repro.net.cluster.ON_CREATE` hook because scenario code builds
    them internally; a scenario that builds several (the MoE mix) sums
    their windows.
    """
    import repro.net.cluster as cluster_mod
    from repro.obs.critpath import CATEGORIES, cluster_blame

    planes: list = []
    previous = cluster_mod.ON_CREATE

    def _hook(cluster) -> None:
        if previous is not None:
            previous(cluster)
        planes.append(cluster.enable_observability(trace_transfers=True))

    cluster_mod.ON_CREATE = _hook
    try:
        _reset_object_ids()
        scenario.run()
    finally:
        cluster_mod.ON_CREATE = previous
    total = 0.0
    categories = {c: 0.0 for c in CATEGORIES}
    for obs in planes:
        blame = cluster_blame(obs, scenario.key)
        total += blame.length
        for category, value in blame.categories.items():
            categories[category] += value
    fractions = {
        c: (round(categories[c] / total, 4) if total > 0 else 0.0) for c in CATEGORIES
    }
    return {"length": round(total, 6), "fractions": fractions}


def _profiled(scenario: PerfScenario) -> dict:
    """One extra (untimed) run with hostprof + locality on; both reports.

    Mirrors :func:`_observed_critpath`: runs *after* the timed repeats, via
    the ``ON_CREATE`` hook, so the profiling overhead never touches
    ``wall_s`` / ``events_per_s``.  Host-profiler totals merge across every
    cluster the scenario builds; the locality report comes from the
    dominant cluster (most pops) — the one a PDES kernel would shard.
    """
    import repro.net.cluster as cluster_mod

    clusters: list = []
    previous = cluster_mod.ON_CREATE

    def _hook(cluster) -> None:
        if previous is not None:
            previous(cluster)
        cluster.enable_host_profiler()
        cluster.enable_locality_analyzer()
        clusters.append(cluster)

    cluster_mod.ON_CREATE = _hook
    try:
        _reset_object_ids()
        scenario.run()
    finally:
        cluster_mod.ON_CREATE = previous
    merged = None
    dominant = None
    for cluster in clusters:
        if merged is None:
            merged = cluster.hostprof
        else:
            merged.merge(cluster.hostprof)
        if dominant is None or (
            cluster.locality.total_pops > dominant.locality.total_pops
        ):
            dominant = cluster
    return {
        "hostprof": merged.report() if merged is not None else None,
        "locality": (
            dominant.locality.report() if dominant is not None else None
        ),
    }


def run_basket(
    quick: bool = False, repeats: int = 2, profile: bool = False
) -> list[dict]:
    """Run the (quick subset of the) basket; one result row per scenario.

    ``profile=True`` adds one untimed pass per scenario with the host-clock
    self-profiler and the event-locality analyzer attached, and folds their
    reports into the row (``hostprof``/``locality`` keys).  The timed
    repeats always run bare either way.
    """
    rows = []
    for scenario in _basket():
        if quick and not scenario.quick:
            continue
        best_wall = None
        for _ in range(max(1, repeats)):
            _reset_object_ids()
            start = time.perf_counter()
            sim_s, events, fastpath = scenario.run()
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
        row = {
            "scenario": scenario.key,
            "group": scenario.group,
            "quick": scenario.quick,
            "sim_s": round(sim_s, 9),
            "wall_s": round(best_wall, 4),
            "events": events,
            "events_per_s": round(events / best_wall) if best_wall > 0 else 0,
            # Per-cluster fast-path counters (repro.net.fastpath), read
            # off the scenario's own cluster: deterministic per run, so
            # the last repeat's counters stand for all of them.
            "convoy": fastpath,
            # Critical-path category fractions over the traced window,
            # from a separate observed run (deterministic; see
            # _observed_critpath).
            "critpath": _observed_critpath(scenario),
        }
        if profile:
            row.update(_profiled(scenario))
        rows.append(row)
    return rows


def measure_baselines(quick: bool = False, repeats: int = 2) -> dict[str, float]:
    """Per-scenario wall seconds with both fast paths off, on *this* host.

    ``fastpath(False)`` restores the pre-fast-path per-block kernel with
    byte-identical simulated results (tests/test_golden_determinism.py), so
    this is the like-for-like ``baseline_pre_pr_wall_s`` measurement —
    re-run by ``--write`` on the recording host instead of trusting wall
    clocks measured on whatever machine recorded the seed.
    """
    from repro.net.fastpath import fastpath

    walls: dict[str, float] = {}
    for scenario in _basket():
        if quick and not scenario.quick:
            continue
        best = None
        for _ in range(max(1, repeats)):
            _reset_object_ids()
            with fastpath(False):
                start = time.perf_counter()
                scenario.run()
                wall = time.perf_counter() - start
            if best is None or wall < best:
                best = wall
        walls[scenario.key] = round(best, 4)
    return walls


def convoy_totals(rows: list[dict]) -> dict[str, int]:
    """Basket-wide sums of the convoy observability counters."""
    totals: dict[str, int] = {}
    for row in rows:
        for key, value in row.get("convoy", {}).items():
            totals[key] = totals.get(key, 0) + value
    return totals


def group_walls(rows: list[dict]) -> dict[str, float]:
    totals: dict[str, float] = {}
    for row in rows:
        totals[row["group"]] = totals.get(row["group"], 0.0) + row["wall_s"]
    return totals
