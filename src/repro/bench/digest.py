"""Golden determinism digests for the simulation kernel.

The simulator is deterministic: a seeded scenario must produce bit-identical
results run after run — and, critically, *refactor after refactor*.  The
perf work on the kernel (coalesced block transfers, incremental admission
matching, memoized fabric paths) is only admissible because these digests
pin the simulated results: a fast path that changes a completion time, a
per-tier byte count, or the global ObjectID allocation order is a behaviour
change, not an optimization.

A digest hashes, for one scenario run:

* every completion time the scenario reports (full ``repr`` precision);
* the per-link and per-tier byte counters from
  :func:`~repro.bench.scenarios.collect_flow_usage` (integers — exact);
* the control-message count;
* the state of the process-global ObjectID counter after the run (the
  allocation *order* is schedule-sensitive, so this catches reordered
  control flow that happens to produce the same latencies).

``tests/test_golden_determinism.py`` asserts these digests against values
recorded before the fast-path refactor; ``benchmarks/bench_perf.py`` reruns
them as a smoke check next to the throughput numbers.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.net.config import NetworkConfig
from repro.net.failure import poisson_failures
from repro.net.topology import Topology

MB = 1024 * 1024


def _reset_object_ids() -> None:
    from repro.store.objects import reset_id_counter

    reset_id_counter()


def _object_id_state() -> str:
    """The next ObjectID ordinal, without consuming it."""
    from repro.store import objects as objects_module

    return repr(objects_module._id_counter)


def _flow_fingerprint(stats: dict) -> list:
    """The schedule-exact integer counters of one run's flow usage."""
    parts: list = []
    for link in stats["links"]:
        parts.append(
            (
                link.node_id,
                link.direction,
                link.tier,
                tuple(sorted(link.bytes_by_class.items())),
            )
        )
    parts.append(tuple(sorted(stats["bytes_by_class"].items())))
    parts.append(tuple(sorted(stats["tier_bytes"].items())))
    parts.append(stats["control_messages"])
    return parts


def _digest(parts: list) -> str:
    payload = "\n".join(repr(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def golden_fig7_cell() -> str:
    """One flat fig7-style cell: four collectives, object plane + static.

    8 nodes, 32 MB objects on the default flat fabric — every transfer rides
    the flow-scheduled transport, the broadcast trees pipeline through
    partial sources, and the static baselines stream whole objects.
    """
    from repro.bench.scenarios import (
        measure_allgather,
        measure_allreduce,
        measure_alltoall,
        measure_broadcast,
    )

    _reset_object_ids()
    parts: list = []
    for label, run in (
        ("bcast-hoplite", lambda s: measure_broadcast("hoplite", 8, 32 * MB, flow_stats=s)),
        ("allred-hoplite", lambda s: measure_allreduce("hoplite", 8, 32 * MB, flow_stats=s)),
        ("allgat-hoplite", lambda s: measure_allgather("hoplite", 8, 32 * MB, flow_stats=s)),
        ("a2a-hoplite", lambda s: measure_alltoall("hoplite", 8, 32 * MB, flow_stats=s)),
        ("allgat-openmpi", lambda s: measure_allgather("openmpi", 8, 32 * MB, flow_stats=s)),
        ("allred-gloo", lambda s: measure_allreduce("gloo", 8, 32 * MB, flow_stats=s)),
    ):
        stats: dict = {}
        latency = run(stats)
        parts.append((label, repr(latency)))
        parts.extend(_flow_fingerprint(stats))
    parts.append(_object_id_state())
    return _digest(parts)


def golden_fault_matrix_cell(seed: int = 0) -> str:
    """One seeded 2-rack fault-matrix cell: allgather + alltoall under churn.

    The same shape as the fault-injection test matrix: 8 nodes in two
    oversubscribed racks on a slow (1 Gbps) network, a seeded Poisson
    failure schedule over the non-caller nodes, object-plane recovery and
    reconstruction riding through it.  This pins the failure paths —
    reservation cancellation, partial-copy recovery, incarnation-lapsing
    exclusions — which the fast path must reproduce exactly.
    """
    from repro.bench.scenarios import measure_allgather, measure_alltoall

    _reset_object_ids()
    topology = Topology.racks(2, 4, oversubscription=2.0)
    network = NetworkConfig(bandwidth=1.25e8, topology=topology)

    def _failures():
        return poisson_failures(
            node_ids=list(range(1, 8)),
            rate_per_second=4.0,
            horizon=0.8,
            downtime=0.2,
            seed=seed,
        )

    parts: list = []
    for label, run in (
        (
            "allgather-faults",
            lambda s: measure_allgather(
                "hoplite", 8, 16 * MB, network=network, failures=_failures(), flow_stats=s
            ),
        ),
        (
            "alltoall-faults",
            lambda s: measure_alltoall(
                "hoplite", 8, 16 * MB, network=network, failures=_failures(), flow_stats=s
            ),
        ),
    ):
        stats: dict = {}
        latency = run(stats)
        parts.append((label, repr(latency)))
        parts.extend(_flow_fingerprint(stats))
    parts.append(_object_id_state())
    return _digest(parts)


def golden_matching_cell(num_nodes: int) -> str:
    """The contention-bound (matching-limited) collectives at one scale.

    alltoall, allgather and the reduce+broadcast-overlapped allreduce, all on
    the flat fabric with 32 MB objects: every link serves many concurrent
    lockstep flows, so these cells pin exactly the admission behaviour the
    convoy fast path must reproduce — per-block grant order under
    saturation, relay cascades through partial sources, and the
    REDUCE_PARTIAL/BULK priority interleaving of the overlapped allreduce.

    Recorded at both 16 and 64 nodes: the 16-node cell keeps a quick signal
    in fast dev loops, the 64-node cell is the exact population the
    ``fig7_64_matching`` perf group draws from.
    """
    from repro.bench.scenarios import (
        measure_allgather,
        measure_allreduce,
        measure_alltoall,
    )

    _reset_object_ids()
    parts: list = []
    for label, run in (
        ("a2a-hoplite", lambda s: measure_alltoall("hoplite", num_nodes, 32 * MB, flow_stats=s)),
        ("allgat-hoplite", lambda s: measure_allgather("hoplite", num_nodes, 32 * MB, flow_stats=s)),
        ("allred-hoplite", lambda s: measure_allreduce("hoplite", num_nodes, 32 * MB, flow_stats=s)),
    ):
        stats: dict = {}
        latency = run(stats)
        parts.append((label, repr(latency)))
        parts.extend(_flow_fingerprint(stats))
    parts.append(_object_id_state())
    return _digest(parts)


def golden_matching_cell_16() -> str:
    return golden_matching_cell(16)


def golden_matching_cell_64() -> str:
    return golden_matching_cell(64)


GOLDEN_CELLS: dict[str, Callable[[], str]] = {
    "fig7_flat": golden_fig7_cell,
    "fault_matrix_2rack": golden_fault_matrix_cell,
    "matching_16": golden_matching_cell_16,
    "matching_64": golden_matching_cell_64,
}

#: digests recorded on the pre-fast-path kernel (the PR 5 seed state),
#: asserted by tests/test_golden_determinism.py and benchmarks/bench_perf.py.
RECORDED_DIGESTS = {
    "fig7_flat": "385562b63a6a29f796821f4a2f741c1ed2288dd8c59393027d9cdf45235c6293",
    "fault_matrix_2rack": "bed96547f59609fc279e39b660430fc0dcec919fc40ac97b163bfcd55f02c982",
    # Matching-limited collectives (pre-convoy kernel, PR 6 seed state).
    "matching_16": "48432aa4b102815037eb310e2a719cf01d7363f7c6e62a9425052fbf4bc94b89",
    "matching_64": "848116e1113ddf7de78e6f9c1bc095fdfd07c7b7f5eff407bd8898ac500ab655",
}
