"""Per-figure experiment definitions.

Every public function regenerates the rows/series of one table or figure
from the paper's evaluation, using the scenario drivers and the application
workloads.  The benchmark files under ``benchmarks/`` call these functions
and print the results; EXPERIMENTS.md records how the shapes compare with
the published numbers.

The default parameter grids are trimmed relative to the paper (fewer sweep
points, fewer application iterations) so that the whole benchmark suite runs
in minutes on a laptop; every function accepts the full grid if a caller
wants it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.apps.common import FailureSchedule
from repro.apps.moe import run_moe_routing
from repro.apps.param_server import run_async_sgd
from repro.apps.rl import run_rl_training
from repro.apps.serving import run_model_serving
from repro.apps.sync_training import run_sync_training
from repro.bench.scenarios import (
    measure_allgather,
    measure_allreduce,
    measure_alltoall,
    measure_broadcast,
    measure_gather,
    measure_point_to_point_rtt,
    measure_reduce,
)
from repro.core.options import HopliteOptions
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.core.runtime import HopliteRuntime
from repro.store.objects import ObjectID, ObjectValue

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


# ---------------------------------------------------------------------------
# Figure 6: point-to-point RTT
# ---------------------------------------------------------------------------


def fig6_point_to_point(
    sizes: Sequence[int] = (KB, MB, GB),
    systems: Sequence[str] = ("optimal", "hoplite", "openmpi", "ray", "dask"),
) -> list[dict]:
    """Round-trip latency per object size per system (Figure 6)."""
    rows = []
    for size in sizes:
        row: dict = {"size": _size_label(size)}
        for system in systems:
            row[system] = measure_point_to_point_rtt(system, size)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figures 7 and 14: collective microbenchmarks
# ---------------------------------------------------------------------------

_FIG7_SYSTEMS = {
    "broadcast": ("hoplite", "openmpi", "ray", "dask", "gloo"),
    "gather": ("hoplite", "openmpi", "ray", "dask"),
    "reduce": ("hoplite", "openmpi", "ray", "dask"),
    "allreduce": (
        "hoplite",
        "openmpi",
        "ray",
        "dask",
        "gloo_ring_chunked",
        "gloo_halving_doubling",
    ),
    "allgather": ("hoplite", "openmpi", "gloo", "ray", "dask"),
    "alltoall": ("hoplite", "openmpi", "gloo", "ray", "dask"),
}

_MEASURES = {
    "broadcast": measure_broadcast,
    "gather": measure_gather,
    "reduce": measure_reduce,
    "allreduce": measure_allreduce,
    "allgather": measure_allgather,
    "alltoall": measure_alltoall,
}


def collective_rows(
    sizes: Sequence[int],
    node_counts: Sequence[int],
    primitives: Sequence[str] = ("broadcast", "gather", "reduce", "allreduce"),
    systems_by_primitive: Optional[dict] = None,
    network: Optional[NetworkConfig] = None,
) -> list[dict]:
    """Latency of each collective for each (size, node count, system).

    Every row also carries the collective's pipelined analytical optimum
    (the scenario drivers' ``"optimal"`` system), Hoplite's ratio to it
    (``x_optimal``), and the per-tier traffic ratios of the Hoplite run
    (``rack_frac`` / ``zone_frac``: the fraction of NIC bytes that also
    crossed a rack uplink / inter-zone link — identically zero on the
    default flat fabric), so the tables read directly as
    closeness-to-bound plus fabric footprint.
    """
    systems_by_primitive = systems_by_primitive or _FIG7_SYSTEMS
    rows = []
    for primitive in primitives:
        measure = _MEASURES[primitive]
        for size in sizes:
            for num_nodes in node_counts:
                row: dict = {
                    "primitive": primitive,
                    "size": _size_label(size),
                    "nodes": num_nodes,
                }
                for system in systems_by_primitive.get(primitive, ("hoplite",)):
                    try:
                        kwargs: dict = {"network": network}
                        if system == "hoplite":
                            kwargs["flow_stats"] = flow_stats = {}
                        row[system] = measure(system, num_nodes, size, **kwargs)
                        if system == "hoplite":
                            row["rack_frac"] = flow_stats.get("cross_rack_fraction", 0.0)
                            row["zone_frac"] = flow_stats.get("cross_zone_fraction", 0.0)
                    except Exception:  # noqa: BLE001 - unsupported combination
                        row[system] = float("nan")
                try:
                    row["optimal"] = measure("optimal", num_nodes, size, network=network)
                except Exception:  # noqa: BLE001 - no analytic optimum
                    row["optimal"] = float("nan")
                hoplite = row.get("hoplite", float("nan"))
                optimal = row["optimal"]
                row["x_optimal"] = (
                    hoplite / optimal if optimal and optimal == optimal else float("nan")
                )
                rows.append(row)
    return rows


def fig7_collectives(
    sizes: Sequence[int] = (MB, 32 * MB, GB),
    node_counts: Sequence[int] = (4, 8, 16),
) -> list[dict]:
    """Figure 7: medium-to-large object collectives."""
    return collective_rows(sizes, node_counts)


def fig14_small_objects(
    sizes: Sequence[int] = (KB, 32 * KB),
    node_counts: Sequence[int] = (4, 8, 16),
) -> list[dict]:
    """Figure 14 (Appendix A): small-object collectives (directory fast path)."""
    return collective_rows(sizes, node_counts)


def allgather_alltoall_rows(
    sizes: Sequence[int] = (MB, 32 * MB),
    node_counts: Sequence[int] = (4, 8, 16),
) -> list[dict]:
    """Collective-family extension: allgather / alltoall latency per system.

    These are the shapes the MPI AI-cluster benchmarks identify as dominating
    MoE expert routing (alltoall) and batch-norm-style statistics exchange
    (allgather); they are not in the paper's figures but reuse its exact
    measurement boundaries.
    """
    return collective_rows(sizes, node_counts, primitives=("allgather", "alltoall"))


# ---------------------------------------------------------------------------
# Figure 8: asynchronous participant arrival
# ---------------------------------------------------------------------------


def fig8_asynchrony(
    intervals: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    num_nodes: int = 16,
    nbytes: int = GB,
) -> list[dict]:
    """Figure 8: 1 GB collectives with sequentially arriving participants."""
    rows = []
    for interval in intervals:
        row: dict = {"interval": interval, "last_arrival": interval * (num_nodes - 1)}
        row["broadcast_hoplite"] = measure_broadcast(
            "hoplite", num_nodes, nbytes, arrival_interval=interval
        )
        row["broadcast_openmpi"] = measure_broadcast(
            "openmpi", num_nodes, nbytes, arrival_interval=interval
        )
        row["reduce_hoplite"] = measure_reduce(
            "hoplite", num_nodes, nbytes, arrival_interval=interval
        )
        row["reduce_openmpi"] = measure_reduce(
            "openmpi", num_nodes, nbytes, arrival_interval=interval
        )
        row["allreduce_hoplite"] = measure_allreduce(
            "hoplite", num_nodes, nbytes, arrival_interval=interval
        )
        row["allreduce_openmpi"] = measure_allreduce(
            "openmpi", num_nodes, nbytes, arrival_interval=interval
        )
        row["allreduce_gloo"] = measure_allreduce(
            "gloo_ring_chunked", num_nodes, nbytes, arrival_interval=interval
        )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 9: asynchronous SGD
# ---------------------------------------------------------------------------


def fig9_async_sgd(
    models: Sequence[str] = ("alexnet", "vgg16", "resnet50"),
    node_counts: Sequence[int] = (8, 16),
    num_iterations: int = 5,
) -> list[dict]:
    """Figure 9: async parameter-server training throughput, Hoplite vs Ray."""
    rows = []
    for num_nodes in node_counts:
        for model in models:
            hoplite = run_async_sgd(num_nodes, model, "hoplite", num_iterations)
            ray = run_async_sgd(num_nodes, model, "ray", num_iterations)
            rows.append(
                {
                    "nodes": num_nodes,
                    "model": model,
                    "hoplite": hoplite.throughput,
                    "ray": ray.throughput,
                    "speedup": hoplite.throughput / ray.throughput if ray.throughput else float("nan"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 10: reinforcement learning
# ---------------------------------------------------------------------------


def fig10_rl(
    algorithms: Sequence[str] = ("impala", "a3c"),
    node_counts: Sequence[int] = (8, 16),
    num_iterations: int = 5,
) -> list[dict]:
    """Figure 10: RLlib-style training throughput, Hoplite vs Ray."""
    rows = []
    for algorithm in algorithms:
        for num_nodes in node_counts:
            hoplite = run_rl_training(num_nodes, algorithm, "hoplite", num_iterations)
            ray = run_rl_training(num_nodes, algorithm, "ray", num_iterations)
            rows.append(
                {
                    "algorithm": algorithm,
                    "nodes": num_nodes,
                    "hoplite": hoplite.throughput,
                    "ray": ray.throughput,
                    "speedup": hoplite.throughput / ray.throughput if ray.throughput else float("nan"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 11: model serving
# ---------------------------------------------------------------------------


def fig11_serving(
    node_counts: Sequence[int] = (8, 16),
    num_queries: int = 10,
) -> list[dict]:
    """Figure 11: ensemble-serving throughput, Hoplite vs Ray."""
    rows = []
    for num_nodes in node_counts:
        hoplite = run_model_serving(num_nodes, "hoplite", num_queries)
        ray = run_model_serving(num_nodes, "ray", num_queries)
        rows.append(
            {
                "nodes": num_nodes,
                "hoplite": hoplite.throughput,
                "ray": ray.throughput,
                "speedup": hoplite.throughput / ray.throughput if ray.throughput else float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 12: fault tolerance
# ---------------------------------------------------------------------------


def fig12_fault_tolerance(
    num_queries: int = 40,
    num_sgd_iterations: int = 20,
) -> dict[str, dict[str, list[float]]]:
    """Figure 12: per-query / per-iteration latency around a failure + rejoin.

    Returns ``{"serving": {"hoplite": [...], "ray": [...]},
    "async_sgd": {...}}`` where each list is the latency timeline.
    """
    serving_failure = FailureSchedule(node_id=3, fail_at=2.0, recover_at=4.5)
    sgd_failure = FailureSchedule(node_id=3, fail_at=3.0, recover_at=6.0)
    serving = {
        system: run_model_serving(
            8, system, num_queries, failure=serving_failure
        ).iteration_latencies
        for system in ("hoplite", "ray")
    }
    async_sgd = {
        system: run_async_sgd(
            7, "alexnet", system, num_sgd_iterations, failure=sgd_failure
        ).iteration_latencies
        for system in ("hoplite", "ray")
    }
    return {"serving": serving, "async_sgd": async_sgd}


# ---------------------------------------------------------------------------
# Figure 13: synchronous data-parallel training
# ---------------------------------------------------------------------------


def fig13_sync_training(
    models: Sequence[str] = ("alexnet", "vgg16", "resnet50"),
    node_counts: Sequence[int] = (8, 16),
    num_rounds: int = 3,
) -> list[dict]:
    """Figure 13: synchronous training throughput across systems."""
    rows = []
    for num_nodes in node_counts:
        for model in models:
            row: dict = {"nodes": num_nodes, "model": model}
            for system in ("hoplite", "openmpi", "gloo", "ray"):
                row[system] = run_sync_training(num_nodes, model, system, num_rounds).throughput
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 15: reduce-tree degree ablation
# ---------------------------------------------------------------------------


def fig15_reduce_degree(
    sizes: Sequence[int] = (4 * KB, 32 * KB, 256 * KB, MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB),
    node_counts: Sequence[int] = (8, 16, 32, 64),
    degrees: Sequence[int] = (1, 2, 0),
) -> list[dict]:
    """Figure 15 (Appendix B): reduce latency for forced tree degrees."""
    rows = []
    for size in sizes:
        for num_nodes in node_counts:
            row: dict = {"size": _size_label(size), "nodes": num_nodes}
            for degree in degrees:
                label = "d=n" if degree == 0 else f"d={degree}"
                options = HopliteOptions(
                    reduce_degree=degree,
                    enable_small_object_cache=False,
                )
                row[label] = measure_reduce("hoplite", num_nodes, size, options=options)
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# MoE expert routing (alltoall-dominated application workload)
# ---------------------------------------------------------------------------


def moe_routing(
    node_counts: Sequence[int] = (4, 8),
    num_iterations: int = 3,
) -> list[dict]:
    """MoE expert-routing throughput, Hoplite vs the Ray-style plane."""
    rows = []
    for num_nodes in node_counts:
        hoplite = run_moe_routing(num_nodes, "hoplite", num_iterations)
        ray = run_moe_routing(num_nodes, "ray", num_iterations)
        rows.append(
            {
                "nodes": num_nodes,
                "hoplite": hoplite.throughput,
                "ray": ray.throughput,
                "speedup": hoplite.throughput / ray.throughput if ray.throughput else float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Section 5.1.1: object directory microbenchmark
# ---------------------------------------------------------------------------


def directory_latency_microbenchmark(num_nodes: int = 16, repeats: int = 32) -> dict:
    """Average latency of writing and reading object locations (Section 5.1.1)."""
    cluster = Cluster(num_nodes=num_nodes, network=NetworkConfig())
    runtime = HopliteRuntime(cluster)
    sim = cluster.sim
    samples = {"publish": [], "lookup": []}

    def _bench() -> object:
        for index in range(repeats):
            object_id = ObjectID.unique(f"dir-bench-{index}")
            node = cluster.nodes[index % num_nodes]
            store = runtime.store(node)
            store.put_complete(object_id, ObjectValue.of_size(1024 * 1024))
            start = sim.now
            yield from runtime.directory.publish_complete(node, object_id, 1024 * 1024)
            samples["publish"].append(sim.now - start)
            reader = cluster.nodes[(index + 1) % num_nodes]
            start = sim.now
            yield from runtime.directory.wait_for_object(reader, object_id)
            samples["lookup"].append(sim.now - start)

    sim.process(_bench(), name="directory-bench")
    cluster.run()
    return {
        "publish_mean": float(np.mean(samples["publish"])),
        "publish_std": float(np.std(samples["publish"])),
        "lookup_mean": float(np.mean(samples["lookup"])),
        "lookup_std": float(np.std(samples["lookup"])),
    }


def _size_label(nbytes: int) -> str:
    if nbytes >= GB:
        return f"{nbytes // GB}GB"
    if nbytes >= MB:
        return f"{nbytes // MB}MB"
    if nbytes >= KB:
        return f"{nbytes // KB}KB"
    return f"{nbytes}B"
