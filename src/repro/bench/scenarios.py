"""Measurement drivers for the microbenchmark figures (6, 7, 8, 14, 15).

Each driver builds a fresh simulated cluster, runs one collective operation
under one system ("hoplite", "openmpi", "gloo", "ray", "dask", ...), and
returns the latency in simulated seconds, using the same measurement
boundaries as the paper:

* point-to-point — round-trip time of one object;
* broadcast — from the moment every receiver calls ``Get`` (after the
  sender's ``Put`` has completed) to the moment the last receiver finishes;
* gather — the duration of the caller's ``Get`` over all objects;
* reduce — from the ``Reduce`` call to the caller holding the result;
* allreduce — from the ``Reduce`` call to the last participant holding the
  result;
* allgather — from the moment every participant's ``Put`` has completed to
  the last participant holding all ``n`` objects;
* alltoall — from the start of the exchange (sends included) to the last
  participant holding its ``n - 1`` personalized blocks;
* the asynchrony variants stagger participant arrivals by a fixed interval
  and measure from the arrival of the first participant (Figure 8).

``measure_allgather`` and ``measure_alltoall`` additionally accept a failure
schedule (:class:`~repro.net.failure.FailureEvent` list).  The object planes
ride through failures with Hoplite's per-transfer recovery plus framework
reconstruction (a recovered producer re-``Put``s its objects, Section 6);
the static systems abort and restart the whole job once every node is back —
the MPI failure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.apps.common import reconstruct_on_recovery, retry_across_failures
from repro.collectives.gloo import GlooCollectives
from repro.collectives.mpi import MPICollectives
from repro.collectives.naive import (
    DASK_PROFILE,
    RAY_PROFILE,
    TaskSystemPlane,
)
from repro.collectives.plane import CommPlane, HoplitePlane
from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.failure import FailureEvent
from repro.net.failure import schedule as _install_failures
from repro.net.flowsched import FlowClass
from repro.net.transport import TransferError
from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.tasksys import CollectiveOrchestrator, CollectiveSpec, TaskSystem

SUPPORTED_SYSTEMS = (
    "hoplite",
    "openmpi",
    "gloo",
    "gloo_ring",
    "gloo_ring_chunked",
    "gloo_halving_doubling",
    "ray",
    "dask",
    "optimal",
)

PLANE_SYSTEMS = ("hoplite", "ray", "dask")
STATIC_SYSTEMS = ("openmpi", "gloo", "gloo_ring", "gloo_ring_chunked", "gloo_halving_doubling")


class UnsupportedScenarioError(ValueError):
    """The requested system does not implement the requested primitive."""


# ---------------------------------------------------------------------------
# Per-flow link utilization reporting (flow-scheduled transport)
# ---------------------------------------------------------------------------


@dataclass
class LinkUsage:
    """Utilization of one link direction over a scenario run."""

    node_id: int
    direction: str
    #: fraction of the run this link spent transmitting granted reservations.
    utilization: float
    #: bytes granted per flow class name (``control``/``reduce_partial``/``bulk``).
    bytes_by_class: dict[str, int]
    #: number of reservations granted on this link.
    reservations: int
    #: ``nic`` for NIC directions; the fabric tier (``rack_up``/``rack_down``/
    #: ``zone_up``/``zone_down``) for shared aggregation links (``node_id``
    #: is ``-1`` for those).
    tier: str = "nic"


@dataclass
class FlowUsage:
    """The frozen return schema of :func:`collect_flow_usage`.

    Callers historically consume a plain dict (``flow_stats.update(...)``,
    digest fingerprints over selected keys), so :func:`collect_flow_usage`
    returns :meth:`as_dict`; this dataclass is the schema contract the
    tests pin.  Remove or rename a field here and
    ``tests/test_flow_usage_schema.py`` fails before any consumer does.
    """

    #: simulated seconds the scenario ran for (utilization denominator).
    elapsed: float
    #: kernel events processed by the cluster's simulator so far.
    events_processed: int
    #: one :class:`LinkUsage` per NIC direction and per shared fabric link.
    links: list[LinkUsage]
    #: uplink-side aggregate bytes per flow-class name (no double counting).
    bytes_by_class: dict[str, int]
    mean_uplink_utilization: float
    max_uplink_utilization: float
    #: control-plane messages sent (directory RPCs etc.).
    control_messages: int
    #: bytes that crossed each tier, egress side only: ``nic`` /
    #: ``rack_uplink`` / ``inter_zone``.
    tier_bytes: dict[str, int]
    #: busy seconds per tier, same keys as ``tier_bytes``.
    tier_busy_time: dict[str, float]
    #: fraction of NIC bytes that also crossed the rack uplink tier.
    cross_rack_fraction: float
    #: fraction of NIC bytes that also crossed the inter-zone tier.
    cross_zone_fraction: float
    #: the cluster's fast-path counters (repro.net.fastpath.COUNTER_KEYS).
    fastpath: dict[str, int]

    def as_dict(self) -> dict:
        return {
            "elapsed": self.elapsed,
            "events_processed": self.events_processed,
            "links": self.links,
            "bytes_by_class": self.bytes_by_class,
            "mean_uplink_utilization": self.mean_uplink_utilization,
            "max_uplink_utilization": self.max_uplink_utilization,
            "control_messages": self.control_messages,
            "tier_bytes": self.tier_bytes,
            "tier_busy_time": self.tier_busy_time,
            "cross_rack_fraction": self.cross_rack_fraction,
            "cross_zone_fraction": self.cross_zone_fraction,
            "fastpath": self.fastpath,
        }


def collect_flow_usage(cluster: Cluster) -> dict:
    """Per-link and aggregate flow statistics for a finished scenario.

    Returns :meth:`FlowUsage.as_dict` — a dict with ``links`` (a
    :class:`LinkUsage` per NIC direction and per shared fabric link),
    ``bytes_by_class`` (uplink-side aggregate, so bytes are not counted
    twice), ``mean_uplink_utilization`` / ``max_uplink_utilization``, the
    number of ``control_messages`` the control plane sent, the cluster's
    ``fastpath`` counters, and the per-tier rollup: ``tier_bytes`` /
    ``tier_busy_time`` keyed by ``nic`` (NIC uplinks), ``rack_uplink`` (ToR
    uplinks) and ``inter_zone`` (zone uplinks) — each tier counted on its
    egress side only, so a byte is counted once per tier it crossed — plus
    the derived ``cross_rack_fraction`` / ``cross_zone_fraction`` of NIC
    bytes that also crossed that tier.  On the flat topology the fabric
    tiers are identically zero.  Utilization is measured over the whole
    simulated run (``cluster.now``).  The schema is frozen as
    :class:`FlowUsage`.
    """
    elapsed = cluster.now
    links: list[LinkUsage] = []
    bytes_by_class = {cls.name.lower(): 0 for cls in FlowClass}
    uplink_utils: list[float] = []
    control_messages = 0
    for node in cluster.nodes:
        for sched in (node.uplink_sched, node.downlink_sched):
            links.append(
                LinkUsage(
                    node_id=node.node_id,
                    direction=sched.direction,
                    utilization=sched.utilization(elapsed),
                    bytes_by_class={
                        cls.name.lower(): count
                        for cls, count in sched.bytes_by_class.items()
                    },
                    reservations=sched.reservations_granted,
                )
            )
        for cls, count in node.uplink_sched.bytes_by_class.items():
            bytes_by_class[cls.name.lower()] += count
        uplink_utils.append(node.uplink_sched.utilization(elapsed))
        control_messages += node.uplink_sched.control_messages

    nic_bytes = sum(bytes_by_class.values())
    tier_bytes = {"nic": nic_bytes, "rack_uplink": 0, "inter_zone": 0}
    tier_busy_time = {
        "nic": sum(node.uplink_sched.busy_time for node in cluster.nodes),
        "rack_uplink": 0.0,
        "inter_zone": 0.0,
    }
    egress_tiers = {"rack_up": "rack_uplink", "zone_up": "inter_zone"}
    for link in cluster.fabric.iter_links():
        links.append(
            LinkUsage(
                node_id=-1,
                direction=link.name,
                utilization=link.sched.utilization(elapsed),
                bytes_by_class={
                    cls.name.lower(): count
                    for cls, count in link.sched.bytes_by_class.items()
                },
                reservations=link.sched.reservations_granted,
                tier=link.tier,
            )
        )
        tier = egress_tiers.get(link.tier)
        if tier is not None:
            tier_bytes[tier] += sum(link.sched.bytes_by_class.values())
            tier_busy_time[tier] += link.sched.busy_time

    return FlowUsage(
        elapsed=elapsed,
        events_processed=cluster.sim.events_processed,
        links=links,
        bytes_by_class=bytes_by_class,
        mean_uplink_utilization=(
            sum(uplink_utils) / len(uplink_utils) if uplink_utils else 0.0
        ),
        max_uplink_utilization=max(uplink_utils, default=0.0),
        control_messages=control_messages,
        tier_bytes=tier_bytes,
        tier_busy_time=tier_busy_time,
        cross_rack_fraction=(
            tier_bytes["rack_uplink"] / nic_bytes if nic_bytes else 0.0
        ),
        cross_zone_fraction=(
            tier_bytes["inter_zone"] / nic_bytes if nic_bytes else 0.0
        ),
        fastpath=cluster.fastpath_stats.as_dict(),
    ).as_dict()


def rack_interleaved_delays(
    num_racks: int, nodes_per_rack: int, eps: float = 2e-4
) -> list[float]:
    """Per-node arrival delays whose order round-robins across racks.

    Synchronized id-ordered arrival happens to build rack-contiguous
    broadcast chains and reduce trees even without topology awareness; this
    arrival pattern models placement *uncorrelated* with node ids — node 0,
    then the first node of every other rack, then everyone's second node,
    and so on, ``eps`` apart — which is where topology-oblivious trees
    scatter their edges across the shared tier links.  Used by the topology
    benchmarks, the regression tests, and the example.
    """
    order = [
        rack * nodes_per_rack + index
        for index in range(nodes_per_rack)
        for rack in range(num_racks)
    ]
    delays = [0.0] * (num_racks * nodes_per_rack)
    for position, node_id in enumerate(order):
        delays[node_id] = position * eps
    return delays


def _check_system(system: str) -> None:
    if system not in SUPPORTED_SYSTEMS:
        raise UnsupportedScenarioError(
            f"unknown system {system!r}; expected one of {SUPPORTED_SYSTEMS}"
        )


def _make_cluster(num_nodes: int, network: Optional[NetworkConfig]) -> Cluster:
    return Cluster(num_nodes=num_nodes, network=network or NetworkConfig())


def _make_plane(system: str, cluster: Cluster, options: Optional[HopliteOptions]) -> CommPlane:
    if system == "hoplite":
        return HoplitePlane(HopliteRuntime(cluster, options=options))
    if system == "ray":
        return TaskSystemPlane(cluster, RAY_PROFILE)
    if system == "dask":
        return TaskSystemPlane(cluster, DASK_PROFILE)
    raise UnsupportedScenarioError(f"{system!r} is not an object-plane system")


def _resolve_delays(
    count: int,
    arrival_interval: float,
    arrival_delays: Optional[Sequence[float]],
) -> list[float]:
    """Per-participant arrival delays for the asynchrony experiments.

    Explicit ``arrival_delays`` win; otherwise participant ``k`` arrives at
    ``k * arrival_interval`` (the paper's fixed-interval arrival process).
    """
    if arrival_delays is not None:
        if len(arrival_delays) != count:
            raise ValueError(
                f"expected {count} arrival delays, got {len(arrival_delays)}"
            )
        return [float(delay) for delay in arrival_delays]
    return [index * arrival_interval for index in range(count)]


# ---------------------------------------------------------------------------
# Point-to-point (Figure 6)
# ---------------------------------------------------------------------------


def measure_point_to_point_rtt(
    system: str,
    nbytes: int,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
) -> float:
    """Round-trip latency of one object between two nodes."""
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return 2.0 * nbytes / network.bandwidth

    cluster = _make_cluster(2, network)
    sim = cluster.sim
    finish: dict[str, float] = {}

    if system == "openmpi" or system in STATIC_SYSTEMS:
        mpi = MPICollectives(cluster)

        def _round_trip() -> Generator:
            yield from mpi.send(0, 1, nbytes)
            yield from mpi.send(1, 0, nbytes)
            finish["t"] = sim.now

        sim.process(_round_trip(), name="p2p-mpi")
        sim.run()
        return finish["t"]

    plane = _make_plane(system, cluster, options)
    ping_id = ObjectID.of("p2p-ping")
    pong_id = ObjectID.of("p2p-pong")

    def _sender() -> Generator:
        yield from plane.put(cluster.node(0), ping_id, ObjectValue.of_size(nbytes))
        yield from plane.get(cluster.node(0), pong_id)
        finish["t"] = sim.now

    def _responder() -> Generator:
        yield from plane.get(cluster.node(1), ping_id)
        yield from plane.put(cluster.node(1), pong_id, ObjectValue.of_size(nbytes))

    sim.process(_sender(), name="p2p-sender")
    sim.process(_responder(), name="p2p-responder")
    sim.run()
    return finish["t"]


# ---------------------------------------------------------------------------
# Broadcast (Figures 7, 8a, 14)
# ---------------------------------------------------------------------------


def measure_broadcast(
    system: str,
    num_nodes: int,
    nbytes: int,
    arrival_interval: float = 0.0,
    arrival_delays: Optional[Sequence[float]] = None,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    flow_stats: Optional[dict] = None,
) -> float:
    """Latency of broadcasting one object from node 0 to all other nodes.

    For the static systems the per-rank ``arrival_delays`` (or the uniform
    ``arrival_interval``) cover all ``num_nodes`` ranks including the root;
    for the object-plane systems they cover the ``num_nodes - 1`` receivers.
    If ``flow_stats`` is given (a dict), it is filled with the run's per-flow
    link utilization report (see :func:`collect_flow_usage`).
    """
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return nbytes / network.bandwidth
    if num_nodes < 2:
        raise ValueError("broadcast needs at least two nodes")

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    finish_times: list[float] = []

    if system in STATIC_SYSTEMS:
        if system in ("gloo_ring", "gloo_ring_chunked", "gloo_halving_doubling"):
            raise UnsupportedScenarioError("Gloo's allreduce variants do not broadcast")
        if system == "openmpi":
            op = MPICollectives(cluster).broadcast(nbytes, root=0)
        else:
            op = GlooCollectives(cluster).broadcast(nbytes, root=0)
        delays = _resolve_delays(num_nodes, arrival_interval, arrival_delays)

        def _rank(rank: int, delay: float) -> Generator:
            if delay > 0:
                yield sim.timeout(delay)
            result = yield from op.participate(rank)
            finish_times.append(result.finish_time)

        for rank in range(num_nodes):
            sim.process(_rank(rank, delays[rank]), name=f"bcast-rank-{rank}")
        sim.run()
        if flow_stats is not None:
            flow_stats.update(collect_flow_usage(cluster))
        return max(finish_times)

    plane = _make_plane(system, cluster, options)
    object_id = ObjectID.unique("bcast")
    delays = _resolve_delays(num_nodes - 1, arrival_interval, arrival_delays)

    def _scenario() -> Generator:
        # The sender's Put completes before the measurement window opens.
        yield from plane.put(cluster.node(0), object_id, ObjectValue.of_size(nbytes))
        epoch = sim.now
        receivers = []

        def _receiver(node_id: int, delay: float) -> Generator:
            if delay > 0:
                yield sim.timeout(delay)
            yield from plane.get(cluster.node(node_id), object_id)
            finish_times.append(sim.now - epoch)

        for index, node_id in enumerate(range(1, num_nodes)):
            receivers.append(
                sim.process(
                    _receiver(node_id, delays[index]),
                    name=f"bcast-recv-{node_id}",
                )
            )
        yield sim.all_of(receivers)

    sim.process(_scenario(), name="bcast-scenario")
    sim.run()
    if flow_stats is not None:
        flow_stats.update(collect_flow_usage(cluster))
    return max(finish_times)


# ---------------------------------------------------------------------------
# Gather (Figures 7, 14)
# ---------------------------------------------------------------------------


def measure_gather(
    system: str,
    num_nodes: int,
    nbytes: int,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    flow_stats: Optional[dict] = None,
) -> float:
    """Latency for node 0 to gather one object from every other node."""
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return (num_nodes - 1) * nbytes / network.bandwidth
    if num_nodes < 2:
        raise ValueError("gather needs at least two nodes")

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    result: dict[str, float] = {}

    if system in STATIC_SYSTEMS:
        if system != "openmpi":
            raise UnsupportedScenarioError(f"{system!r} does not implement gather")
        op = MPICollectives(cluster).gather(nbytes, root=0)
        finishes: list[float] = []

        def _rank(rank: int) -> Generator:
            rank_result = yield from op.participate(rank)
            finishes.append(rank_result.finish_time)

        for rank in range(num_nodes):
            sim.process(_rank(rank), name=f"gather-rank-{rank}")
        sim.run()
        if flow_stats is not None:
            flow_stats.update(collect_flow_usage(cluster))
        return max(finishes)

    plane = _make_plane(system, cluster, options)
    object_ids = [ObjectID.unique(f"gather-{i}") for i in range(1, num_nodes)]

    def _scenario() -> Generator:
        puts = []
        for index, node_id in enumerate(range(1, num_nodes)):
            puts.append(
                sim.process(
                    plane.put(
                        cluster.node(node_id), object_ids[index], ObjectValue.of_size(nbytes)
                    ),
                    name=f"gather-put-{node_id}",
                )
            )
        yield sim.all_of(puts)
        epoch = sim.now
        gets = [
            sim.process(
                plane.get(cluster.node(0), object_id), name=f"gather-get-{object_id}"
            )
            for object_id in object_ids
        ]
        yield sim.all_of(gets)
        result["latency"] = sim.now - epoch

    sim.process(_scenario(), name="gather-scenario")
    sim.run()
    if flow_stats is not None:
        flow_stats.update(collect_flow_usage(cluster))
    return result["latency"]


# ---------------------------------------------------------------------------
# Reduce (Figures 7, 8b, 14, 15)
# ---------------------------------------------------------------------------


def measure_reduce(
    system: str,
    num_nodes: int,
    nbytes: int,
    arrival_interval: float = 0.0,
    arrival_delays: Optional[Sequence[float]] = None,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    flow_stats: Optional[dict] = None,
) -> float:
    """Latency of reducing one object per node into a single result at the caller.

    In the synchronized case (no staggering) every ``Put`` completes before
    the ``Reduce`` is issued, matching Figure 7.  With staggered arrivals the
    ``Reduce`` is issued immediately and objects trickle in, matching
    Figure 8b.  The caller's ``Get`` runs concurrently with the Reduce so the
    result streams to the caller as it is produced (Section 3.3).
    """
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return nbytes / network.bandwidth
    if num_nodes < 2:
        raise ValueError("reduce needs at least two nodes")

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    delays = _resolve_delays(num_nodes, arrival_interval, arrival_delays)
    synchronized = max(delays) <= 0.0

    if system in STATIC_SYSTEMS:
        if system != "openmpi":
            raise UnsupportedScenarioError(f"{system!r} does not implement reduce")
        op = MPICollectives(cluster).reduce(nbytes, root=0)
        finishes: dict[int, float] = {}

        def _rank(rank: int, delay: float) -> Generator:
            if delay > 0:
                yield sim.timeout(delay)
            rank_result = yield from op.participate(rank)
            finishes[rank] = rank_result.finish_time

        for rank in range(num_nodes):
            sim.process(_rank(rank, delays[rank]), name=f"reduce-rank-{rank}")
        sim.run()
        if flow_stats is not None:
            flow_stats.update(collect_flow_usage(cluster))
        return finishes[0]

    plane = _make_plane(system, cluster, options)
    source_ids = [ObjectID.unique(f"reduce-src-{i}") for i in range(num_nodes)]
    target_id = ObjectID.unique("reduce-target")
    result: dict[str, float] = {}

    def _producer(node_id: int, delay: float) -> Generator:
        if delay > 0:
            yield sim.timeout(delay)
        yield from plane.put(
            cluster.node(node_id), source_ids[node_id], ObjectValue.of_size(nbytes)
        )

    def _scenario() -> Generator:
        producers = [
            sim.process(
                _producer(node_id, delays[node_id]),
                name=f"reduce-put-{node_id}",
            )
            for node_id in range(num_nodes)
        ]
        if synchronized:
            # Figure 7 methodology: all Puts complete before Reduce is called.
            yield sim.all_of(producers)
        epoch = sim.now
        reduce_proc = sim.process(
            plane.reduce(cluster.node(0), target_id, source_ids, ReduceOp.SUM),
            name="reduce-call",
        )
        yield from plane.get(cluster.node(0), target_id)
        yield reduce_proc
        result["latency"] = sim.now - epoch

    sim.process(_scenario(), name="reduce-scenario")
    sim.run()
    if flow_stats is not None:
        flow_stats.update(collect_flow_usage(cluster))
    return result["latency"]


# ---------------------------------------------------------------------------
# AllReduce (Figures 7, 8c, 14)
# ---------------------------------------------------------------------------


def measure_allreduce(
    system: str,
    num_nodes: int,
    nbytes: int,
    arrival_interval: float = 0.0,
    arrival_delays: Optional[Sequence[float]] = None,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    flow_stats: Optional[dict] = None,
) -> float:
    """Latency for every node to hold the reduction of one object per node.

    Hoplite composes allreduce as reduce followed by broadcast; every
    participant issues its ``Get`` on the reduce target immediately, so the
    result streams out while it is still being produced (Section 3.4.3).
    """
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return 2.0 * nbytes / network.bandwidth * (num_nodes - 1) / num_nodes
    if num_nodes < 2:
        raise ValueError("allreduce needs at least two nodes")

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    delays = _resolve_delays(num_nodes, arrival_interval, arrival_delays)
    synchronized = max(delays) <= 0.0

    if system in STATIC_SYSTEMS:
        if system == "openmpi":
            op = MPICollectives(cluster).allreduce(nbytes)
        else:
            gloo = GlooCollectives(cluster)
            if system in ("gloo", "gloo_ring_chunked"):
                op = gloo.allreduce_ring_chunked(nbytes)
            elif system == "gloo_ring":
                op = gloo.allreduce_ring(nbytes)
            else:
                op = gloo.allreduce_halving_doubling(nbytes)
        finishes: list[float] = []

        def _rank(rank: int, delay: float) -> Generator:
            if delay > 0:
                yield sim.timeout(delay)
            rank_result = yield from op.participate(rank)
            finishes.append(rank_result.finish_time)

        for rank in range(num_nodes):
            sim.process(_rank(rank, delays[rank]), name=f"allreduce-rank-{rank}")
        sim.run()
        if flow_stats is not None:
            flow_stats.update(collect_flow_usage(cluster))
        return max(finishes)

    plane = _make_plane(system, cluster, options)
    source_ids = [ObjectID.unique(f"allreduce-src-{i}") for i in range(num_nodes)]
    target_id = ObjectID.unique("allreduce-target")
    result: dict[str, float] = {}

    def _producer(node_id: int, delay: float) -> Generator:
        if delay > 0:
            yield sim.timeout(delay)
        yield from plane.put(
            cluster.node(node_id), source_ids[node_id], ObjectValue.of_size(nbytes)
        )

    def _scenario() -> Generator:
        producers = [
            sim.process(
                _producer(node_id, delays[node_id]),
                name=f"allreduce-put-{node_id}",
            )
            for node_id in range(num_nodes)
        ]
        if synchronized:
            yield sim.all_of(producers)
        epoch = sim.now
        reduce_proc = sim.process(
            plane.reduce(cluster.node(0), target_id, source_ids, ReduceOp.SUM),
            name="allreduce-call",
        )
        fetchers = [
            sim.process(
                plane.get(cluster.node(node_id), target_id),
                name=f"allreduce-get-{node_id}",
            )
            for node_id in range(num_nodes)
        ]
        yield sim.all_of(fetchers)
        yield reduce_proc
        result["latency"] = sim.now - epoch

    sim.process(_scenario(), name="allreduce-scenario")
    sim.run()
    if flow_stats is not None:
        flow_stats.update(collect_flow_usage(cluster))
    return result["latency"]


# ---------------------------------------------------------------------------
# Allgather / Alltoall (collective-family extension; MoE + batch-norm shapes)
# ---------------------------------------------------------------------------


def _run_static_with_restarts(
    cluster: Cluster,
    make_op,
    num_ranks: int,
) -> float:
    """Run a static collective, restarting the whole job after node failures.

    Static (MPI/Gloo-style) collectives have no intra-operation fault
    tolerance: a failed rank aborts the job and the launcher re-runs it once
    the node rejoins.  Aborted attempts interrupt every rank process so no
    partial state leaks into the retry.
    """
    sim = cluster.sim
    finish: dict[str, float] = {}

    def _rank(op, rank: int) -> Generator:
        rank_result = yield from op.participate(rank)
        return rank_result.finish_time

    def _job() -> Generator:
        while True:
            op = make_op()
            rank_procs = [
                sim.process(_rank(op, rank), name=f"static-rank-{rank}")
                for rank in range(num_ranks)
            ]
            all_done = sim.all_of(rank_procs)
            any_failure = sim.any_of(
                [node.failure_event() for node in cluster.nodes]
            )
            aborted = False
            try:
                yield sim.any_of([all_done, any_failure])
                aborted = not all_done.triggered
            except TransferError:
                aborted = True
            if not aborted:
                finish["t"] = max(all_done.value)
                return
            for proc in rank_procs:
                if proc.is_alive:
                    proc.interrupt("static collective restart")
            while not all(node.alive for node in cluster.nodes):
                dead = next(node for node in cluster.nodes if not node.alive)
                yield dead.recovery_event()
            # The launcher pays one failure-detection delay before it can
            # observe the rejoin and respawn the job — the same delay the
            # object planes' task resubmission pays.
            yield sim.timeout(cluster.config.failure_detection_delay)

    sim.process(_job(), name="static-job")
    sim.run()
    if "t" not in finish:
        raise RuntimeError("static collective did not complete (unrecovered failure?)")
    return finish["t"]


def measure_allgather(
    system: str,
    num_nodes: int,
    nbytes: int,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    failures: Optional[Sequence[FailureEvent]] = None,
    flow_stats: Optional[dict] = None,
) -> float:
    """Latency for every node to hold one object from every other node.

    ``nbytes`` is the per-node contribution.  For the object planes every
    ``Put`` completes before the measurement window opens; each participant
    then gathers all ``n`` objects and the slowest participant defines the
    latency.  The pipelined analytical bound is ``S_total / B + L * log n``
    with ``S_total = n * nbytes`` (each downlink must absorb almost the full
    gathered payload; the broadcast trees add a logarithmic latency term).

    If ``flow_stats`` is given (a dict), it is filled with the run's per-flow
    link utilization report (see :func:`collect_flow_usage`).
    """
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return (num_nodes - 1) * nbytes / network.bandwidth
    if num_nodes < 2:
        raise ValueError("allgather needs at least two nodes")

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    if failures:
        _install_failures(cluster, failures)

    if system in STATIC_SYSTEMS:
        if system == "openmpi":
            make_op = lambda: MPICollectives(cluster).allgather(nbytes)  # noqa: E731
        elif system == "gloo":
            make_op = lambda: GlooCollectives(cluster).allgather(nbytes)  # noqa: E731
        else:
            raise UnsupportedScenarioError(f"{system!r} does not implement allgather")
        latency = _run_static_with_restarts(cluster, make_op, num_nodes)
        if flow_stats is not None:
            flow_stats.update(collect_flow_usage(cluster))
        return latency

    plane = _make_plane(system, cluster, options)
    source_ids = [ObjectID.unique(f"allgather-{i}") for i in range(num_nodes)]
    values = [ObjectValue.of_size(nbytes) for _ in range(num_nodes)]
    finish_times: list[float] = []

    def _producer(node_id: int) -> Generator:
        yield from retry_across_failures(
            cluster,
            node_id,
            lambda: plane.put(cluster.node(node_id), source_ids[node_id], values[node_id]),
        )

    def _gatherer(node_id: int, epoch: float) -> Generator:
        yield from retry_across_failures(
            cluster,
            node_id,
            lambda: plane.allgather(cluster.node(node_id), source_ids),
        )
        finish_times.append(sim.now - epoch)

    def _scenario() -> Generator:
        # Reconstructors go in before any Put so a producer that fails right
        # after its own Put (while others are still putting) is still re-Put.
        if failures:
            for node_id in range(num_nodes):
                sim.process(
                    reconstruct_on_recovery(
                        cluster,
                        plane,
                        node_id,
                        [(source_ids[node_id], values[node_id])],
                    ),
                    name=f"allgather-reconstruct-{node_id}",
                )
        producers = [
            sim.process(_producer(node_id), name=f"allgather-put-{node_id}")
            for node_id in range(num_nodes)
        ]
        yield sim.all_of(producers)
        epoch = sim.now
        gatherers = [
            sim.process(_gatherer(node_id, epoch), name=f"allgather-node-{node_id}")
            for node_id in range(num_nodes)
        ]
        yield sim.all_of(gatherers)

    sim.process(_scenario(), name="allgather-scenario")
    sim.run()
    if len(finish_times) != num_nodes:
        raise RuntimeError("allgather did not complete (unrecovered failure?)")
    if flow_stats is not None:
        flow_stats.update(collect_flow_usage(cluster))
    return max(finish_times)


def _driver_failure_spec(
    collective: str, num_nodes: int, nbytes: int, tag: str
) -> CollectiveSpec:
    """Build the durable spec for one driver-failure measurement."""
    participants = list(range(num_nodes))
    value = lambda: ObjectValue.of_size(nbytes)  # noqa: E731
    if collective == "broadcast":
        return CollectiveSpec.broadcast(
            tag, 0, participants, ObjectID.unique(f"{tag}-obj"), value()
        )
    if collective in ("reduce", "allreduce"):
        sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in participants}
        return CollectiveSpec.reduce(
            tag,
            0,
            participants,
            sources,
            ObjectID.unique(f"{tag}-target"),
            {sources[i]: value() for i in participants},
            ReduceOp.SUM,
            allreduce=collective == "allreduce",
        )
    if collective == "allgather":
        sources = {i: ObjectID.unique(f"{tag}-src{i}") for i in participants}
        return CollectiveSpec.allgather(
            tag, participants, sources, {sources[i]: value() for i in participants}
        )
    if collective == "reduce_scatter":
        matrix = {
            (i, j): ObjectID.unique(f"{tag}-{i}-{j}")
            for i in participants
            for j in participants
        }
        targets = {j: ObjectID.unique(f"{tag}-shard{j}") for j in participants}
        return CollectiveSpec.reduce_scatter(
            tag,
            participants,
            matrix,
            targets,
            {object_id: value() for object_id in matrix.values()},
        )
    if collective == "alltoall":
        matrix = {
            (src, dst): ObjectID.unique(f"{tag}-{src}-{dst}")
            for src in participants
            for dst in participants
            if src != dst
        }
        return CollectiveSpec.alltoall(
            tag, participants, matrix, {object_id: value() for object_id in matrix.values()}
        )
    raise UnsupportedScenarioError(f"unknown collective {collective!r}")


def measure_driver_failure(
    system: str,
    num_nodes: int,
    nbytes: int,
    collective: str = "allreduce",
    fail_at: Optional[float] = None,
    fail_fraction: Optional[float] = None,
    downtime: float = 0.5,
    budget: float = 600.0,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
) -> float:
    """Completion time of one collective whose **caller/root node dies**.

    Node 0 — the root of the rooted collectives and rank 0 of the symmetric
    ones — fails at ``fail_at`` and recovers ``downtime`` seconds later
    (``fail_at=None`` runs failure-free, the baseline).  ``fail_fraction``
    calibrates the failure to land mid-collective: the scenario first runs
    failure-free to learn the system's own duration, then kills the root at
    that fraction of it (the simulation is deterministic, so the calibration
    run is exact).

    The object planes run the collective through the
    :class:`~repro.tasksys.orchestrator.CollectiveOrchestrator`: every share
    is a lineage-recorded driver task, the root share migrates to an alive
    node, and re-executions adopt surviving partials through the directory —
    so recovery costs roughly one failure-detection delay plus the lost
    share's work.  The static systems model the MPI failure semantics: the
    job aborts and the launcher restarts the whole collective from scratch
    once every node is back, so their recovery time is bounded below by the
    downtime plus a full re-run.
    """
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        raise UnsupportedScenarioError("driver failure has no analytic optimum")
    if num_nodes < 2:
        raise ValueError("driver-failure scenarios need at least two nodes")
    if fail_fraction is not None:
        if fail_at is not None:
            raise ValueError("pass either fail_at or fail_fraction, not both")
        if not 0.0 < fail_fraction < 1.0:
            raise ValueError("fail_fraction must be in (0, 1)")
        baseline = measure_driver_failure(
            system,
            num_nodes,
            nbytes,
            collective=collective,
            network=network,
            options=options,
        )
        fail_at = fail_fraction * baseline

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    if fail_at is not None:
        cluster.schedule_failure(0, at=fail_at, recover_at=fail_at + downtime)

    if system in STATIC_SYSTEMS:
        static_makers = {
            ("openmpi", "broadcast"): lambda: MPICollectives(cluster).broadcast(
                nbytes, root=0
            ),
            ("openmpi", "reduce"): lambda: MPICollectives(cluster).reduce(nbytes, root=0),
            ("openmpi", "allreduce"): lambda: MPICollectives(cluster).allreduce(nbytes),
            ("openmpi", "allgather"): lambda: MPICollectives(cluster).allgather(nbytes),
            ("openmpi", "alltoall"): lambda: MPICollectives(cluster).alltoall(nbytes),
            ("gloo", "broadcast"): lambda: GlooCollectives(cluster).broadcast(
                nbytes, root=0
            ),
            ("gloo", "allreduce"): lambda: GlooCollectives(
                cluster
            ).allreduce_ring_chunked(nbytes),
            ("gloo", "allgather"): lambda: GlooCollectives(cluster).allgather(nbytes),
            ("gloo", "alltoall"): lambda: GlooCollectives(cluster).alltoall(nbytes),
        }
        make_op = static_makers.get((system, collective))
        if make_op is None:
            raise UnsupportedScenarioError(
                f"{system!r} does not implement {collective!r}"
            )
        return _run_static_with_restarts(cluster, make_op, num_nodes)

    plane = _make_plane(system, cluster, options)
    task_system = TaskSystem(cluster, plane)
    orchestrator = CollectiveOrchestrator(task_system)
    spec = _driver_failure_spec(collective, num_nodes, nbytes, f"drvfail-{system}")
    finish: dict[str, float] = {}

    def _driver() -> Generator:
        outcome = yield from orchestrator.invoke(spec)
        finish["t"] = outcome.completion_time

    sim.process(_driver(), name="driver-failure-scenario")
    # Bounded: a wedged collective keeps scheduling retry timeouts, so an
    # unbounded run would spin forever instead of reaching the error below.
    sim.run(until=budget)
    if "t" not in finish:
        raise RuntimeError(
            f"collective did not complete within {budget} simulated seconds"
        )
    return finish["t"]


def measure_control_plane_failure(
    num_nodes: int,
    nbytes: int,
    collective: str = "allgather",
    target: str = "directory",
    shard_id: int = 0,
    fail_at: Optional[float] = None,
    fail_fraction: Optional[float] = None,
    budget: float = 600.0,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    stats: Optional[dict] = None,
) -> float:
    """Completion time of one collective whose **control plane dies** mid-run.

    The collective runs on the Hoplite object plane through the
    :class:`~repro.tasksys.orchestrator.CollectiveOrchestrator`; at
    ``fail_at`` the scenario kills the chosen control-plane component:

    * ``target="directory"`` — one directory shard (``shard_id``) loses its
      volatile record table; clients park on the shard's recovery event
      while the shard replays its WAL (checkpoint + tail).
    * ``target="lineage"`` — the lineage/ownership services are wiped and
      rebuilt by :meth:`~repro.tasksys.orchestrator.CollectiveOrchestrator.
      replay_after_restart`; in-flight specs resume at their last durable
      incarnation.
    * ``target="both"`` — both at once.

    ``fail_fraction`` calibrates the kill to land mid-collective exactly as
    in :func:`measure_driver_failure`.  ``fail_at=None`` runs failure-free
    (the baseline).

    If ``stats`` is given (a dict), it is filled with the run's recovery
    accounting, including ``static_restart`` — the completion time a control
    plane *without* WAL replay would post, where losing the directory or the
    lineage log aborts the job and the launcher reruns the collective from
    scratch after one failure-detection delay: ``fail_at + detection +
    baseline``.  Replay-based recovery beating that number is the scenario's
    headline claim.
    """
    network = network or NetworkConfig()
    if target not in ("directory", "lineage", "both"):
        raise ValueError("target must be 'directory', 'lineage', or 'both'")
    if num_nodes < 2:
        raise ValueError("control-plane scenarios need at least two nodes")
    baseline: Optional[float] = None
    if fail_fraction is not None:
        if fail_at is not None:
            raise ValueError("pass either fail_at or fail_fraction, not both")
        if not 0.0 < fail_fraction < 1.0:
            raise ValueError("fail_fraction must be in (0, 1)")
        baseline = measure_control_plane_failure(
            num_nodes,
            nbytes,
            collective=collective,
            target=target,
            shard_id=shard_id,
            network=network,
            options=options,
        )
        fail_at = fail_fraction * baseline

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    plane = _make_plane("hoplite", cluster, options)
    runtime = plane.runtime
    task_system = TaskSystem(cluster, plane)
    orchestrator = CollectiveOrchestrator(task_system)
    spec = _driver_failure_spec(collective, num_nodes, nbytes, "ctlfail-hoplite")
    finish: dict[str, float] = {}

    def _killer() -> Generator:
        yield sim.timeout(fail_at)
        if target in ("directory", "both"):
            runtime.directory.fail_shard(shard_id % len(runtime.directory.shards))
        if target in ("lineage", "both"):
            orchestrator.kill_control_plane()

    if fail_at is not None:
        sim.process(_killer(), name="control-plane-killer")

    def _driver() -> Generator:
        outcome = yield from orchestrator.invoke(spec)
        finish["t"] = outcome.completion_time

    sim.process(_driver(), name="control-plane-failure-scenario")
    sim.run(until=budget)
    if "t" not in finish:
        raise RuntimeError(
            f"collective did not complete within {budget} simulated seconds"
        )
    if stats is not None:
        directory = runtime.directory
        stats["fail_at"] = fail_at
        stats["baseline"] = baseline
        stats["shard_kills"] = directory.shard_kills
        stats["replay_applied"] = [
            shard.last_replay_applied for shard in directory.shards
        ]
        stats["replay_self_check"] = [
            shard.replay_self_check for shard in directory.shards
        ]
        stats["control_plane_kills"] = orchestrator.metrics["control_plane_kills"]
        stats["control_plane_resubmissions"] = orchestrator.metrics[
            "control_plane_resubmissions"
        ]
        if baseline is not None and fail_at is not None:
            stats["static_restart"] = (
                fail_at + cluster.config.failure_detection_delay + baseline
            )
    return finish["t"]


def measure_alltoall(
    system: str,
    num_nodes: int,
    nbytes: int,
    network: Optional[NetworkConfig] = None,
    options: Optional[HopliteOptions] = None,
    failures: Optional[Sequence[FailureEvent]] = None,
    flow_stats: Optional[dict] = None,
) -> float:
    """Latency of a personalized all-to-all exchange (``nbytes`` per pair).

    Every node contributes one object per peer; the measurement covers the
    whole exchange (sends included, matching ``MPI_Alltoall`` semantics) and
    ends when the slowest participant holds its ``n - 1`` incoming blocks.

    If ``flow_stats`` is given (a dict), it is filled with the run's per-flow
    link utilization report (see :func:`collect_flow_usage`).
    """
    _check_system(system)
    network = network or NetworkConfig()
    if system == "optimal":
        return (num_nodes - 1) * nbytes / network.bandwidth
    if num_nodes < 2:
        raise ValueError("alltoall needs at least two nodes")

    cluster = _make_cluster(num_nodes, network)
    sim = cluster.sim
    if failures:
        _install_failures(cluster, failures)

    if system in STATIC_SYSTEMS:
        if system == "openmpi":
            make_op = lambda: MPICollectives(cluster).alltoall(nbytes)  # noqa: E731
        elif system == "gloo":
            make_op = lambda: GlooCollectives(cluster).alltoall(nbytes)  # noqa: E731
        else:
            raise UnsupportedScenarioError(f"{system!r} does not implement alltoall")
        latency = _run_static_with_restarts(cluster, make_op, num_nodes)
        if flow_stats is not None:
            flow_stats.update(collect_flow_usage(cluster))
        return latency

    plane = _make_plane(system, cluster, options)
    pair_ids = {
        (src, dst): ObjectID.unique(f"alltoall-{src}-{dst}")
        for src in range(num_nodes)
        for dst in range(num_nodes)
        if src != dst
    }
    finish_times: list[float] = []

    def _sends(node_id: int) -> list[tuple[ObjectID, ObjectValue]]:
        return [
            (pair_ids[(node_id, dst)], ObjectValue.of_size(nbytes))
            for dst in range(num_nodes)
            if dst != node_id
        ]

    def _participant(node_id: int, epoch: float) -> Generator:
        recv_ids = [
            pair_ids[(src, node_id)] for src in range(num_nodes) if src != node_id
        ]
        yield from retry_across_failures(
            cluster,
            node_id,
            lambda: plane.alltoall(cluster.node(node_id), _sends(node_id), recv_ids),
        )
        finish_times.append(sim.now - epoch)

    def _scenario() -> Generator:
        if failures:
            for node_id in range(num_nodes):
                sim.process(
                    reconstruct_on_recovery(cluster, plane, node_id, _sends(node_id)),
                    name=f"alltoall-reconstruct-{node_id}",
                )
        epoch = sim.now
        participants = [
            sim.process(_participant(node_id, epoch), name=f"alltoall-node-{node_id}")
            for node_id in range(num_nodes)
        ]
        yield sim.all_of(participants)

    sim.process(_scenario(), name="alltoall-scenario")
    sim.run()
    if len(finish_times) != num_nodes:
        raise RuntimeError("alltoall did not complete (unrecovered failure?)")
    if flow_stats is not None:
        flow_stats.update(collect_flow_usage(cluster))
    return max(finish_times)
