"""Workload catalog: model profiles, arrival processes, failure schedules."""

from repro.workloads.models import (
    MODEL_CATALOG,
    SERVING_ENSEMBLE,
    SERVING_QUERY_BYTES,
    ModelProfile,
    model_profile,
)

__all__ = [
    "MODEL_CATALOG",
    "SERVING_ENSEMBLE",
    "SERVING_QUERY_BYTES",
    "ModelProfile",
    "model_profile",
]
