"""Model profiles used by the application-level experiments.

The paper's application experiments are communication-bound: what matters for
reproducing them is each model's parameter size (the object that is reduced
and broadcast every round) and a plausible per-round compute time standing in
for the GPU work (forward/backward or inference).  The compute times below
are calibrated to the V100 class hardware the paper used; they are constants
on both sides of every comparison, so the speedup shapes do not depend on
their exact values.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024


@dataclass(frozen=True)
class ModelProfile:
    """Size and compute characteristics of one model."""

    name: str
    #: size of the parameter/gradient object moved over the network.
    param_bytes: int
    #: simulated compute time for one training round on one worker (seconds).
    round_compute_time: float
    #: simulated compute time for one inference batch (seconds).
    inference_time: float = 0.05
    #: training samples processed per worker per round.
    samples_per_round: int = 64

    def __post_init__(self) -> None:
        if self.param_bytes <= 0:
            raise ValueError("param_bytes must be positive")
        if self.round_compute_time < 0 or self.inference_time < 0:
            raise ValueError("compute times must be non-negative")


MODEL_CATALOG: dict[str, ModelProfile] = {
    # Figure 9 / Figure 13 training models (sizes from Section 5.2).
    "alexnet": ModelProfile(
        name="alexnet", param_bytes=233 * MB, round_compute_time=0.10, inference_time=0.020
    ),
    "vgg16": ModelProfile(
        name="vgg16", param_bytes=528 * MB, round_compute_time=0.35, inference_time=0.060
    ),
    "resnet50": ModelProfile(
        name="resnet50", param_bytes=97 * MB, round_compute_time=0.22, inference_time=0.045
    ),
    # Figure 10: a two-layer feed-forward policy network with 64 MB of parameters.
    "rl_policy": ModelProfile(
        name="rl_policy", param_bytes=64 * MB, round_compute_time=0.25, inference_time=0.010
    ),
    # Figure 11 / 12a ensemble members (approximate parameter sizes).
    "resnet34": ModelProfile(
        name="resnet34", param_bytes=87 * MB, round_compute_time=0.20, inference_time=0.040
    ),
    "efficientnet_b1": ModelProfile(
        name="efficientnet_b1", param_bytes=31 * MB, round_compute_time=0.18, inference_time=0.050
    ),
    "efficientnet_b2": ModelProfile(
        name="efficientnet_b2", param_bytes=36 * MB, round_compute_time=0.20, inference_time=0.055
    ),
    "mobilenet_v2": ModelProfile(
        name="mobilenet_v2", param_bytes=14 * MB, round_compute_time=0.10, inference_time=0.025
    ),
    "shufflenet_v2_x0_5": ModelProfile(
        name="shufflenet_v2_x0_5", param_bytes=5 * MB, round_compute_time=0.08, inference_time=0.020
    ),
    "shufflenet_v2_x1_0": ModelProfile(
        name="shufflenet_v2_x1_0", param_bytes=9 * MB, round_compute_time=0.09, inference_time=0.022
    ),
    "squeezenet_v1_1": ModelProfile(
        name="squeezenet_v1_1", param_bytes=5 * MB, round_compute_time=0.07, inference_time=0.018
    ),
}

#: the eight-model ensemble served in Figures 11 and 12a.
SERVING_ENSEMBLE: tuple[str, ...] = (
    "alexnet",
    "resnet34",
    "efficientnet_b1",
    "efficientnet_b2",
    "mobilenet_v2",
    "shufflenet_v2_x0_5",
    "shufflenet_v2_x1_0",
    "squeezenet_v1_1",
)

#: one serving query: a batch of 64 images of 256x256x3 float32 pixels (Section 5.4).
SERVING_QUERY_BYTES: int = 64 * 256 * 256 * 3 * 4


def model_profile(name: str) -> ModelProfile:
    """Look up a model profile by name."""
    try:
        return MODEL_CATALOG[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_CATALOG)}"
        ) from exc
