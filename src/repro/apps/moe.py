"""Mixture-of-Experts expert routing: an alltoall-dominated workload.

One expert lives on every node.  Each training iteration is the classic MoE
communication pattern:

1. **dispatch** — every worker partitions its token batch by destination
   expert and exchanges the shards with an all-to-all (one object per
   (worker, expert) pair);
2. **expert compute** — each expert processes the tokens it received;
3. **combine** — the processed tokens return to their source workers with a
   second all-to-all;
4. **gate sync** — the small per-expert gate/load statistics are allgathered
   so every worker can rebalance its routing (this rides Hoplite's
   small-object inline fast path, Section 3.2).

The alltoalls dominate: with the naive plane each exchange serializes puts
and gets with per-operation overhead and no pipelining, while Hoplite
overlaps every send and receive block-by-block (Section 3.3).

Expert loads can be made **heterogeneous**: ``expert_skew`` routes each
worker's token batch across experts with a Zipf-like weighting (rotated
every iteration so the hot expert moves around), which makes the alltoall
block sizes non-uniform — the regime where Hoplite's per-pair streaming
beats schedules that assume equal blocks.  ``capacity_factor`` models the
standard MoE capacity trick: an expert accepts at most
``capacity_factor x`` the mean per-expert load and the overflow tokens are
dropped at the sender (smaller shards, ``dropped_bytes`` accounted in the
metrics).

A :class:`~repro.apps.common.FailureSchedule` may be attached; a worker that
loses its node retries its share of the current iteration after the node
rejoins (its re-``Put``s double as the framework's object reconstruction),
and the other workers' transfers ride through via the directory's failure
recovery (Section 3.5.1).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.apps.common import (
    AppResult,
    FailureSchedule,
    apply_failures,
    make_cluster,
    make_plane,
    retry_across_failures,
)
from repro.net.config import NetworkConfig
from repro.sim import Event
from repro.store.objects import ObjectID, ObjectValue

KB = 1024
MB = 1024 * 1024

#: bytes of tokens each worker routes to each expert per iteration.
DEFAULT_SHARD_BYTES = 4 * MB
#: bytes of per-expert gate statistics (small-object fast path).
DEFAULT_GATE_BYTES = 32 * KB
#: expert forward-pass throughput over the received token bytes.
DEFAULT_EXPERT_BANDWIDTH = 5.0e9


def routing_matrix(
    num_nodes: int,
    shard_bytes: int,
    expert_skew: float,
    iteration: int,
) -> Dict[Tuple[int, int], int]:
    """Bytes worker ``w`` routes to expert ``e`` in one iteration.

    Each worker splits its batch (``shard_bytes * (num_nodes - 1)``, the
    uniform total) across the other experts with Zipf-like weights
    ``1 / (1 + rank)**expert_skew``; the expert ranking rotates by
    ``iteration`` so the hot expert moves around the cluster.  ``skew == 0``
    reproduces the uniform exchange exactly.
    """
    if num_nodes < 2:
        raise ValueError("routing needs at least two nodes")
    batch_bytes = shard_bytes * (num_nodes - 1)
    route: Dict[Tuple[int, int], int] = {}
    for worker in range(num_nodes):
        experts = [e for e in range(num_nodes) if e != worker]
        weights = [
            1.0 / (1.0 + ((e + iteration) % num_nodes)) ** expert_skew for e in experts
        ]
        total = sum(weights)
        for expert, weight in zip(experts, weights):
            route[(worker, expert)] = int(batch_bytes * weight / total)
    return route


def apply_capacity_factor(
    route: Dict[Tuple[int, int], int],
    num_nodes: int,
    capacity_factor: Optional[float],
) -> Tuple[Dict[Tuple[int, int], int], int]:
    """Drop overflow tokens at the sender; returns (clamped route, dropped bytes).

    An expert accepts at most ``capacity_factor x`` the mean per-expert
    load; every sender's shard toward an overloaded expert is scaled down
    proportionally, which is how capacity-factor dropping behaves in real
    MoE systems (token choice is random, so drops are proportional).
    """
    if capacity_factor is None:
        return route, 0
    if capacity_factor <= 0:
        raise ValueError("capacity_factor must be positive")
    loads = {e: 0 for e in range(num_nodes)}
    for (_worker, expert), nbytes in route.items():
        loads[expert] += nbytes
    mean_load = sum(loads.values()) / num_nodes
    capacity = capacity_factor * mean_load
    clamped: Dict[Tuple[int, int], int] = {}
    dropped = 0
    for (worker, expert), nbytes in route.items():
        if loads[expert] > capacity:
            kept = int(nbytes * capacity / loads[expert])
            dropped += nbytes - kept
            nbytes = kept
        clamped[(worker, expert)] = nbytes
    return clamped, dropped


def run_moe_routing(
    num_nodes: int,
    system: str = "hoplite",
    num_iterations: int = 3,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
    gate_bytes: int = DEFAULT_GATE_BYTES,
    expert_bandwidth: float = DEFAULT_EXPERT_BANDWIDTH,
    expert_skew: float = 0.0,
    capacity_factor: Optional[float] = None,
    network: Optional[NetworkConfig] = None,
    failure: Optional[FailureSchedule] = None,
) -> AppResult:
    """Run ``num_iterations`` of MoE routing and report iterations/second.

    ``expert_skew > 0`` skews the routing matrices (heterogeneous expert
    loads, non-uniform alltoall block sizes); ``capacity_factor`` drops
    overflow tokens at the senders.  The defaults reproduce the original
    uniform exchange bit for bit.
    """
    if num_nodes < 2:
        raise ValueError("MoE routing needs at least two nodes")
    if expert_skew < 0:
        raise ValueError("expert_skew must be non-negative")
    cluster = make_cluster(num_nodes, network)
    plane = make_plane(system, cluster)
    apply_failures(cluster, failure)
    sim = cluster.sim

    # Per-iteration routing plans: worker -> expert byte matrix, with the
    # capacity clamp applied.  Deterministic, so a worker re-running an
    # iteration after a failure re-creates identical shard sizes.
    plans: list[Dict[Tuple[int, int], int]] = []
    dropped_bytes = 0
    peak_load = 0
    for iteration in range(num_iterations):
        route = routing_matrix(num_nodes, shard_bytes, expert_skew, iteration)
        loads = {e: 0 for e in range(num_nodes)}
        for (_w, expert), nbytes in route.items():
            loads[expert] += nbytes
        peak_load = max(peak_load, max(loads.values()))
        route, dropped = apply_capacity_factor(route, num_nodes, capacity_factor)
        dropped_bytes += dropped
        plans.append(route)
    mean_load = shard_bytes * (num_nodes - 1)
    load_imbalance = peak_load / mean_load if mean_load else 1.0

    iteration_latencies: list[float] = []
    total_retries = {"count": 0}
    #: per-iteration completion barrier: all workers check in, last one
    #: records the iteration latency.
    barriers: list[dict] = [
        {"arrived": 0, "event": Event(sim), "start": None} for _ in range(num_iterations)
    ]

    def _pair_id(kind: str, iteration: int, src: int, dst: int) -> ObjectID:
        return ObjectID.of(f"moe-{kind}-i{iteration}-{src}-{dst}")

    def _gate_id(iteration: int, worker: int) -> ObjectID:
        return ObjectID.of(f"moe-gate-i{iteration}-{worker}")

    def _shard_bytes(kind: str, iteration: int, src: int, dst: int) -> int:
        # Dispatch moves route[(worker, expert)] bytes from worker to expert;
        # combine returns the processed tokens, so its matrix is the
        # transpose of dispatch's.
        route = plans[iteration]
        return route[(src, dst)] if kind == "disp" else route[(dst, src)]

    def _exchange(node_id: int, kind: str, iteration: int) -> Generator:
        sends = [
            (
                _pair_id(kind, iteration, node_id, dst),
                ObjectValue.of_size(_shard_bytes(kind, iteration, node_id, dst)),
            )
            for dst in range(num_nodes)
            if dst != node_id
        ]
        recv_ids = [
            _pair_id(kind, iteration, src, node_id)
            for src in range(num_nodes)
            if src != node_id
        ]
        result = yield from plane.alltoall(cluster.node(node_id), sends, recv_ids)
        return result

    def _iteration(node_id: int, iteration: int) -> Generator:
        node = cluster.node(node_id)
        # 1. dispatch tokens to the experts.
        yield from _exchange(node_id, "disp", iteration)
        # 2. expert forward pass over the tokens this expert received.
        received = sum(
            plans[iteration][(src, node_id)]
            for src in range(num_nodes)
            if src != node_id
        )
        yield sim.timeout(received / expert_bandwidth)
        # 3. combine: processed tokens return to their sources.
        yield from _exchange(node_id, "comb", iteration)
        # 4. gate statistics allgather (small objects).
        yield from plane.put(
            node, _gate_id(iteration, node_id), ObjectValue.of_size(gate_bytes)
        )
        yield from plane.allgather(
            node, [_gate_id(iteration, w) for w in range(num_nodes)]
        )

    def _count_retry() -> None:
        total_retries["count"] += 1

    def _worker(node_id: int) -> Generator:
        for iteration in range(num_iterations):
            barrier = barriers[iteration]
            if barrier["start"] is None:
                barrier["start"] = sim.now
            yield from retry_across_failures(
                cluster,
                node_id,
                lambda iteration=iteration: _iteration(node_id, iteration),
                on_retry=_count_retry,
            )
            barrier["arrived"] += 1
            if barrier["arrived"] >= num_nodes:
                iteration_latencies.append(sim.now - barrier["start"])
                if not barrier["event"].triggered:
                    barrier["event"].succeed(sim.now)
            yield barrier["event"]

    workers = [
        sim.process(_worker(node_id), name=f"moe-worker-{node_id}")
        for node_id in range(num_nodes)
    ]
    cluster.run()

    incomplete = [proc for proc in workers if proc.is_alive]
    if incomplete:
        raise RuntimeError(
            f"{len(incomplete)} MoE workers never finished (unrecovered failure?)"
        )
    duration = sim.now
    throughput = num_iterations / duration if duration > 0 else 0.0
    return AppResult(
        app="moe_routing",
        system=system,
        num_nodes=num_nodes,
        duration=duration,
        throughput=throughput,
        iteration_latencies=iteration_latencies,
        metrics={
            "shard_bytes": shard_bytes,
            "gate_bytes": gate_bytes,
            "events_processed": sim.events_processed,
            "retries": total_retries["count"],
            "expert_skew": expert_skew,
            "capacity_factor": capacity_factor,
            "dropped_bytes": dropped_bytes,
            #: peak per-expert load over the pre-drop mean (1.0 == uniform).
            "load_imbalance": load_imbalance,
            "fastpath": cluster.fastpath_stats.as_dict(),
        },
    )
