"""Mixture-of-Experts expert routing: an alltoall-dominated workload.

One expert lives on every node.  Each training iteration is the classic MoE
communication pattern:

1. **dispatch** — every worker partitions its token batch by destination
   expert and exchanges the shards with an all-to-all (one object per
   (worker, expert) pair);
2. **expert compute** — each expert processes the tokens it received;
3. **combine** — the processed tokens return to their source workers with a
   second all-to-all;
4. **gate sync** — the small per-expert gate/load statistics are allgathered
   so every worker can rebalance its routing (this rides Hoplite's
   small-object inline fast path, Section 3.2).

The alltoalls dominate: with the naive plane each exchange serializes puts
and gets with per-operation overhead and no pipelining, while Hoplite
overlaps every send and receive block-by-block (Section 3.3).

A :class:`~repro.apps.common.FailureSchedule` may be attached; a worker that
loses its node retries its share of the current iteration after the node
rejoins (its re-``Put``s double as the framework's object reconstruction),
and the other workers' transfers ride through via the directory's failure
recovery (Section 3.5.1).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.common import (
    AppResult,
    FailureSchedule,
    apply_failures,
    make_cluster,
    make_plane,
    retry_across_failures,
)
from repro.net.config import NetworkConfig
from repro.sim import Event
from repro.store.objects import ObjectID, ObjectValue

KB = 1024
MB = 1024 * 1024

#: bytes of tokens each worker routes to each expert per iteration.
DEFAULT_SHARD_BYTES = 4 * MB
#: bytes of per-expert gate statistics (small-object fast path).
DEFAULT_GATE_BYTES = 32 * KB
#: expert forward-pass throughput over the received token bytes.
DEFAULT_EXPERT_BANDWIDTH = 5.0e9


def run_moe_routing(
    num_nodes: int,
    system: str = "hoplite",
    num_iterations: int = 3,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
    gate_bytes: int = DEFAULT_GATE_BYTES,
    expert_bandwidth: float = DEFAULT_EXPERT_BANDWIDTH,
    network: Optional[NetworkConfig] = None,
    failure: Optional[FailureSchedule] = None,
) -> AppResult:
    """Run ``num_iterations`` of MoE routing and report iterations/second."""
    if num_nodes < 2:
        raise ValueError("MoE routing needs at least two nodes")
    cluster = make_cluster(num_nodes, network)
    plane = make_plane(system, cluster)
    apply_failures(cluster, failure)
    sim = cluster.sim

    iteration_latencies: list[float] = []
    total_retries = {"count": 0}
    #: per-iteration completion barrier: all workers check in, last one
    #: records the iteration latency.
    barriers: list[dict] = [
        {"arrived": 0, "event": Event(sim), "start": None} for _ in range(num_iterations)
    ]

    def _pair_id(kind: str, iteration: int, src: int, dst: int) -> ObjectID:
        return ObjectID.of(f"moe-{kind}-i{iteration}-{src}-{dst}")

    def _gate_id(iteration: int, worker: int) -> ObjectID:
        return ObjectID.of(f"moe-gate-i{iteration}-{worker}")

    def _exchange(node_id: int, kind: str, iteration: int) -> Generator:
        sends = [
            (_pair_id(kind, iteration, node_id, dst), ObjectValue.of_size(shard_bytes))
            for dst in range(num_nodes)
            if dst != node_id
        ]
        recv_ids = [
            _pair_id(kind, iteration, src, node_id)
            for src in range(num_nodes)
            if src != node_id
        ]
        result = yield from plane.alltoall(cluster.node(node_id), sends, recv_ids)
        return result

    def _iteration(node_id: int, iteration: int) -> Generator:
        node = cluster.node(node_id)
        # 1. dispatch tokens to the experts.
        yield from _exchange(node_id, "disp", iteration)
        # 2. expert forward pass over the received tokens.
        received = (num_nodes - 1) * shard_bytes
        yield sim.timeout(received / expert_bandwidth)
        # 3. combine: processed tokens return to their sources.
        yield from _exchange(node_id, "comb", iteration)
        # 4. gate statistics allgather (small objects).
        yield from plane.put(
            node, _gate_id(iteration, node_id), ObjectValue.of_size(gate_bytes)
        )
        yield from plane.allgather(
            node, [_gate_id(iteration, w) for w in range(num_nodes)]
        )

    def _count_retry() -> None:
        total_retries["count"] += 1

    def _worker(node_id: int) -> Generator:
        for iteration in range(num_iterations):
            barrier = barriers[iteration]
            if barrier["start"] is None:
                barrier["start"] = sim.now
            yield from retry_across_failures(
                cluster,
                node_id,
                lambda iteration=iteration: _iteration(node_id, iteration),
                on_retry=_count_retry,
            )
            barrier["arrived"] += 1
            if barrier["arrived"] >= num_nodes:
                iteration_latencies.append(sim.now - barrier["start"])
                if not barrier["event"].triggered:
                    barrier["event"].succeed(sim.now)
            yield barrier["event"]

    workers = [
        sim.process(_worker(node_id), name=f"moe-worker-{node_id}")
        for node_id in range(num_nodes)
    ]
    cluster.run()

    incomplete = [proc for proc in workers if proc.is_alive]
    if incomplete:
        raise RuntimeError(
            f"{len(incomplete)} MoE workers never finished (unrecovered failure?)"
        )
    duration = sim.now
    throughput = num_iterations / duration if duration > 0 else 0.0
    return AppResult(
        app="moe_routing",
        system=system,
        num_nodes=num_nodes,
        duration=duration,
        throughput=throughput,
        iteration_latencies=iteration_latencies,
        metrics={
            "shard_bytes": shard_bytes,
            "gate_bytes": gate_bytes,
            "retries": total_retries["count"],
        },
    )
