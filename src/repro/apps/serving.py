"""Serving an ensemble of ML models (Section 5.4, Figures 11 and 12a).

Eight image-classification models are served, one model per node on an
8-node cluster or one model on each of two replica nodes on a 16-node
cluster.  Every query carries a batch of 64 images; the query object is
broadcast to every serving node, each node runs its model, and the small
per-model predictions are gathered back for a majority vote.

The broadcast of the query batch is the communication that matters: with the
naive plane the frontend's uplink serializes one copy per model node, while
Hoplite relays the query through the earlier receivers.

For the fault-tolerance experiment a failure schedule can be attached: the
failed replica is skipped while it is down (queries keep completing, as in
Figure 12a) and, after it rejoins, its first query re-fetches the model
weights it lost, producing the brief latency bump the paper shows.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.apps.common import AppResult, FailureSchedule, apply_failures, make_cluster, make_plane
from repro.net.config import NetworkConfig
from repro.store.objects import ObjectID, ObjectValue
from repro.tasksys.system import TaskError, TaskSystem
from repro.workloads.models import SERVING_ENSEMBLE, SERVING_QUERY_BYTES, model_profile

#: size of one model's classification output for a 64-image batch.
PREDICTION_BYTES = 64 * 1024


def _inference_task(ctx, query_value: ObjectValue, weights_value: ObjectValue, inference_time: float) -> Generator:
    """Run one model on the query batch and emit its predictions."""
    yield ctx.compute(inference_time)
    return ObjectValue.of_size(PREDICTION_BYTES)


def run_model_serving(
    num_nodes: int,
    system: str = "hoplite",
    num_queries: int = 20,
    ensemble: Sequence[str] = SERVING_ENSEMBLE,
    network: Optional[NetworkConfig] = None,
    failure: Optional[FailureSchedule] = None,
    query_bytes: int = SERVING_QUERY_BYTES,
) -> AppResult:
    """Serve ``num_queries`` ensemble queries and report queries/second."""
    if num_nodes < len(ensemble):
        raise ValueError(
            f"need at least {len(ensemble)} nodes to serve {len(ensemble)} models"
        )
    cluster = make_cluster(num_nodes, network)
    plane = make_plane(system, cluster)
    apply_failures(cluster, failure)
    task_system = TaskSystem(cluster, plane)
    sim = cluster.sim

    profiles = [model_profile(name) for name in ensemble]
    # Replica placement: round-robin models over nodes, so the 8-node cluster
    # serves one replica per model and the 16-node cluster serves two.
    replicas: list[tuple[int, int]] = []  # (model_index, node_id)
    for node_id in range(num_nodes):
        replicas.append((node_id % len(profiles), node_id))

    query_latencies: list[float] = []
    summary: dict = {}

    def driver() -> Generator:
        frontend = cluster.node(0)
        # Each replica loads (Puts) its model weights once at start-up.
        weight_ids: dict[int, ObjectID] = {}
        weight_incarnations: dict[int, int] = {}

        def _load_weights(node_id: int, model_index: int) -> Generator:
            profile = profiles[model_index]
            weights_id = ObjectID.unique(f"weights-{profile.name}-n{node_id}")
            yield from plane.put(
                cluster.node(node_id), weights_id, ObjectValue.of_size(profile.param_bytes)
            )
            weight_ids[node_id] = weights_id
            weight_incarnations[node_id] = cluster.node(node_id).incarnation

        for model_index, node_id in replicas:
            yield from _load_weights(node_id, model_index)

        start = sim.now
        for query_index in range(num_queries):
            query_start = sim.now
            query_id = ObjectID.unique(f"query-{query_index}")
            yield from plane.put(frontend, query_id, ObjectValue.of_size(query_bytes))

            prediction_refs = []
            for model_index, node_id in replicas:
                node = cluster.node(node_id)
                if not node.alive:
                    continue  # skip failed replicas; the vote proceeds without them
                if weight_incarnations.get(node_id) != node.incarnation:
                    # The replica rejoined after a failure: reload its weights.
                    yield from _load_weights(node_id, model_index)
                profile = profiles[model_index]
                ref = task_system.submit(
                    _inference_task,
                    args=(
                        task_system_ref(query_id),
                        task_system_ref(weight_ids[node_id]),
                        profile.inference_time,
                    ),
                    node=node_id,
                    name=f"infer-{profile.name}-q{query_index}",
                    max_restarts=0,
                )
                prediction_refs.append(ref)

            # Gather whatever predictions complete; replicas that die
            # mid-query are simply excluded from this query's vote.
            for ref in prediction_refs:
                try:
                    yield from task_system.wait([ref], num_returns=1)
                    yield from task_system.get(ref)
                except TaskError:
                    continue
            yield sim.timeout(0.001)  # majority vote
            query_latencies.append(sim.now - query_start)
        summary["duration"] = sim.now - start

    sim.process(driver(), name="serving-driver")
    cluster.run()

    duration = summary.get("duration", sim.now)
    throughput = num_queries / duration if duration > 0 else 0.0
    return AppResult(
        app="model_serving",
        system=system,
        num_nodes=num_nodes,
        duration=duration,
        throughput=throughput,
        iteration_latencies=query_latencies,
        metrics={
            "ensemble_size": len(profiles),
            "replicas": len(replicas),
            "query_bytes": query_bytes,
            **task_system.metrics.as_dict(),
        },
    )


def task_system_ref(object_id: ObjectID):
    """Wrap a raw ObjectID as an argument reference for a task submission."""
    from repro.tasksys.refs import ObjectRef

    return ObjectRef(object_id=object_id, producer_task_id=None)
