"""Asynchronous SGD with a parameter server (Section 5.2, Figures 9 and 12b).

The driver (node 0) holds the parameters.  Every worker repeatedly fetches
the current weights, computes a gradient on its shard of data, and publishes
the gradient object.  Each server iteration reduces the first
``ceil(workers / 2)`` gradients to become available, applies the update, and
broadcasts the new weights to exactly the workers whose gradients were
consumed — the dynamic pattern of Figure 1b.

With Hoplite the reduce is a streaming tree reduce and the broadcast is
receiver driven; with the Ray/Dask plane the parameter server fetches every
gradient itself and every worker fetches the weights from the server, which
saturates the server's NIC — the bottleneck the paper identifies.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.apps.common import AppResult, FailureSchedule, apply_failures, make_cluster, make_plane
from repro.net.config import NetworkConfig
from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.tasksys.system import TaskSystem
from repro.workloads.models import ModelProfile, model_profile


def _gradient_task(ctx, weights_value: ObjectValue, model: ModelProfile) -> Generator:
    """One worker round: consume the weights, compute, emit a gradient."""
    yield ctx.compute(model.round_compute_time)
    return ObjectValue.of_size(model.param_bytes)


def run_async_sgd(
    num_nodes: int,
    model: "ModelProfile | str",
    system: str = "hoplite",
    num_iterations: int = 10,
    network: Optional[NetworkConfig] = None,
    failure: Optional[FailureSchedule] = None,
    server_update_time: float = 0.01,
) -> AppResult:
    """Run the asynchronous parameter-server workload and report throughput."""
    if isinstance(model, str):
        model = model_profile(model)
    if num_nodes < 2:
        raise ValueError("async SGD needs a server node and at least one worker")
    cluster = make_cluster(num_nodes, network)
    plane = make_plane(system, cluster)
    apply_failures(cluster, failure)
    task_system = TaskSystem(cluster, plane)
    sim = cluster.sim

    worker_nodes = list(range(1, num_nodes))
    batch = max(1, math.ceil(len(worker_nodes) / 2))
    iteration_latencies: list[float] = []
    summary: dict = {}

    def driver() -> Generator:
        server = cluster.node(0)
        weights_ref = yield from task_system.put(
            ObjectValue.of_size(model.param_bytes), ObjectID.unique("weights")
        )
        # Kick off one gradient task per worker against the initial weights.
        outstanding: dict[ObjectID, int] = {}
        for worker in worker_nodes:
            ref = task_system.submit(
                _gradient_task,
                args=(weights_ref, model),
                node=worker,
                name=f"grad-w{worker}",
            )
            outstanding[ref.object_id] = worker

        start = sim.now
        for iteration in range(num_iterations):
            iteration_start = sim.now
            target_id = ObjectID.unique(f"update-{iteration}")
            result = yield from plane.reduce(
                server,
                target_id,
                list(outstanding.keys()),
                ReduceOp.SUM,
                num_objects=min(batch, len(outstanding)),
            )
            yield from plane.get(server, target_id)
            yield sim.timeout(server_update_time)
            weights_ref = yield from task_system.put(
                ObjectValue.of_size(model.param_bytes),
                ObjectID.unique(f"weights-{iteration + 1}"),
            )
            # Restart exactly the workers whose gradients were consumed.
            for object_id in result.reduced_ids:
                worker = outstanding.pop(object_id, None)
                if worker is None:
                    continue
                ref = task_system.submit(
                    _gradient_task,
                    args=(weights_ref, model),
                    node=worker,
                    name=f"grad-w{worker}-i{iteration + 1}",
                )
                outstanding[ref.object_id] = worker
            iteration_latencies.append(sim.now - iteration_start)
        summary["duration"] = sim.now - start

    sim.process(driver(), name="async-sgd-driver")
    cluster.run()

    duration = summary.get("duration", sim.now)
    samples = num_iterations * batch * model.samples_per_round
    throughput = samples / duration if duration > 0 else 0.0
    return AppResult(
        app="async_sgd",
        system=system,
        num_nodes=num_nodes,
        duration=duration,
        throughput=throughput,
        iteration_latencies=iteration_latencies,
        metrics={
            "model": model.name,
            "batch": batch,
            "samples": samples,
            **task_system.metrics.as_dict(),
        },
    )
