"""Distributed reinforcement learning (Section 5.3, Figure 10).

Two algorithm families are reproduced, matching RLlib's structure:

* **samples optimization** (IMPALA-style): workers run simulation rollouts
  and ship the sample batches to the trainer; the trainer updates the policy
  and broadcasts it to the workers that just finished.
* **gradients optimization** (A3C-style): workers compute gradients of the
  64 MB policy locally; the trainer reduces a batch of gradients, applies
  the update, and broadcasts the new policy.

Both follow the dynamic wait-for-the-first-half pattern of Figure 1, so the
trainer's NIC is the bottleneck under the naive Ray plane while Hoplite's
reduce/broadcast trees remove it.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.apps.common import AppResult, FailureSchedule, apply_failures, make_cluster, make_plane
from repro.net.config import NetworkConfig
from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.tasksys.system import TaskSystem
from repro.workloads.models import ModelProfile, model_profile

#: size of one rollout sample batch shipped by an IMPALA-style worker.
ROLLOUT_BYTES = 8 * 1024 * 1024
#: environment steps contributed by one rollout / one gradient.
SAMPLES_PER_ROLLOUT = 50
#: simulated time a worker spends producing one rollout or gradient.
ROLLOUT_COMPUTE_TIME = 0.25
#: simulated time the trainer spends applying one batch of updates.
TRAINER_UPDATE_TIME = 0.05


def _rollout_task(ctx, policy_value: ObjectValue) -> Generator:
    """IMPALA-style worker: simulate and return a sample batch."""
    yield ctx.compute(ROLLOUT_COMPUTE_TIME)
    return ObjectValue.of_size(ROLLOUT_BYTES)


def _gradient_task(ctx, policy_value: ObjectValue, param_bytes: int) -> Generator:
    """A3C-style worker: simulate, compute a gradient of the policy."""
    yield ctx.compute(ROLLOUT_COMPUTE_TIME)
    return ObjectValue.of_size(param_bytes)


def run_rl_training(
    num_nodes: int,
    algorithm: str = "impala",
    system: str = "hoplite",
    num_iterations: int = 10,
    model: "ModelProfile | str" = "rl_policy",
    network: Optional[NetworkConfig] = None,
    failure: Optional[FailureSchedule] = None,
) -> AppResult:
    """Run IMPALA-style or A3C-style training and report samples/second."""
    algorithm = algorithm.lower()
    if algorithm not in ("impala", "a3c"):
        raise ValueError(f"unknown RL algorithm {algorithm!r}; expected 'impala' or 'a3c'")
    if isinstance(model, str):
        model = model_profile(model)
    if num_nodes < 2:
        raise ValueError("RL training needs a trainer node and at least one worker")

    cluster = make_cluster(num_nodes, network)
    plane = make_plane(system, cluster)
    apply_failures(cluster, failure)
    task_system = TaskSystem(cluster, plane)
    sim = cluster.sim

    worker_nodes = list(range(1, num_nodes))
    batch = max(1, math.ceil(len(worker_nodes) / 2))
    iteration_latencies: list[float] = []
    summary: dict = {}

    def _submit_worker(worker: int, policy_ref, iteration: int):
        if algorithm == "impala":
            return task_system.submit(
                _rollout_task,
                args=(policy_ref,),
                node=worker,
                name=f"rollout-w{worker}-i{iteration}",
            )
        return task_system.submit(
            _gradient_task,
            args=(policy_ref, model.param_bytes),
            node=worker,
            name=f"grad-w{worker}-i{iteration}",
        )

    def driver() -> Generator:
        trainer = cluster.node(0)
        policy_ref = yield from task_system.put(
            ObjectValue.of_size(model.param_bytes), ObjectID.unique("policy")
        )
        outstanding: dict[ObjectID, tuple] = {}
        ref_by_id = {}
        for worker in worker_nodes:
            ref = _submit_worker(worker, policy_ref, 0)
            outstanding[ref.object_id] = worker
            ref_by_id[ref.object_id] = ref

        start = sim.now
        for iteration in range(num_iterations):
            iteration_start = sim.now
            consumed: list[ObjectID] = []
            if algorithm == "a3c":
                target_id = ObjectID.unique(f"rl-update-{iteration}")
                result = yield from plane.reduce(
                    trainer,
                    target_id,
                    list(outstanding.keys()),
                    ReduceOp.SUM,
                    num_objects=min(batch, len(outstanding)),
                )
                yield from plane.get(trainer, target_id)
                consumed = list(result.reduced_ids)
            else:
                refs = [ref_by_id[object_id] for object_id in outstanding]
                ready, _ = yield from task_system.wait(refs, num_returns=min(batch, len(refs)))
                for ref in ready:
                    yield from plane.get(trainer, ref.object_id)
                consumed = [ref.object_id for ref in ready]
            yield sim.timeout(TRAINER_UPDATE_TIME)
            policy_ref = yield from task_system.put(
                ObjectValue.of_size(model.param_bytes),
                ObjectID.unique(f"policy-{iteration + 1}"),
            )
            for object_id in consumed:
                worker = outstanding.pop(object_id, None)
                ref_by_id.pop(object_id, None)
                if worker is None:
                    continue
                ref = _submit_worker(worker, policy_ref, iteration + 1)
                outstanding[ref.object_id] = worker
                ref_by_id[ref.object_id] = ref
            iteration_latencies.append(sim.now - iteration_start)
        summary["duration"] = sim.now - start

    sim.process(driver(), name=f"rl-{algorithm}-driver")
    cluster.run()

    duration = summary.get("duration", sim.now)
    samples = num_iterations * batch * SAMPLES_PER_ROLLOUT
    throughput = samples / duration if duration > 0 else 0.0
    return AppResult(
        app=f"rl_{algorithm}",
        system=system,
        num_nodes=num_nodes,
        duration=duration,
        throughput=throughput,
        iteration_latencies=iteration_latencies,
        metrics={
            "algorithm": algorithm,
            "policy_bytes": model.param_bytes,
            "batch": batch,
            "samples": samples,
            **task_system.metrics.as_dict(),
        },
    )
