"""Application-level workloads from the paper's evaluation (Sections 5.2-5.6).

Each application builds its own simulated cluster, runs the same driver logic
over a selectable communication plane (Hoplite, Ray-style, Dask-style) or
static collective library (OpenMPI, Gloo, for synchronous training), and
returns an :class:`~repro.apps.common.AppResult` with throughput and
per-iteration latencies.
"""

from repro.apps.common import AppResult, FailureSchedule
from repro.apps.moe import run_moe_routing
from repro.apps.param_server import run_async_sgd
from repro.apps.rl import run_rl_training
from repro.apps.serving import run_model_serving
from repro.apps.sync_training import run_sync_training

__all__ = [
    "AppResult",
    "FailureSchedule",
    "run_async_sgd",
    "run_model_serving",
    "run_moe_routing",
    "run_rl_training",
    "run_sync_training",
]
