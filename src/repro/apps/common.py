"""Shared plumbing for the application-level experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence

from repro.collectives.naive import DASK_PROFILE, RAY_PROFILE, TaskSystemPlane
from repro.collectives.plane import CommPlane, HoplitePlane
from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.transport import TransferError
from repro.store.objects import ObjectID, ObjectValue


PLANE_SYSTEMS = ("hoplite", "ray", "dask")


@dataclass(frozen=True)
class FailureSchedule:
    """One induced failure used by the fault-tolerance experiments (Figure 12)."""

    node_id: int
    fail_at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fail_at < 0:
            raise ValueError("fail_at must be non-negative")
        if self.recover_at is not None and self.recover_at < self.fail_at:
            raise ValueError("recover_at must not precede fail_at")


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    system: str
    num_nodes: int
    duration: float
    throughput: float
    #: per-iteration (or per-query) completion latencies, in order.
    iteration_latencies: list[float] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "app": self.app,
            "system": self.system,
            "num_nodes": self.num_nodes,
            "duration": self.duration,
            "throughput": self.throughput,
            "iterations": len(self.iteration_latencies),
            **self.metrics,
        }


def make_cluster(num_nodes: int, network: Optional[NetworkConfig] = None) -> Cluster:
    return Cluster(num_nodes=num_nodes, network=network or NetworkConfig())


def make_plane(system: str, cluster: Cluster, options: Optional[HopliteOptions] = None) -> CommPlane:
    """Build the communication plane for an application run."""
    if system == "hoplite":
        return HoplitePlane(HopliteRuntime(cluster, options=options))
    if system == "ray":
        return TaskSystemPlane(cluster, RAY_PROFILE)
    if system == "dask":
        return TaskSystemPlane(cluster, DASK_PROFILE)
    raise ValueError(f"unknown plane system {system!r}; expected one of {PLANE_SYSTEMS}")


def apply_failures(cluster: Cluster, failures) -> None:
    """Install the failure schedule(s) on the cluster, if any."""
    if failures is None:
        return
    if isinstance(failures, FailureSchedule):
        failures = [failures]
    for failure in failures:
        cluster.schedule_failure(failure.node_id, failure.fail_at, failure.recover_at)


def reconstruct_on_recovery(
    cluster: Cluster,
    plane: CommPlane,
    node_id: int,
    objects: Sequence[tuple[ObjectID, ObjectValue]],
) -> Generator:
    """Framework-style object reconstruction: re-``Put`` after every rejoin.

    The paper delegates reconstruction of lost objects to the task
    framework's lineage re-execution (Section 6); this process stands in for
    it wherever failures are injected.  Re-putting an object that survived
    elsewhere is harmless — ``Put`` is idempotent per ObjectID.
    """
    sim = cluster.sim
    node = cluster.node(node_id)
    while True:
        yield node.failure_event()
        yield node.recovery_event()
        for object_id, value in objects:
            while node.alive:
                try:
                    yield from plane.put(node, object_id, value)
                    break
                except TransferError:
                    yield sim.timeout(cluster.config.failure_detection_delay)


def retry_across_failures(
    cluster: Cluster,
    node_id: int,
    attempt: Callable[[], Generator],
    on_retry: Optional[Callable[[], None]] = None,
) -> Generator:
    """Drive one participant's share of a collective, retrying across failures.

    Re-runs ``attempt`` until it completes: after the participant's own node
    fails, the retry waits for the rejoin; transient errors while the node is
    alive back off by one failure-detection delay.  Returns the successful
    attempt's result.
    """
    sim = cluster.sim
    node = cluster.node(node_id)
    while True:
        try:
            if not node.alive:
                yield node.recovery_event()
            result = yield from attempt()
            return result
        except TransferError:
            if on_retry is not None:
                on_retry()
            if node.alive:
                yield sim.timeout(cluster.config.failure_detection_delay)
