"""Shared plumbing for the application-level experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collectives.naive import DASK_PROFILE, RAY_PROFILE, TaskSystemPlane
from repro.collectives.plane import CommPlane, HoplitePlane
from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig


PLANE_SYSTEMS = ("hoplite", "ray", "dask")


@dataclass(frozen=True)
class FailureSchedule:
    """One induced failure used by the fault-tolerance experiments (Figure 12)."""

    node_id: int
    fail_at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fail_at < 0:
            raise ValueError("fail_at must be non-negative")
        if self.recover_at is not None and self.recover_at < self.fail_at:
            raise ValueError("recover_at must not precede fail_at")


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    system: str
    num_nodes: int
    duration: float
    throughput: float
    #: per-iteration (or per-query) completion latencies, in order.
    iteration_latencies: list[float] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "app": self.app,
            "system": self.system,
            "num_nodes": self.num_nodes,
            "duration": self.duration,
            "throughput": self.throughput,
            "iterations": len(self.iteration_latencies),
            **self.metrics,
        }


def make_cluster(num_nodes: int, network: Optional[NetworkConfig] = None) -> Cluster:
    return Cluster(num_nodes=num_nodes, network=network or NetworkConfig())


def make_plane(system: str, cluster: Cluster, options: Optional[HopliteOptions] = None) -> CommPlane:
    """Build the communication plane for an application run."""
    if system == "hoplite":
        return HoplitePlane(HopliteRuntime(cluster, options=options))
    if system == "ray":
        return TaskSystemPlane(cluster, RAY_PROFILE)
    if system == "dask":
        return TaskSystemPlane(cluster, DASK_PROFILE)
    raise ValueError(f"unknown plane system {system!r}; expected one of {PLANE_SYSTEMS}")


def apply_failures(cluster: Cluster, failures) -> None:
    """Install the failure schedule(s) on the cluster, if any."""
    if failures is None:
        return
    if isinstance(failures, FailureSchedule):
        failures = [failures]
    for failure in failures:
        cluster.schedule_failure(failure.node_id, failure.fail_at, failure.recover_at)
