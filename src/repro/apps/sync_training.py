"""Synchronous data-parallel training (Section 5.6, Figure 13).

Every round, all workers compute on their shard and then allreduce the
gradients.  This is not Hoplite's target workload — it exists to quantify
what a user gives up by running a static, synchronous job on a task-based
system: Hoplite should roughly match OpenMPI, trail Gloo's ring-chunked
allreduce by tens of percent, and beat the naive Ray plane by a wide margin.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.common import AppResult, make_cluster, make_plane
from repro.collectives.gloo import GlooCollectives
from repro.collectives.mpi import MPICollectives
from repro.net.config import NetworkConfig
from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.workloads.models import ModelProfile, model_profile

STATIC_SYSTEMS = ("openmpi", "gloo")
PLANE_SYSTEMS = ("hoplite", "ray", "dask")


def run_sync_training(
    num_nodes: int,
    model: "ModelProfile | str",
    system: str = "hoplite",
    num_rounds: int = 5,
    network: Optional[NetworkConfig] = None,
) -> AppResult:
    """Run synchronous data-parallel training and report samples/second."""
    if isinstance(model, str):
        model = model_profile(model)
    if num_nodes < 2:
        raise ValueError("synchronous training needs at least two nodes")
    if system in STATIC_SYSTEMS:
        duration, round_latencies = _run_static(num_nodes, model, system, num_rounds, network)
    elif system in PLANE_SYSTEMS:
        duration, round_latencies = _run_plane(num_nodes, model, system, num_rounds, network)
    else:
        raise ValueError(f"unknown system {system!r}")

    samples = num_rounds * num_nodes * model.samples_per_round
    throughput = samples / duration if duration > 0 else 0.0
    return AppResult(
        app="sync_training",
        system=system,
        num_nodes=num_nodes,
        duration=duration,
        throughput=throughput,
        iteration_latencies=round_latencies,
        metrics={"model": model.name, "samples": samples},
    )


def _run_static(
    num_nodes: int,
    model: ModelProfile,
    system: str,
    num_rounds: int,
    network: Optional[NetworkConfig],
) -> tuple[float, list[float]]:
    """OpenMPI / Gloo: compute, then a static allreduce, once per round."""
    cluster = make_cluster(num_nodes, network)
    sim = cluster.sim
    if system == "openmpi":
        ops = [MPICollectives(cluster).allreduce(model.param_bytes) for _ in range(num_rounds)]
    else:
        gloo = GlooCollectives(cluster)
        ops = [gloo.allreduce_ring_chunked(model.param_bytes) for _ in range(num_rounds)]

    round_ends: list[list[float]] = [[] for _ in range(num_rounds)]

    def _worker(rank: int) -> Generator:
        for round_index in range(num_rounds):
            yield sim.timeout(model.round_compute_time)
            yield from ops[round_index].participate(rank)
            round_ends[round_index].append(sim.now)

    for rank in range(num_nodes):
        sim.process(_worker(rank), name=f"sync-train-rank-{rank}")
    cluster.run()

    round_latencies = []
    previous_end = 0.0
    for ends in round_ends:
        end = max(ends)
        round_latencies.append(end - previous_end)
        previous_end = end
    return previous_end, round_latencies


def _run_plane(
    num_nodes: int,
    model: ModelProfile,
    system: str,
    num_rounds: int,
    network: Optional[NetworkConfig],
) -> tuple[float, list[float]]:
    """Hoplite / Ray plane: put gradients, reduce at node 0, everyone gets."""
    cluster = make_cluster(num_nodes, network)
    plane = make_plane(system, cluster)
    sim = cluster.sim
    round_latencies: list[float] = []
    summary: dict = {}

    def _compute_and_put(node_id: int, object_id: ObjectID) -> Generator:
        yield sim.timeout(model.round_compute_time)
        yield from plane.put(
            cluster.node(node_id), object_id, ObjectValue.of_size(model.param_bytes)
        )

    def _fetch(node_id: int, object_id: ObjectID) -> Generator:
        yield from plane.get(cluster.node(node_id), object_id)

    def driver() -> Generator:
        start = sim.now
        for round_index in range(num_rounds):
            round_start = sim.now
            gradient_ids = [
                ObjectID.unique(f"sync-grad-r{round_index}-n{node_id}")
                for node_id in range(num_nodes)
            ]
            producers = [
                sim.process(
                    _compute_and_put(node_id, gradient_ids[node_id]),
                    name=f"sync-put-{round_index}-{node_id}",
                )
                for node_id in range(num_nodes)
            ]
            target_id = ObjectID.unique(f"sync-update-{round_index}")
            reduce_proc = sim.process(
                plane.reduce(cluster.node(0), target_id, gradient_ids, ReduceOp.SUM),
                name=f"sync-reduce-{round_index}",
            )
            fetchers = [
                sim.process(
                    _fetch(node_id, target_id), name=f"sync-get-{round_index}-{node_id}"
                )
                for node_id in range(num_nodes)
            ]
            yield sim.all_of(producers)
            yield reduce_proc
            yield sim.all_of(fetchers)
            round_latencies.append(sim.now - round_start)
        summary["duration"] = sim.now - start

    sim.process(driver(), name="sync-train-driver")
    cluster.run()
    return summary.get("duration", sim.now), round_latencies
