"""Durable collective lineage: specs, ownership, and the re-execution log.

Section 6 of the paper argues that Hoplite's object plane makes collectives
fault-*tolerant* (any transfer survives a peer failure) but that end-to-end
fault-*transparency* — surviving the failure of the node that *invoked* the
collective — belongs to the task framework: "the task framework re-executes
a failed caller from lineage".  This module is that lineage layer:

* a :class:`CollectiveSpec` is the durable description of one collective
  invocation — the collective kind, the participants, every ObjectID the
  collective touches (sources, targets, receive sets), the reduce operator,
  the payloads needed to re-``Put`` a lost source, and an *incarnation*
  counter that distinguishes deliberate re-invocations from recoveries;
* an :class:`OwnershipTable` maps every object the collective creates —
  including the *intermediate* objects Hoplite materializes on its own
  (reduce partials, broadcast relay copies, reduce-scatter shard columns) —
  back to the producing spec, so that when a node dies the framework can
  answer "which spec re-creates this object?" and re-execute exactly that
  share from lineage;
* a :class:`LineageLog` is the durable spec registry the per-rank driver
  tasks read on (re-)execution: a restarted driver task receives only a
  ``spec_id`` and reconstructs everything else from the log, which is what
  makes the re-execution genuinely lineage-driven rather than
  closure-driven.

The in-memory dictionaries stand in for the durable store (GCS) the real
framework would use; everything recorded here survives any node failure by
construction, matching the paper's assumption that the control plane
outlives the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.store.objects import ObjectID, ObjectValue, ReduceOp

#: The collective kinds the orchestrator knows how to drive.
COLLECTIVE_KINDS = (
    "broadcast",
    "reduce",
    "allreduce",
    "allgather",
    "reduce_scatter",
    "alltoall",
)

#: Roles an owned object can play inside a collective.
ROLE_SOURCE = "source"  #: application input re-created by a producer share
ROLE_RESULT = "result"  #: the collective's output object (reduce target, shard)
ROLE_PARTIAL = "partial"  #: internal reduce-tree partial / staging entry
ROLE_RELAY = "relay"  #: broadcast relay copy grown by receiver-driven fetch
ROLE_MARKER = "marker"  #: a driver task's completion marker object


@dataclass
class CollectiveSpec:
    """Everything needed to (re-)execute one collective invocation.

    The spec is the unit of lineage: every per-rank driver task the
    orchestrator submits carries only ``(spec_id, rank)`` and re-derives its
    work from the spec, so re-executing a failed rank — including the
    root/caller — needs no state from the dead node.
    """

    spec_id: str
    kind: str
    participants: Tuple[int, ...]
    #: the caller/root rank for rooted collectives (reduce, allreduce,
    #: broadcast); ``None`` for the symmetric ones.
    root: Optional[int] = None
    op: Optional[ReduceOp] = None
    #: per-participant objects that participant produces (its row).
    sources: Dict[int, Tuple[ObjectID, ...]] = field(default_factory=dict)
    #: per-participant result object (reduce target, reduce-scatter shard).
    targets: Dict[int, ObjectID] = field(default_factory=dict)
    #: per-participant objects that participant must end up holding.
    recvs: Dict[int, Tuple[ObjectID, ...]] = field(default_factory=dict)
    #: durable payloads for re-``Put``-ing lost sources from lineage.
    payloads: Dict[ObjectID, ObjectValue] = field(default_factory=dict)
    #: bumped by the application for a deliberate fresh execution; recovery
    #: re-submissions reuse the same incarnation so they deduplicate.
    incarnation: int = 0

    def __post_init__(self) -> None:
        if self.kind not in COLLECTIVE_KINDS:
            raise ValueError(
                f"unknown collective kind {self.kind!r}; expected one of {COLLECTIVE_KINDS}"
            )
        if not self.participants:
            raise ValueError("a collective needs at least one participant")
        if self.root is not None and self.root not in self.participants:
            raise ValueError(f"root {self.root} is not a participant")

    # -- derived views -------------------------------------------------------
    def all_source_ids(self) -> list[ObjectID]:
        """Every source object, in participant order."""
        ids: list[ObjectID] = []
        for rank in self.participants:
            ids.extend(self.sources.get(rank, ()))
        return ids

    def payload_of(self, object_id: ObjectID) -> ObjectValue:
        try:
            return self.payloads[object_id]
        except KeyError:
            raise KeyError(f"spec {self.spec_id} has no payload for {object_id}") from None

    def column_of(self, rank: int) -> list[ObjectID]:
        """The receive set of ``rank`` (its column of the logical matrix)."""
        return list(self.recvs.get(rank, ()))

    # -- constructors --------------------------------------------------------
    @staticmethod
    def broadcast(
        spec_id: str,
        root: int,
        participants: Sequence[int],
        object_id: ObjectID,
        value: ObjectValue,
        incarnation: int = 0,
    ) -> "CollectiveSpec":
        participants = tuple(participants)
        return CollectiveSpec(
            spec_id=spec_id,
            kind="broadcast",
            participants=participants,
            root=root,
            sources={root: (object_id,)},
            recvs={rank: (object_id,) for rank in participants if rank != root},
            payloads={object_id: value},
            incarnation=incarnation,
        )

    @staticmethod
    def reduce(
        spec_id: str,
        root: int,
        participants: Sequence[int],
        sources: Dict[int, ObjectID],
        target_id: ObjectID,
        values: Dict[ObjectID, ObjectValue],
        op: ReduceOp = ReduceOp.SUM,
        incarnation: int = 0,
        allreduce: bool = False,
    ) -> "CollectiveSpec":
        participants = tuple(participants)
        recvs: Dict[int, Tuple[ObjectID, ...]] = {}
        if allreduce:
            recvs = {rank: (target_id,) for rank in participants}
        return CollectiveSpec(
            spec_id=spec_id,
            kind="allreduce" if allreduce else "reduce",
            participants=participants,
            root=root,
            op=op,
            # A participant may contribute no source (e.g. a pure caller).
            sources={rank: (sources[rank],) for rank in participants if rank in sources},
            targets={root: target_id},
            recvs=recvs,
            payloads=dict(values),
            incarnation=incarnation,
        )

    @staticmethod
    def allgather(
        spec_id: str,
        participants: Sequence[int],
        sources: Dict[int, ObjectID],
        values: Dict[ObjectID, ObjectValue],
        incarnation: int = 0,
    ) -> "CollectiveSpec":
        participants = tuple(participants)
        everything = tuple(sources[rank] for rank in participants)
        return CollectiveSpec(
            spec_id=spec_id,
            kind="allgather",
            participants=participants,
            sources={rank: (sources[rank],) for rank in participants},
            recvs={rank: everything for rank in participants},
            payloads=dict(values),
            incarnation=incarnation,
        )

    @staticmethod
    def reduce_scatter(
        spec_id: str,
        participants: Sequence[int],
        matrix: Dict[Tuple[int, int], ObjectID],
        targets: Dict[int, ObjectID],
        values: Dict[ObjectID, ObjectValue],
        op: ReduceOp = ReduceOp.SUM,
        incarnation: int = 0,
    ) -> "CollectiveSpec":
        """``matrix[(i, j)]`` is produced by ``i`` and reduced into ``targets[j]``."""
        participants = tuple(participants)
        return CollectiveSpec(
            spec_id=spec_id,
            kind="reduce_scatter",
            participants=participants,
            op=op,
            sources={
                i: tuple(matrix[(i, j)] for j in participants) for i in participants
            },
            targets=dict(targets),
            recvs={
                j: tuple(matrix[(i, j)] for i in participants) for j in participants
            },
            payloads=dict(values),
            incarnation=incarnation,
        )

    @staticmethod
    def alltoall(
        spec_id: str,
        participants: Sequence[int],
        matrix: Dict[Tuple[int, int], ObjectID],
        values: Dict[ObjectID, ObjectValue],
        incarnation: int = 0,
    ) -> "CollectiveSpec":
        """``matrix[(src, dst)]`` travels from ``src`` to ``dst`` (no self pairs)."""
        participants = tuple(participants)
        return CollectiveSpec(
            spec_id=spec_id,
            kind="alltoall",
            participants=participants,
            sources={
                src: tuple(
                    matrix[(src, dst)] for dst in participants if (src, dst) in matrix
                )
                for src in participants
            },
            recvs={
                dst: tuple(
                    matrix[(src, dst)] for src in participants if (src, dst) in matrix
                )
                for dst in participants
            },
            payloads=dict(values),
            incarnation=incarnation,
        )


@dataclass(frozen=True)
class OwnedObject:
    """One entry of the ownership table."""

    object_id: ObjectID
    spec_id: str
    role: str
    #: producing participant for sources/results; ``None`` for internal
    #: objects whose placement Hoplite chose dynamically.
    rank: Optional[int] = None


class OwnershipTable:
    """Maps every object a collective touches to its producing spec.

    Three kinds of entries coexist:

    * *declared* objects (sources, targets, receive sets) registered when a
      spec is invoked;
    * *partials* — internal objects Hoplite derives from a target id
      (reduce-tree partial outputs and staging buffers), recorded by the
      executions through the runtime's orchestration hook;
    * *relay copies* — additional locations of a declared object grown by the
      receiver-driven broadcast, tracked per node so the framework knows
      which nodes hold adoptable copies.
    """

    def __init__(self) -> None:
        self._objects: Dict[ObjectID, OwnedObject] = {}
        self._by_spec: Dict[str, set] = {}
        #: object_id -> node ids known to hold (possibly partial) copies.
        self._copies: Dict[ObjectID, set] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: ObjectID) -> bool:
        return object_id in self._objects

    def register(self, owned: OwnedObject) -> None:
        existing = self._objects.get(owned.object_id)
        if existing is not None and existing.spec_id != owned.spec_id:
            raise ValueError(
                f"object {owned.object_id} already owned by spec {existing.spec_id}"
            )
        self._objects[owned.object_id] = owned
        self._by_spec.setdefault(owned.spec_id, set()).add(owned.object_id)

    def register_spec(self, spec: CollectiveSpec) -> None:
        """Register every declared object of ``spec``."""
        for rank in spec.participants:
            for object_id in spec.sources.get(rank, ()):
                self.register(
                    OwnedObject(object_id, spec.spec_id, ROLE_SOURCE, rank=rank)
                )
        for rank, target_id in spec.targets.items():
            self.register(
                OwnedObject(target_id, spec.spec_id, ROLE_RESULT, rank=rank)
            )

    def owner_of(self, object_id: ObjectID) -> Optional[OwnedObject]:
        """The producing spec of ``object_id``, resolving derived partials.

        A reduce partial is named ``<target>/<suffix>``; if the exact id is
        unknown the lookup walks up the derivation chain so even partials
        that were never explicitly recorded resolve to the owning spec.
        """
        owned = self._objects.get(object_id)
        if owned is not None:
            return owned
        key = object_id.key
        while "/" in key:
            key = key.rsplit("/", 1)[0]
            parent = self._objects.get(ObjectID(key))
            if parent is not None:
                return OwnedObject(object_id, parent.spec_id, ROLE_PARTIAL)
        return None

    def objects_of(self, spec_id: str, role: Optional[str] = None) -> list[OwnedObject]:
        ids = self._by_spec.get(spec_id, set())
        entries = [self._objects[object_id] for object_id in ids]
        if role is not None:
            entries = [entry for entry in entries if entry.role == role]
        return sorted(entries, key=lambda entry: entry.object_id.key)

    # -- dynamic records from the executions ---------------------------------
    def record_partial(
        self, parent_id: ObjectID, partial_id: ObjectID, node_id: Optional[int] = None
    ) -> None:
        """Record an internal object derived from ``parent_id`` (if owned)."""
        parent = self.owner_of(parent_id)
        if parent is None:
            return
        if partial_id not in self._objects:
            self.register(OwnedObject(partial_id, parent.spec_id, ROLE_PARTIAL))
        if node_id is not None:
            self._copies.setdefault(partial_id, set()).add(node_id)

    def record_copy(self, object_id: ObjectID, node_id: int) -> None:
        """Record that ``node_id`` holds a (possibly partial) relay copy."""
        self._copies.setdefault(object_id, set()).add(node_id)

    def copies_of(self, object_id: ObjectID) -> set:
        return set(self._copies.get(object_id, set()))

    def drop_node(self, node_id: int) -> list[OwnedObject]:
        """Forget ``node_id``'s copies; return the owned objects it held.

        The returned list is what a lineage-driven recovery would walk to
        decide which specs must re-execute.
        """
        lost: list[OwnedObject] = []
        for object_id, holders in self._copies.items():
            if node_id in holders:
                holders.discard(node_id)
                owned = self.owner_of(object_id)
                if owned is not None:
                    lost.append(owned)
        return lost


class LineageLog:
    """The durable spec registry driver tasks re-read on re-execution."""

    def __init__(self) -> None:
        self._specs: Dict[str, CollectiveSpec] = {}
        #: spec_id -> number of times the spec's task set was (re-)submitted.
        self.submissions: Dict[str, int] = {}

    def record(self, spec: CollectiveSpec) -> None:
        existing = self._specs.get(spec.spec_id)
        if existing is not None and existing.incarnation > spec.incarnation:
            raise ValueError(
                f"spec {spec.spec_id} already recorded at incarnation "
                f"{existing.incarnation} > {spec.incarnation}"
            )
        self._specs[spec.spec_id] = spec

    def spec(self, spec_id: str) -> CollectiveSpec:
        try:
            return self._specs[spec_id]
        except KeyError:
            raise KeyError(f"no lineage record for spec {spec_id}") from None

    def __contains__(self, spec_id: str) -> bool:
        return spec_id in self._specs

    def __iter__(self) -> Iterable[CollectiveSpec]:
        return iter(self._specs.values())

    def note_submission(self, spec_id: str) -> int:
        count = self.submissions.get(spec_id, 0) + 1
        self.submissions[spec_id] = count
        return count
