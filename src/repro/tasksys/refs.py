"""Object futures (the task system's handles to eventual task outputs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.store.objects import ObjectID


@dataclass(frozen=True)
class ObjectRef:
    """A future naming the output of a task (or a driver-side ``put``).

    The reference is just a name: passing it into another task creates a
    dependency, and the task system fetches the value through the
    communication plane before running the dependent task.
    """

    object_id: ObjectID
    #: id of the task that produces this object; ``None`` for driver puts.
    producer_task_id: Optional[int] = None

    def __str__(self) -> str:
        return f"ObjectRef({self.object_id})"
