"""Lineage-driven collective orchestration (the paper's Section 6, realized).

Hoplite's object plane makes every *transfer* fault-tolerant, but the paper
explicitly delegates the last failure class — the death of the node that
*called* the collective — to the task framework: "the task framework
re-executes a failed caller from lineage".  This module is that framework
layer.  It runs every collective as a re-executable task DAG instead of an
anonymous simulation process:

* each invocation is described by a durable
  :class:`~repro.tasksys.lineage.CollectiveSpec` recorded in a
  :class:`~repro.tasksys.lineage.LineageLog`;
* every participant's share — producing its source objects, driving the
  rooted reduce, gathering its column — is a *driver task* registered in the
  :class:`~repro.tasksys.system.TaskSystem` under an idempotency key derived
  from ``(spec_id, role, rank, incarnation)``, so recovery re-submissions
  adopt surviving tasks instead of duplicating them;
* per-rank shares use **strict placement** (their objects must materialize
  on their rank's node, so they wait out that node's downtime), while the
  root/caller share uses **soft placement** and migrates to any alive node —
  this is what makes root failure survivable without a job restart;
* an :class:`~repro.tasksys.lineage.OwnershipTable` maps every object the
  collective touches — sources, results, reduce partials, broadcast relay
  copies — to its producing spec, fed live by the executions through the
  runtime's orchestration hook;
* a re-executed root *adopts* surviving work through two mechanisms: the
  directory (a target that completed during the failure-detection delay is
  simply fetched) and the runtime's active-reduction registry (an in-flight
  reduce tree whose detached driver survived the caller keeps streaming and
  the restarted caller waits on it).

The result is the step from fault-*tolerant* to fault-*transparent*: any
node in the collective — peer, producer, or the root/caller itself — can die
mid-collective and the collective still terminates with the correct result,
with no job restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Tuple

import numpy as np

from repro.core.runtime import LocalOrchestration
from repro.net.transport import TransferError
from repro.sim import Event
from repro.store.objects import ObjectID, ObjectValue
from repro.tasksys.lineage import (
    CollectiveSpec,
    LineageLog,
    OwnershipTable,
)
from repro.tasksys.refs import ObjectRef
from repro.tasksys.system import TaskSystem
from repro.tasksys.wal import WriteAheadLog

#: logical size of a driver task's output marker: small enough for the
#: inline fast path, so outcome collection costs no bandwidth.
MARKER_BYTES = 1024

#: restart budget for collective driver tasks; generous because a share
#: under a hostile failure schedule legitimately retries many times.
DEFAULT_MAX_RESTARTS = 50


def _as_output(arrays) -> ObjectValue:
    """Pack received payload arrays into a tiny result marker."""
    arrays = [array for array in arrays if array is not None]
    if not arrays:
        return ObjectValue(size=0)
    stacked = arrays[0] if len(arrays) == 1 else np.stack(arrays)
    return ObjectValue.from_array(stacked, logical_size=MARKER_BYTES)


# ---------------------------------------------------------------------------
# Driver task bodies
# ---------------------------------------------------------------------------
#
# Each body receives only ``(orch, spec_id, rank)`` and re-derives its work
# from the lineage log, so a re-execution — possibly on a different node, in
# a different incarnation of its original node — needs nothing from the dead
# attempt.  All of them are idempotent: they check the directory before
# re-creating objects and rely on Put being idempotent per ObjectID.


def _producer_share(ctx, orch: "CollectiveOrchestrator", spec_id: str, rank: int):
    """Re-``Put`` the rank's source objects (skipping survivors)."""
    spec = yield from orch.lookup_spec(spec_id)
    for object_id in spec.sources.get(rank, ()):
        if orch.object_available(object_id):
            orch.metrics["source_adoptions"] += 1
            continue
        yield from ctx.plane.put(ctx.node, object_id, spec.payload_of(object_id))
    return None


def _broadcast_root_share(ctx, orch: "CollectiveOrchestrator", spec_id: str):
    """Produce the broadcast object — on *any* alive node, from lineage."""
    spec = yield from orch.lookup_spec(spec_id)
    (object_id,) = spec.sources[spec.root]
    if orch.object_available(object_id):
        orch.metrics["root_adoptions"] += 1
        return None
    yield from ctx.plane.put(ctx.node, object_id, spec.payload_of(object_id))
    return None


def _reduce_root_share(ctx, orch: "CollectiveOrchestrator", spec_id: str):
    """Drive the rooted reduce; adopt surviving work on re-execution.

    Adoption has two layers: a target that *completed* while this share was
    being re-scheduled is simply fetched (the directory remembers it), and
    an in-flight reduce whose detached driver survived the dead caller is
    joined through ``plane.reduce`` (the runtime's active-reduction
    registry), so the surviving partials keep streaming instead of being
    recomputed.
    """
    spec = yield from orch.lookup_spec(spec_id)
    target_id = spec.targets[spec.root]
    if orch.object_available(target_id):
        orch.metrics["root_adoptions"] += 1
    else:
        yield from ctx.plane.reduce(
            ctx.node, target_id, spec.all_source_ids(), spec.op
        )
    value = yield from ctx.get(target_id)
    return _as_output([None if value.payload is None else value.as_array()])


def _get_share(ctx, orch: "CollectiveOrchestrator", spec_id: str, rank: int):
    """Fetch the rank's receive set one by one (broadcast / allreduce)."""
    spec = yield from orch.lookup_spec(spec_id)
    arrays = []
    for object_id in spec.recvs.get(rank, ()):
        value = yield from ctx.get(object_id)
        arrays.append(None if value.payload is None else value.as_array())
    return _as_output(arrays)


def _allgather_share(ctx, orch: "CollectiveOrchestrator", spec_id: str, rank: int):
    """Gather every participant's object with the windowed rotation."""
    spec = yield from orch.lookup_spec(spec_id)
    result = yield from ctx.plane.allgather(ctx.node, list(spec.recvs[rank]))
    return _as_output(
        [None if v.payload is None else v.as_array() for v in result.values]
    )


def _reduce_scatter_share(ctx, orch: "CollectiveOrchestrator", spec_id: str, rank: int):
    """Reduce the rank's shard column into its target."""
    spec = yield from orch.lookup_spec(spec_id)
    target_id = spec.targets[rank]
    if orch.object_available(target_id):
        orch.metrics["target_adoptions"] += 1
        value = yield from ctx.get(target_id)
    else:
        result = yield from ctx.plane.reduce_scatter(
            ctx.node, target_id, spec.column_of(rank), spec.op
        )
        value = result.value
    return _as_output([None if value.payload is None else value.as_array()])


def _alltoall_share(ctx, orch: "CollectiveOrchestrator", spec_id: str, rank: int):
    """Exchange the rank's row and column of the alltoall matrix."""
    spec = yield from orch.lookup_spec(spec_id)
    sends = [
        (object_id, spec.payload_of(object_id))
        for object_id in spec.sources.get(rank, ())
        if not orch.object_available(object_id)
    ]
    recv_ids = list(spec.recvs.get(rank, ()))
    result = yield from ctx.plane.alltoall(ctx.node, sends, recv_ids)
    return _as_output(
        [None if v.payload is None else v.as_array() for v in result.values]
    )


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------


@dataclass
class CollectiveOutcome:
    """What an :meth:`CollectiveOrchestrator.invoke` call returns."""

    spec: CollectiveSpec
    #: per-rank result payloads (ranks that hold results for this kind).
    results: Dict[int, ObjectValue] = field(default_factory=dict)
    #: every driver task submitted, keyed by (role, rank).
    refs: Dict[Tuple[str, int], ObjectRef] = field(default_factory=dict)
    completion_time: float = 0.0


class _RecordingOrchestration(LocalOrchestration):
    """The runtime hook that feeds the ownership table live."""

    def __init__(self, orchestrator: "CollectiveOrchestrator"):
        super().__init__(orchestrator.system.sim)
        self.orchestrator = orchestrator

    def spawn(self, generator, name: str = "", owner: Optional[ObjectID] = None):
        orchestrator = self.orchestrator
        orchestrator.metrics["driver_processes"] += 1
        if owner is not None:
            # Attribute the process to the spec that owns the object it
            # works toward (the collective target or an alltoall shard).
            owned = orchestrator.ownership.owner_of(owner)
            if owned is not None:
                counts = orchestrator.driver_processes_by_spec
                counts[owned.spec_id] = counts.get(owned.spec_id, 0) + 1
        return self.sim.process(generator, name=name)

    def record_partial(self, parent_id, partial_id, node_id=None) -> None:
        orchestrator = self.orchestrator
        orchestrator.wal.append("partial", (parent_id, partial_id, node_id))
        orchestrator.ownership.record_partial(parent_id, partial_id, node_id)

    def record_copy(self, object_id, node_id) -> None:
        orchestrator = self.orchestrator
        orchestrator.wal.append("copy", (object_id, node_id))
        orchestrator.ownership.record_copy(object_id, node_id)


class CollectiveOrchestrator:
    """Runs collectives as re-executable task DAGs with recorded lineage."""

    #: (kind -> (root share body or None, rank share body, ranks-with-results))
    _ROOTED_BODIES = {
        "broadcast": _broadcast_root_share,
        "reduce": _reduce_root_share,
        "allreduce": _reduce_root_share,
    }
    _RANK_BODIES = {
        "broadcast": _get_share,
        "allreduce": _get_share,
        "allgather": _allgather_share,
        "reduce_scatter": _reduce_scatter_share,
        "alltoall": _alltoall_share,
    }

    def __init__(self, system: TaskSystem, max_restarts: int = DEFAULT_MAX_RESTARTS):
        self.system = system
        self.cluster = system.cluster
        self.plane = system.plane
        self.sim = system.sim
        self.max_restarts = max_restarts
        self.lineage = LineageLog()
        self.ownership = OwnershipTable()
        self.metrics: Dict[str, int] = {
            "invocations": 0,
            "driver_processes": 0,
            "root_adoptions": 0,
            "target_adoptions": 0,
            "source_adoptions": 0,
            "control_plane_kills": 0,
            "control_plane_resubmissions": 0,
        }
        #: spec_id -> collective-internal driver processes spawned for it.
        self.driver_processes_by_spec: Dict[str, int] = {}
        #: specs whose invocation finished (recovery never re-submits these).
        self.completed: set = set()
        #: the lineage/ownership services' liveness: the control plane is
        #: itself a failure domain (see :meth:`kill_control_plane`).
        self.control_alive = True
        self.control_incarnation = 0
        self.control_backlog = 0
        self.control_recovery_event = Event(self.sim)
        #: durable intent: every spec registration, submission, completion
        #: and dynamic ownership record lands here before it matters, so
        #: :meth:`replay_after_restart` can rebuild the whole orchestration
        #: state from checkpoint + tail.
        self.wal = WriteAheadLog(
            self.sim,
            "control-plane",
            snapshot_fn=self._snapshot,
            on_append=self._on_wal_append,
            on_checkpoint=self._on_wal_checkpoint,
        )
        runtime = getattr(self.plane, "runtime", None)
        if runtime is not None:
            runtime.orchestration = _RecordingOrchestration(self)

    # -- directory-backed adoption checks ------------------------------------
    def object_available(self, object_id: ObjectID) -> bool:
        """True if a complete copy of ``object_id`` lives on an alive node."""
        runtime = getattr(self.plane, "runtime", None)
        if runtime is None:
            return False
        for node_id, info in runtime.directory.locations_of(object_id).items():
            if info.complete and self.cluster.nodes[node_id].alive:
                return True
        return False

    # -- registration ---------------------------------------------------------
    def register(self, spec: CollectiveSpec) -> None:
        """Record the spec durably and declare its objects' ownership."""
        is_new = spec.spec_id not in self.lineage
        previous = None if is_new else self.lineage.spec(spec.spec_id)
        if is_new:
            self.ownership.register_spec(spec)
        self.lineage.record(spec)
        if is_new or previous.incarnation != spec.incarnation:
            self.wal.append("spec", (spec,))

    # -- submission -----------------------------------------------------------
    def submit(self, spec: CollectiveSpec) -> Dict[Tuple[str, int], ObjectRef]:
        """(Re-)submit the spec's driver task set; idempotent by incarnation.

        Producer shares and per-rank shares are strict (pinned to their
        rank's node); the root/caller share is soft and migrates to any
        alive node on re-execution.  Re-submitting an already-running spec
        returns the existing tasks — the task system deduplicates on the
        ``(key, incarnation)`` pair.
        """
        self.register(spec)
        self.lineage.note_submission(spec.spec_id)
        self.wal.append("submit", (spec.spec_id,))
        refs: Dict[Tuple[str, int], ObjectRef] = {}

        def _task(role, body, rank, node, placement, kwargs):
            refs[(role, rank)] = self.system.submit(
                body,
                kwargs=kwargs,
                node=node,
                name=f"{spec.spec_id}:{role}:{rank}",
                key=f"{spec.spec_id}#{role}/{rank}",
                incarnation=spec.incarnation,
                placement=placement,
                max_restarts=self.max_restarts,
            )

        common = dict(orch=self, spec_id=spec.spec_id)
        rooted = spec.kind in self._ROOTED_BODIES
        for rank in spec.participants:
            # The root's sources are produced by its soft share for
            # broadcast (so a dead root's data is re-created elsewhere);
            # reduce sources live on their ranks and stay strict.
            if spec.sources.get(rank) and not (
                spec.kind == "broadcast" and rank == spec.root
            ) and spec.kind != "alltoall":
                _task(
                    "produce",
                    _producer_share,
                    rank,
                    rank,
                    "strict",
                    dict(common, rank=rank),
                )
        if rooted:
            _task(
                "root",
                self._ROOTED_BODIES[spec.kind],
                spec.root,
                spec.root,
                "soft",
                dict(common),
            )
        rank_body = self._RANK_BODIES.get(spec.kind)
        if rank_body is not None:
            for rank in spec.participants:
                if spec.kind == "broadcast" and rank == spec.root:
                    continue
                _task("share", rank_body, rank, rank, "strict", dict(common, rank=rank))
        return refs

    # -- invocation -----------------------------------------------------------
    def invoke(self, spec: CollectiveSpec) -> Generator:
        """Run the collective end to end; a framework-side driver generator.

        Blocks until every driver task has finished, then collects the
        per-rank result payloads.  The generator itself is framework state
        (the paper's assumption: the control plane outlives any data-plane
        node), so it is not bound to a node and survives every failure the
        task set can survive.
        """
        self.metrics["invocations"] += 1
        flight = self.cluster.flight
        if flight is not None:
            flight.phase(f"spec:{spec.spec_id}", f"invoke/{spec.kind}")
        obs = self.cluster.obs
        root_span = None
        if obs is not None:
            # The root span anchors the whole trace under the spec_id, and
            # binds every object the spec mentions so transfer spans (and
            # re-executed shares after a fault) land in the same trace.
            parent = None
            for oid in spec.all_source_ids():
                parent = obs.tracer.span_for_object(oid)
                if parent is not None:
                    break
            root_span = obs.tracer.root_for_spec(
                spec.spec_id,
                spec.kind,
                parent=parent,
                participants=len(spec.participants),
                incarnation=spec.incarnation,
            )
            for oid in spec.all_source_ids():
                obs.tracer.bind_object(oid, root_span)
            for oid in spec.targets.values():
                obs.tracer.bind_object(oid, root_span)
            for ids in spec.recvs.values():
                for oid in ids:
                    obs.tracer.bind_object(oid, root_span)
        refs = self.submit(spec)
        yield from self.system.wait(list(refs.values()), num_returns=len(refs))
        results: Dict[int, ObjectValue] = {}
        for (role, rank), ref in sorted(refs.items()):
            if role in ("root", "share"):
                value = yield from self.fetch(ref)
                results[rank] = value
        if root_span is not None:
            root_span.finish("ok")
        self.completed.add(spec.spec_id)
        self.wal.append("complete", (spec.spec_id,))
        if flight is not None:
            flight.phase(f"spec:{spec.spec_id}", "complete")
        return CollectiveOutcome(
            spec=spec,
            results=results,
            refs=refs,
            completion_time=self.sim.now,
        )

    def fetch(self, ref: ObjectRef) -> Generator:
        """Framework-side fetch: reads through any alive node, with retries."""
        delay = self.system.failure_detection_delay
        while True:
            node = next((n for n in self.cluster.nodes if n.alive), None)
            if node is None:
                yield self.sim.timeout(delay)
                continue
            try:
                value = yield from self.system.fetch(node, ref.object_id)
                return value
            except TransferError:
                yield self.sim.timeout(delay)

    # -- durability: the control plane as a failure domain ---------------------
    def lookup_spec(self, spec_id: str) -> Generator:
        """Task-side lineage read; parks while the control plane is down.

        On the (overwhelmingly common) alive path this yields nothing and
        schedules nothing — a plain dictionary read — so gating every driver
        task body through it costs zero simulated events.  While the plane
        is down the task parks on the recovery event and re-reads the spec
        from the *replayed* log once recovery completes.

        Parked lookups resume *serially*, one service quantum apart in
        parking order — the replayed service drains its request backlog one
        at a time.  The stagger also keeps recovery from resynchronizing
        independent driver chains onto one instant (same rationale as the
        directory shard's backlog drain).
        """
        while not self.control_alive:
            position = self.control_backlog
            self.control_backlog += 1
            while not self.control_alive:
                yield self.control_recovery_event
            yield self.sim.timeout(
                (position + 1) * (self.cluster.config.rpc_latency / 64.0)
            )
        return self.lineage.spec(spec_id)

    def _on_wal_append(self, record) -> None:
        obs = self.cluster.obs
        if obs is not None:
            obs.control_plane["wal_appends"].inc()
        flight = self.cluster.flight
        if flight is not None:
            flight.phase("control-plane", f"wal_append/{record.kind}")

    def _on_wal_checkpoint(self, seq: int) -> None:
        obs = self.cluster.obs
        if obs is not None:
            obs.control_plane["checkpoints"].inc()
        flight = self.cluster.flight
        if flight is not None:
            flight.phase("control-plane", f"checkpoint/seq={seq}")

    def _snapshot(self):
        """Checkpoint state: lineage, submissions, completions, ownership."""
        ownership = self.ownership
        return (
            dict(self.lineage._specs),
            dict(self.lineage.submissions),
            set(self.completed),
            dict(ownership._objects),
            {spec_id: set(ids) for spec_id, ids in ownership._by_spec.items()},
            {object_id: set(ids) for object_id, ids in ownership._copies.items()},
        )

    def _restore(self, snapshot) -> None:
        self.lineage = LineageLog()
        self.ownership = OwnershipTable()
        self.completed = set()
        if snapshot is None:
            return
        specs, submissions, completed, objects, by_spec, copies = snapshot
        self.lineage._specs = dict(specs)
        self.lineage.submissions = dict(submissions)
        self.completed = set(completed)
        self.ownership._objects = dict(objects)
        self.ownership._by_spec = {
            spec_id: set(ids) for spec_id, ids in by_spec.items()
        }
        self.ownership._copies = {
            object_id: set(ids) for object_id, ids in copies.items()
        }

    def _replay_record(self, record) -> None:
        kind = record.kind
        if kind == "spec":
            (spec,) = record.data
            if spec.spec_id not in self.lineage:
                self.ownership.register_spec(spec)
            self.lineage.record(spec)
        elif kind == "submit":
            (spec_id,) = record.data
            self.lineage.submissions[spec_id] = (
                self.lineage.submissions.get(spec_id, 0) + 1
            )
        elif kind == "complete":
            (spec_id,) = record.data
            self.completed.add(spec_id)
        elif kind == "partial":
            parent_id, partial_id, node_id = record.data
            self.ownership.record_partial(parent_id, partial_id, node_id)
        elif kind == "copy":
            object_id, node_id = record.data
            self.ownership.record_copy(object_id, node_id)
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown control-plane WAL op {kind!r}")

    def kill_control_plane(self) -> None:
        """Kill the lineage/ownership services: their state is lost *now*.

        The in-memory tables are wiped to fresh instances; driver tasks
        reaching :meth:`lookup_spec` park until the spawned recovery task
        replays the WAL.  Tasks already past their lookup keep running on
        the spec references they hold — exactly the semantics of a service
        process dying while its clients' RPCs were already answered.
        """
        if not self.control_alive:
            return
        self.control_alive = False
        self.control_incarnation += 1
        self.control_backlog = 0
        self.control_recovery_event = Event(self.sim)
        self.wal.frozen = True
        self.metrics["control_plane_kills"] += 1
        flight = self.cluster.flight
        if flight is not None:
            flight.phase(
                "control-plane", f"kill/incarnation={self.control_incarnation}"
            )
        self.lineage = LineageLog()
        self.ownership = OwnershipTable()
        self.completed = set()
        self.sim.process(
            self._recover_control_plane(), name="control-plane-recovery"
        )

    def replay_after_restart(self) -> Tuple[int, int]:
        """Rebuild orchestration state from the WAL; resume in-flight specs.

        Returns ``(tail_records_applied, specs_resubmitted)``.  Every spec
        that had been submitted but not completed at the kill is re-submitted
        at its last durable incarnation — the task system's ``(key,
        incarnation)`` dedup turns that into adoption of surviving driver
        tasks rather than duplicate work, which is what "resume, don't
        restart" means operationally.
        """
        applied = self.wal.replay(self._restore, self._replay_record)
        resubmitted = 0
        for spec in list(self.lineage):
            if spec.spec_id in self.completed:
                continue
            if self.lineage.submissions.get(spec.spec_id, 0) == 0:
                continue
            self.submit(spec)
            resubmitted += 1
        self.metrics["control_plane_resubmissions"] += resubmitted
        return applied, resubmitted

    def _recover_control_plane(self) -> Generator:
        yield self.sim.timeout(self.system.failure_detection_delay)
        flight = self.cluster.flight
        if flight is not None:
            flight.phase("control-plane", "replay_begin")
        applied, resubmitted = self.replay_after_restart()
        # Deterministic replay cost: one RPC to load the checkpoint plus a
        # quarter-latency per tail record re-applied.
        yield self.sim.timeout(
            self.cluster.config.rpc_latency * (1.0 + 0.25 * applied)
        )
        self.control_alive = True
        self.wal.frozen = False
        obs = self.cluster.obs
        if obs is not None:
            obs.control_plane["replays"].inc()
        if flight is not None:
            flight.phase(
                "control-plane",
                f"replay_end/applied={applied}/resubmitted={resubmitted}",
            )
        self.control_recovery_event.succeed(self)
