"""A miniature task-based distributed system (the paper's Ray substrate).

Hoplite is a communication layer *for* task-based systems, so the
reproduction needs one: dynamic tasks returning object futures, a scheduler
that places tasks on workers, ``wait``/``get`` driver APIs, and transparent
task reconstruction on node failure (Section 2.1).  Applications in
:mod:`repro.apps` are written against this package and can run over either
the Hoplite plane or the naive Ray/Dask-style plane.
"""

from repro.tasksys.lineage import (
    CollectiveSpec,
    LineageLog,
    OwnedObject,
    OwnershipTable,
)
from repro.tasksys.orchestrator import CollectiveOrchestrator, CollectiveOutcome
from repro.tasksys.refs import ObjectRef
from repro.tasksys.system import TaskContext, TaskError, TaskSpec, TaskSystem

__all__ = [
    "CollectiveOrchestrator",
    "CollectiveOutcome",
    "CollectiveSpec",
    "LineageLog",
    "ObjectRef",
    "OwnedObject",
    "OwnershipTable",
    "TaskContext",
    "TaskError",
    "TaskSpec",
    "TaskSystem",
]
