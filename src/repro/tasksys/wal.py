"""Write-ahead logging with periodic checkpoints for control-plane state.

ROADMAP open item 1: the directory, the :class:`~repro.tasksys.lineage.
LineageLog` and the :class:`~repro.tasksys.lineage.OwnershipTable` were
immortal in-memory structures — a silent single point of failure.  This
module is the durability layer both now share: every control-plane mutation
is appended to a :class:`WriteAheadLog` as a simulated-clock-stamped
:class:`WalRecord` *before* (in program order) its effect is considered
durable, and the log periodically folds its tail into a checkpoint snapshot
so replay cost stays bounded by ``checkpoint_interval`` instead of growing
with history.

Recovery is ``checkpoint + tail``: the owner restores the snapshot with its
own ``restore`` function, then re-applies the tail records in sequence
order with its own ``apply`` function.  The log itself is storage-agnostic
— records hold live Python references for speed (this is a simulator), and
:func:`record_to_wire` / :func:`record_from_wire` provide the canonical
JSON-safe wire form (the schema the ROADMAP documents) for the round-trip
serialization tests and for anyone who wants to persist a log for real.

Determinism discipline: appending and checkpointing are pure bookkeeping —
they schedule no simulated events and read no wall clock — so a run with
WAL recording on is byte-identical to one with it off.  Only an explicit
failure injection (``fail_shard`` / ``kill_control_plane``) ever makes the
log *matter*, and then replay is itself deterministic: same history, same
records, same reconstructed state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

import numpy as np

from repro.store.objects import ObjectID, ObjectValue, ReduceOp

#: default number of tail records that triggers an automatic checkpoint.
DEFAULT_CHECKPOINT_INTERVAL = 512


@dataclass(frozen=True)
class WalRecord:
    """One durable control-plane mutation.

    ``seq`` is the log-wide sequence number (monotonic, never reused across
    checkpoints), ``time`` the simulated clock at append, ``kind`` the
    operation tag the owner's ``apply`` function dispatches on, and ``data``
    the operation payload (a tuple of primitives / ObjectIDs / ObjectValues
    / CollectiveSpecs — everything :func:`to_wire` can encode).
    """

    seq: int
    time: float
    kind: str
    data: Any


class WriteAheadLog:
    """An in-memory WAL with periodic snapshot checkpoints.

    The owner supplies ``snapshot_fn`` (returns an opaque, *immutable-once-
    taken* snapshot of its current state) and drives replay with its own
    restore/apply callbacks; the log only guarantees ordering, stamping,
    and bounded tail length.  ``on_append`` / ``on_checkpoint`` are
    observational hooks (metrics, flight-recorder phase marks): they must
    not schedule events.
    """

    __slots__ = (
        "sim",
        "name",
        "checkpoint_interval",
        "snapshot_fn",
        "on_append",
        "on_checkpoint",
        "tail",
        "checkpoint_state",
        "checkpoint_seq",
        "checkpoint_time",
        "next_seq",
        "appends",
        "checkpoints",
        "replays",
        "frozen",
    )

    def __init__(
        self,
        sim,
        name: str,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        snapshot_fn: Optional[Callable[[], Any]] = None,
        on_append: Optional[Callable[[WalRecord], None]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ):
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.sim = sim
        self.name = name
        self.checkpoint_interval = checkpoint_interval
        self.snapshot_fn = snapshot_fn
        self.on_append = on_append
        self.on_checkpoint = on_checkpoint
        #: records appended since the last checkpoint, in sequence order.
        self.tail: List[WalRecord] = []
        self.checkpoint_state: Any = None
        #: sequence number the checkpoint covers up to (exclusive).
        self.checkpoint_seq = 0
        self.checkpoint_time = 0.0
        self.next_seq = 0
        self.appends = 0
        self.checkpoints = 0
        self.replays = 0
        #: set while the owning service is down: appends still land (the
        #: world keeps mutating — node purges arrive as callbacks), but
        #: auto-checkpointing is suspended so no snapshot of wiped state can
        #: ever be taken.
        self.frozen = False

    def __len__(self) -> int:
        return len(self.tail)

    def append(self, kind: str, data: Any) -> WalRecord:
        """Append one mutation record, stamped with the simulated clock."""
        record = WalRecord(seq=self.next_seq, time=self.sim._now, kind=kind, data=data)
        self.next_seq += 1
        self.tail.append(record)
        self.appends += 1
        if self.on_append is not None:
            self.on_append(record)
        if (
            not self.frozen
            and self.snapshot_fn is not None
            and len(self.tail) >= self.checkpoint_interval
        ):
            self.checkpoint()
        return record

    def checkpoint(self) -> None:
        """Fold the tail into a fresh snapshot and truncate it."""
        if self.snapshot_fn is None:
            raise ValueError(f"WAL {self.name!r} has no snapshot function")
        if self.frozen:
            raise ValueError(f"WAL {self.name!r} is frozen (owner down)")
        self.checkpoint_state = self.snapshot_fn()
        self.checkpoint_seq = self.next_seq
        self.checkpoint_time = self.sim._now
        self.tail = []
        self.checkpoints += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(self.checkpoint_seq)

    def replay(
        self,
        restore_fn: Callable[[Any], None],
        apply_fn: Callable[[WalRecord], None],
        upto_seq: Optional[int] = None,
    ) -> int:
        """Reconstruct owner state: restore the checkpoint, re-apply the tail.

        ``upto_seq`` (exclusive) limits replay to records appended before a
        given point — the crash-at-boundary tests use it to replay exactly
        the history that was durable at the kill.  Returns the number of
        tail records applied.
        """
        restore_fn(self.checkpoint_state)
        applied = 0
        for record in self.tail:
            if upto_seq is not None and record.seq >= upto_seq:
                break
            apply_fn(record)
            applied += 1
        self.replays += 1
        return applied


# ---------------------------------------------------------------------------
# Wire form
# ---------------------------------------------------------------------------
#
# The canonical JSON-safe encoding of a WAL record — the schema recorded in
# the ROADMAP.  Every value a control-plane op can carry round-trips:
#
#   None/bool/int/float/str    as themselves
#   bytes                      {"__bytes__": hex}
#   numpy ndarray              {"__ndarray__": {dtype, shape, data-hex}}
#   tuple                      {"__tuple__": [items]}
#   list                       [items]
#   dict                       {"__map__": [[key, value], ...]}  (any keys)
#   ObjectID                   {"__oid__": key}
#   ReduceOp                   {"__op__": name}
#   ObjectValue                {"__value__": {size, payload, metadata}}
#   CollectiveSpec             {"__spec__": {all dataclass fields}}


def to_wire(obj: Any) -> Any:
    """Encode one WAL payload value into JSON-safe plain data."""
    # Deferred import: lineage imports nothing from here, but keeping the
    # module edge one-directional at import time avoids a cycle.
    from repro.tasksys.lineage import CollectiveSpec

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": {
                "dtype": str(obj.dtype),
                "shape": list(obj.shape),
                "data": obj.tobytes().hex(),
            }
        }
    if isinstance(obj, tuple):
        return {"__tuple__": [to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [to_wire(item) for item in obj]
    if isinstance(obj, dict):
        return {"__map__": [[to_wire(k), to_wire(v)] for k, v in obj.items()]}
    if isinstance(obj, ObjectID):
        return {"__oid__": obj.key}
    if isinstance(obj, ReduceOp):
        return {"__op__": obj.name}
    if isinstance(obj, ObjectValue):
        return {
            "__value__": {
                "size": obj.size,
                "payload": to_wire(obj.payload),
                "metadata": to_wire(dict(obj.metadata)),
            }
        }
    if isinstance(obj, CollectiveSpec):
        return {
            "__spec__": {
                "spec_id": obj.spec_id,
                "kind": obj.kind,
                "participants": list(obj.participants),
                "root": obj.root,
                "op": to_wire(obj.op),
                "sources": to_wire(obj.sources),
                "targets": to_wire(obj.targets),
                "recvs": to_wire(obj.recvs),
                "payloads": to_wire(obj.payloads),
                "incarnation": obj.incarnation,
            }
        }
    raise TypeError(f"cannot encode {type(obj).__name__} for the WAL wire form")


def from_wire(obj: Any) -> Any:
    """Decode :func:`to_wire` output back into live values."""
    from repro.tasksys.lineage import CollectiveSpec

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [from_wire(item) for item in obj]
    if isinstance(obj, dict):
        if "__bytes__" in obj:
            return bytes.fromhex(obj["__bytes__"])
        if "__ndarray__" in obj:
            spec = obj["__ndarray__"]
            flat = np.frombuffer(
                bytes.fromhex(spec["data"]), dtype=np.dtype(spec["dtype"])
            )
            return flat.reshape(spec["shape"]).copy()
        if "__tuple__" in obj:
            return tuple(from_wire(item) for item in obj["__tuple__"])
        if "__map__" in obj:
            return {from_wire(k): from_wire(v) for k, v in obj["__map__"]}
        if "__oid__" in obj:
            return ObjectID(obj["__oid__"])
        if "__op__" in obj:
            return ReduceOp[obj["__op__"]]
        if "__value__" in obj:
            spec = obj["__value__"]
            return ObjectValue(
                size=spec["size"],
                payload=from_wire(spec["payload"]),
                metadata=from_wire(spec["metadata"]),
            )
        if "__spec__" in obj:
            fields = obj["__spec__"]
            return CollectiveSpec(
                spec_id=fields["spec_id"],
                kind=fields["kind"],
                participants=tuple(fields["participants"]),
                root=fields["root"],
                op=from_wire(fields["op"]),
                sources=from_wire(fields["sources"]),
                targets=from_wire(fields["targets"]),
                recvs=from_wire(fields["recvs"]),
                payloads=from_wire(fields["payloads"]),
                incarnation=fields["incarnation"],
            )
    raise TypeError(f"cannot decode wire object {obj!r}")


def record_to_wire(record: WalRecord) -> dict:
    """The canonical JSON-safe form of one WAL record."""
    return {
        "seq": record.seq,
        "time": record.time,
        "kind": record.kind,
        "data": to_wire(record.data),
    }


def record_from_wire(wire: dict) -> WalRecord:
    return WalRecord(
        seq=wire["seq"],
        time=wire["time"],
        kind=wire["kind"],
        data=from_wire(wire["data"]),
    )
