"""The task system: submission, scheduling, execution, wait/get, recovery.

The model follows Section 2.1 of the paper:

* the driver (running on node 0 by convention) submits tasks dynamically and
  receives :class:`~repro.tasksys.refs.ObjectRef` futures immediately;
* the scheduler places each task on a worker slot of an alive node
  (round-robin, with an optional placement hint);
* a worker fetches the task's ObjectRef arguments through the communication
  plane, runs the task body (a generator that can consume simulated compute
  time and use the plane directly), and ``Put``s the result;
* when a node fails, tasks running on it fail and are resubmitted, and
  finished objects whose only copy lived there are reconstructed by
  re-executing their producer task (lineage), after a failure-detection
  delay — well-behaving tasks never roll back.

For the collective orchestration layer (Section 6) the system additionally
supports:

* **idempotent re-submission by key and incarnation** — submitting a task
  with the same ``(key, incarnation)`` returns the existing record instead
  of duplicating it, so a recovery path that re-submits a collective's task
  set adopts the surviving tasks; a *higher* incarnation supersedes the old
  record (a deliberate fresh execution);
* **strict placement** — a task pinned to a rank's node waits for that node
  to recover instead of migrating, because a participant's share of a
  collective must produce its objects *on* that participant's node;
* **output adoption** — a re-executed task whose output already exists as a
  complete copy on an alive node (checked through the directory) finishes
  immediately instead of redoing the work, which is how a restarted
  root/caller adopts partials that completed during the failure-detection
  delay;
* **resource release on permanent failure** — a task that exhausts
  ``max_restarts`` mid-collective releases the store pins and plane
  reference counts it still holds (and aborts any reduce execution it
  started), so the object store can evict what the dead computation left
  behind.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

from repro.collectives.plane import CommPlane
from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.sim import Event, Interrupt, Process, Resource
from repro.store.objects import ObjectID, ObjectValue
from repro.tasksys.refs import ObjectRef


class TaskError(RuntimeError):
    """A task failed for a non-recoverable reason."""


class TaskStatus(Enum):
    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class TaskSpec:
    """Everything needed to (re-)execute one task."""

    task_id: int
    func: Callable[..., Generator]
    args: tuple
    kwargs: dict
    output_id: ObjectID
    name: str = ""
    node_hint: Optional[int] = None
    max_restarts: int = 10
    #: idempotency key: re-submitting the same (key, incarnation) adopts the
    #: existing record instead of duplicating the task.
    key: Optional[str] = None
    incarnation: int = 0
    #: "soft" tasks migrate to any alive node on re-execution; "strict" tasks
    #: are pinned to ``node_hint`` and wait for it to recover.
    placement: str = "soft"

    def describe(self) -> str:
        return self.name or getattr(self.func, "__name__", f"task-{self.task_id}")


@dataclass
class TaskRecord:
    """Mutable execution state of a task."""

    spec: TaskSpec
    status: TaskStatus = TaskStatus.PENDING
    node_id: Optional[int] = None
    attempts: int = 0
    finished_event: Optional[Event] = None
    process: Optional[Process] = None
    result_size: int = 0
    failure: Optional[BaseException] = None
    #: (node_id, object_id) pairs this task pinned in a store (its own output
    #: put plus every ``ctx.put``); released if the task fails permanently.
    held_objects: list = field(default_factory=list)
    #: reduce targets this task is driving; their executions are aborted if
    #: the task fails permanently so slot streams drop their references.
    reduce_targets: list = field(default_factory=list)


class TaskContext:
    """Handed to every task body; the task's window onto the cluster."""

    def __init__(self, system: "TaskSystem", node: Node, spec: TaskSpec):
        self.system = system
        self.node = node
        self.spec = spec
        self.sim = system.sim
        self.plane = system.plane

    def compute(self, seconds: float):
        """Consume ``seconds`` of simulated compute time."""
        return self.sim.timeout(max(0.0, seconds))

    def get(self, ref: "ObjectRef | ObjectID", read_only: bool = True) -> Generator:
        object_id = ref.object_id if isinstance(ref, ObjectRef) else ref
        value = yield from self.system.fetch(self.node, object_id, read_only=read_only)
        return value

    def put(self, value: ObjectValue, object_id: Optional[ObjectID] = None) -> Generator:
        object_id = object_id or ObjectID.unique(f"task{self.spec.task_id}-out")
        # Register the pin *before* the copy starts: an interrupted Put has
        # already created a pinned store entry that must not leak.
        self.system.note_held_object(self.spec.task_id, self.node.node_id, object_id)
        yield from self.plane.put(self.node, object_id, value)
        return ObjectRef(object_id=object_id, producer_task_id=self.spec.task_id)

    def reduce(self, target_id, source_refs, op, num_objects=None) -> Generator:
        source_ids = [
            ref.object_id if isinstance(ref, ObjectRef) else ref for ref in source_refs
        ]
        self.system.note_reduce_target(self.spec.task_id, target_id)
        result = yield from self.plane.reduce(
            self.node, target_id, source_ids, op, num_objects=num_objects
        )
        return result


class TaskSystem:
    """The dynamic-task runtime (a deliberately small Ray)."""

    def __init__(
        self,
        cluster: Cluster,
        plane: CommPlane,
        workers_per_node: Optional[int] = None,
        driver_node: int = 0,
        failure_detection_delay: Optional[float] = None,
    ):
        self.cluster = cluster
        self.plane = plane
        self.sim = cluster.sim
        self.config = cluster.config
        self.driver_node = cluster.nodes[driver_node]
        self.workers_per_node = workers_per_node or cluster.spec.workers_per_node
        self.failure_detection_delay = (
            failure_detection_delay
            if failure_detection_delay is not None
            else cluster.config.failure_detection_delay
        )
        self._task_counter = itertools.count()
        self._rr_counter = itertools.count()
        self.tasks: dict[int, TaskRecord] = {}
        #: idempotency key -> task id of the live record for that key.
        self._by_key: dict[str, int] = {}
        #: object id -> producing task id (lineage for reconstruction).
        self.lineage: dict[ObjectID, int] = {}
        self.worker_slots: dict[int, Resource] = {
            node.node_id: Resource(self.sim, capacity=self.workers_per_node)
            for node in cluster.nodes
        }
        self.metrics = TaskSystemMetrics()
        for node in cluster.nodes:
            node.on_failure(self._on_node_failure)

    # -- submission ---------------------------------------------------------------
    def submit(
        self,
        func: Callable[..., Generator],
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        node: Optional[int] = None,
        name: str = "",
        output_id: Optional[ObjectID] = None,
        max_restarts: int = 10,
        key: Optional[str] = None,
        incarnation: int = 0,
        placement: str = "soft",
    ) -> ObjectRef:
        """Submit a task; returns the future of its output immediately.

        ``func`` is a generator function ``func(ctx, *args, **kwargs)`` whose
        return value is an :class:`ObjectValue` (or ``None``); the system
        stores it under the returned ref's ObjectID.

        When ``key`` is given, submission is idempotent per
        ``(key, incarnation)``: a duplicate submission returns the existing
        record's ref (reviving it if it had failed permanently), and a
        submission with a higher incarnation supersedes the old record.
        """
        if placement not in ("soft", "strict"):
            raise ValueError(f"unknown placement {placement!r}")
        if placement == "strict" and node is None:
            raise ValueError("strict placement requires a node hint")
        if key is not None:
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                record = self.tasks[existing_id]
                if record.spec.incarnation >= incarnation:
                    if record.status is TaskStatus.FAILED:
                        self._revive(record)
                    self.metrics.deduplicated += 1
                    return ObjectRef(
                        object_id=record.spec.output_id,
                        producer_task_id=record.spec.task_id,
                    )
                # A higher incarnation supersedes the old record: cancel it
                # so the two incarnations never run concurrently.
                self._supersede(record)
        task_id = next(self._task_counter)
        output = output_id or ObjectID.unique(f"task-{task_id}")
        spec = TaskSpec(
            task_id=task_id,
            func=func,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            output_id=output,
            name=name,
            node_hint=node,
            max_restarts=max_restarts,
            key=key,
            incarnation=incarnation,
            placement=placement,
        )
        record = TaskRecord(spec=spec, finished_event=Event(self.sim))
        self.tasks[task_id] = record
        if key is not None:
            self._by_key[key] = task_id
        self.lineage[output] = task_id
        self.metrics.submitted += 1
        self._launch(record)
        return ObjectRef(object_id=output, producer_task_id=task_id)

    def _revive(self, record: TaskRecord) -> None:
        """Re-launch a permanently failed record for a fresh round of attempts."""
        record.attempts = 0
        record.failure = None
        if record.finished_event is None or record.finished_event.triggered:
            record.finished_event = Event(self.sim)
        self._launch(record)

    def _supersede(self, record: TaskRecord) -> None:
        """Cancel a record that a higher incarnation replaces.

        Marked FAILED *before* the interrupt so the dying process's failure
        handler sees a finalized record and does not resubmit it.
        """
        was_running = record.status in (TaskStatus.PENDING, TaskStatus.RUNNING)
        if record.status is not TaskStatus.FINISHED:
            record.status = TaskStatus.FAILED
            self._release_task_resources(record)
            if not record.finished_event.triggered:
                record.finished_event.fail(
                    TaskError(
                        f"task {record.spec.describe()} superseded by a newer incarnation"
                    )
                )
                # An expected cancellation, not an error to surface if
                # nobody happens to be waiting on the old incarnation.
                record.finished_event.defused = True
        if was_running and record.process is not None and record.process.is_alive:
            record.process.interrupt("superseded by a newer incarnation")

    # -- scheduling ------------------------------------------------------------------
    def _pick_node(self, spec: TaskSpec) -> Node:
        if spec.placement == "strict":
            # Pinned to its rank's node; _execute waits for recovery if down.
            return self.cluster.nodes[spec.node_hint]
        alive = [node for node in self.cluster.nodes if node.alive]
        if not alive:
            raise TaskError("no alive nodes to schedule on")
        if spec.node_hint is not None:
            hinted = self.cluster.nodes[spec.node_hint]
            if hinted.alive:
                return hinted
        index = next(self._rr_counter) % len(alive)
        return alive[index]

    def _launch(self, record: TaskRecord) -> None:
        node = self._pick_node(record.spec)
        record.node_id = node.node_id
        record.status = TaskStatus.PENDING
        record.attempts += 1
        record.process = self.sim.process(
            self._execute(record, node), name=f"task-{record.spec.describe()}"
        )

    # -- execution --------------------------------------------------------------------
    def _execute(self, record: TaskRecord, node: Node) -> Generator:
        spec = record.spec
        obs = self.cluster.obs
        span = None
        if obs is not None:
            # One span per *attempt*: a re-execution after a failure is a
            # sibling span in the same trace (found through the lineage key
            # ``"{spec_id}#role/rank"``), so fault-and-recover reads as one
            # trace with a failed attempt and its replacement.
            span = obs.tracer.start_span(
                f"task:{spec.describe()}",
                parent=(
                    obs.tracer.lineage_parent(spec.key)
                    if spec.key is not None
                    else None
                ),
                attempt=record.attempts,
                node=node.node_id,
            )
            obs.tracer.bind_object(spec.output_id, span)
        slot = self.worker_slots[node.node_id].request()
        try:
            if not node.alive and spec.placement == "strict":
                # A strict share belongs on this node; wait out the failure.
                yield node.recovery_event()
            yield slot
            if not node.alive:
                raise TaskError(f"node {node.node_id} died before task start")
            if record.attempts > 1 and self._object_available(spec.output_id):
                # Idempotent re-execution: the previous attempt's output
                # survived (or completed during the failure-detection delay);
                # adopt it instead of redoing the work.
                if span is not None:
                    span.attrs["adopted"] = True
                record.status = TaskStatus.FINISHED
                self.metrics.adoptions += 1
                self.metrics.finished += 1
                if not record.finished_event.triggered:
                    record.finished_event.succeed(spec.output_id)
                return
            record.status = TaskStatus.RUNNING
            context = TaskContext(self, node, spec)
            resolved_args = []
            for arg in spec.args:
                if isinstance(arg, ObjectRef):
                    value = yield from self.fetch(node, arg.object_id)
                    resolved_args.append(value)
                else:
                    resolved_args.append(arg)
            body = spec.func(context, *resolved_args, **spec.kwargs)
            result = None
            if body is not None and hasattr(body, "send"):
                result = yield from body
            elif body is not None:
                result = body
            if result is None:
                result = ObjectValue(size=0)
            if not isinstance(result, ObjectValue):
                raise TaskError(
                    f"task {spec.describe()} returned {type(result).__name__}, "
                    "expected ObjectValue or None"
                )
            if not node.alive:
                raise TaskError(f"node {node.node_id} died during task")
            self.note_held_object(spec.task_id, node.node_id, spec.output_id)
            yield from self.plane.put(node, spec.output_id, result)
            record.result_size = result.size
            record.status = TaskStatus.FINISHED
            self.metrics.finished += 1
            if not record.finished_event.triggered:
                record.finished_event.succeed(spec.output_id)
        except Interrupt:
            self._handle_task_failure(record, TaskError("interrupted by node failure"))
        except Exception as exc:  # noqa: BLE001 - any task failure goes to recovery
            self._handle_task_failure(record, exc)
        finally:
            self.worker_slots[node.node_id].release(slot)
            if span is not None:
                if record.status is TaskStatus.FINISHED:
                    span.finish("ok")
                elif record.status is TaskStatus.PENDING:
                    span.finish("retrying")
                else:
                    span.finish("failed")

    def _handle_task_failure(self, record: TaskRecord, exc: BaseException) -> None:
        if record.status is TaskStatus.FAILED:
            # Already finalized (superseded or permanently failed); the
            # interrupt that killed the process must not resubmit it.
            return
        record.failure = exc
        self.metrics.failures += 1
        if record.attempts <= record.spec.max_restarts:
            record.status = TaskStatus.PENDING
            self.sim.process(
                self._resubmit_after_delay(record),
                name=f"resubmit-{record.spec.describe()}",
            )
        else:
            record.status = TaskStatus.FAILED
            self._release_task_resources(record)
            if not record.finished_event.triggered:
                record.finished_event.fail(
                    TaskError(f"task {record.spec.describe()} failed permanently: {exc}")
                )

    # -- resource ledger ----------------------------------------------------------
    def note_held_object(self, task_id: int, node_id: int, object_id: ObjectID) -> None:
        """Record that a task pinned ``object_id`` on ``node_id``'s store."""
        record = self.tasks.get(task_id)
        if record is not None and (node_id, object_id) not in record.held_objects:
            record.held_objects.append((node_id, object_id))

    def note_reduce_target(self, task_id: int, target_id: ObjectID) -> None:
        """Record that a task is driving a reduce toward ``target_id``."""
        record = self.tasks.get(task_id)
        if record is not None and target_id not in record.reduce_targets:
            record.reduce_targets.append(target_id)

    def _release_task_resources(self, record: TaskRecord) -> None:
        """Release pins and plane references a permanently failed task holds.

        A task that dies mid-collective can leave (a) pinned, possibly
        unsealed store entries from interrupted ``Put``s and (b) a reduce
        execution whose slot streams hold reference counts on partials.
        Both would wedge eviction forever, so the framework cleans them up
        when it gives up on the task.
        """
        runtime = getattr(self.plane, "runtime", None)
        if runtime is not None:
            for target_id in record.reduce_targets:
                execution = runtime.active_reductions.get(target_id)
                if execution is not None:
                    execution.abort(f"task {record.spec.describe()} failed permanently")
                    self.metrics.aborted_reductions += 1
        for node_id, object_id in record.held_objects:
            store = None
            if runtime is not None:
                store = runtime.stores.get(node_id)
            if store is None:
                continue
            entry = store.objects.get(object_id)
            if entry is None:
                continue
            if self._held_by_another_live_task(record, node_id, object_id):
                # A sibling task (e.g. a newer incarnation of the same
                # share) still depends on this copy's pin.
                continue
            entry.pinned = False
            if not entry.sealed and entry.ref_count == 0 and not entry.has_waiters:
                # An interrupted Put left a partial nobody will ever finish.
                store.delete(object_id)
            self.metrics.released_objects += 1
        record.held_objects = []
        record.reduce_targets = []

    def _held_by_another_live_task(
        self, record: TaskRecord, node_id: int, object_id: ObjectID
    ) -> bool:
        return any(
            other is not record
            and other.status is not TaskStatus.FAILED
            and (node_id, object_id) in other.held_objects
            for other in self.tasks.values()
        )

    def _resubmit_after_delay(self, record: TaskRecord) -> Generator:
        yield self.sim.timeout(self.failure_detection_delay)
        self.metrics.reconstructions += 1
        self._launch(record)

    # -- driver API --------------------------------------------------------------------
    def fetch(self, node: Node, object_id: ObjectID, read_only: bool = True) -> Generator:
        """Get an object through the plane, reconstructing it if it was lost."""
        value = yield from self.plane.get(node, object_id, read_only=read_only)
        return value

    def get(self, ref: ObjectRef, read_only: bool = True) -> Generator:
        """Driver-side get (runs on the driver node)."""
        value = yield from self.fetch(self.driver_node, ref.object_id, read_only=read_only)
        return value

    def wait(
        self,
        refs: Iterable[ObjectRef],
        num_returns: int = 1,
    ) -> Generator:
        """Block until ``num_returns`` of the given tasks have finished.

        Returns ``(ready_refs, pending_refs)`` like ``ray.wait``.
        """
        refs = list(refs)
        if num_returns <= 0 or num_returns > len(refs):
            raise ValueError(
                f"num_returns must be in [1, {len(refs)}], got {num_returns}"
            )
        pending = {ref: self._finished_event_for(ref) for ref in refs}
        ready: list[ObjectRef] = []
        while len(ready) < num_returns:
            yield self.sim.any_of(list(pending.values()))
            newly_ready = [ref for ref, event in pending.items() if event.triggered]
            for ref in newly_ready:
                ready.append(ref)
                del pending[ref]
        return ready[:num_returns] + ready[num_returns:], list(pending.keys())

    def _finished_event_for(self, ref: ObjectRef) -> Event:
        if ref.producer_task_id is None:
            event = Event(self.sim)
            event.succeed(ref.object_id)
            return event
        record = self.tasks[ref.producer_task_id]
        if record.status is TaskStatus.FINISHED:
            event = Event(self.sim)
            event.succeed(ref.object_id)
            return event
        return record.finished_event

    def put(self, value: ObjectValue, object_id: Optional[ObjectID] = None) -> Generator:
        """Driver-side put."""
        object_id = object_id or ObjectID.unique("driver-put")
        yield from self.plane.put(self.driver_node, object_id, value)
        return ObjectRef(object_id=object_id, producer_task_id=None)

    # -- failure handling ---------------------------------------------------------------
    def _on_node_failure(self, node: Node) -> None:
        """Fail running tasks on the node and reconstruct lost finished objects."""
        for record in self.tasks.values():
            if record.node_id != node.node_id:
                continue
            if record.status is TaskStatus.RUNNING or record.status is TaskStatus.PENDING:
                if record.process is not None and record.process.is_alive:
                    record.process.interrupt(f"node {node.node_id} failed")
            elif record.status is TaskStatus.FINISHED:
                # The object's only guaranteed copy was on the failed node;
                # if no other node holds it, re-execute the producer task.
                if not self._object_available_elsewhere(record.spec.output_id, node):
                    record.status = TaskStatus.PENDING
                    record.finished_event = Event(self.sim)
                    self.sim.process(
                        self._resubmit_after_delay(record),
                        name=f"reconstruct-{record.spec.describe()}",
                    )

    def _object_available_elsewhere(self, object_id: ObjectID, failed_node: Node) -> bool:
        return self._object_available(object_id, excluding=failed_node.node_id)

    def _object_available(
        self, object_id: ObjectID, excluding: Optional[int] = None
    ) -> bool:
        """True if a complete copy of ``object_id`` lives on an alive node."""
        runtime = getattr(self.plane, "runtime", None)
        if runtime is None:
            return False
        locations = runtime.directory.locations_of(object_id)
        for node_id, info in locations.items():
            if node_id == excluding or not info.complete:
                continue
            if self.cluster.nodes[node_id].alive:
                return True
        return False


@dataclass
class TaskSystemMetrics:
    """Counters describing a run of the task system."""

    submitted: int = 0
    finished: int = 0
    failures: int = 0
    reconstructions: int = 0
    #: idempotent submissions answered from an existing record.
    deduplicated: int = 0
    #: re-executions that adopted a surviving output instead of re-running.
    adoptions: int = 0
    #: store entries unpinned/deleted when a task failed permanently.
    released_objects: int = 0
    #: reduce executions aborted when their driving task failed permanently.
    aborted_reductions: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "finished": self.finished,
            "failures": self.failures,
            "reconstructions": self.reconstructions,
            "deduplicated": self.deduplicated,
            "adoptions": self.adoptions,
            "released_objects": self.released_objects,
            "aborted_reductions": self.aborted_reductions,
        }
