"""Ray/Dask-style naive object transfer plane (no collective optimization).

This is the baseline the paper calls "Ray" and "Dask" in its evaluation:

* an object is always fetched from a node holding a *complete* copy — in
  practice the creator — so a broadcast of one object to ``n`` receivers
  serializes at the creator's uplink;
* there is no pipelining, so the worker→store copy on the sender and the
  store→worker copy on the receiver add to the critical path;
* there is no reduce primitive: the caller gathers every input object and
  reduces locally, then re-``put``s the result.

The two published systems differ mostly in per-operation overhead and
data-plane efficiency, captured by :class:`TaskSystemProfile` (Dask's
single-threaded serialization and scheduler round trips make it the slower
of the two in Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.collectives.plane import CommPlane
from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.store.objects import ObjectID, ObjectValue, ReduceOp


@dataclass(frozen=True)
class TaskSystemProfile:
    """Calibration knobs for a naive task-system data plane.

    Attributes:
        name: display name ("ray" / "dask").
        per_op_overhead: fixed control overhead charged per put/get, in
            seconds (task bookkeeping, serialization setup, scheduler RPCs).
        bandwidth_efficiency: fraction of the NIC bandwidth the data plane
            actually achieves (Dask's single-threaded comms achieve roughly
            half of line rate on the paper's testbed).
    """

    name: str
    per_op_overhead: float
    bandwidth_efficiency: float

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if self.per_op_overhead < 0:
            raise ValueError("per_op_overhead must be non-negative")


RAY_PROFILE = TaskSystemProfile(name="ray", per_op_overhead=5.0e-4, bandwidth_efficiency=1.0)
DASK_PROFILE = TaskSystemProfile(name="dask", per_op_overhead=5.0e-3, bandwidth_efficiency=0.45)


class TaskSystemPlane(CommPlane):
    """A naive plane built on the same stores/directory, with Hoplite's tricks off."""

    def __init__(self, cluster: Cluster, profile: TaskSystemProfile = RAY_PROFILE):
        self.cluster = cluster
        self.profile = profile
        self.name = profile.name
        self.config = cluster.config
        self.sim = cluster.sim
        self.runtime = HopliteRuntime(
            cluster,
            options=HopliteOptions(
                enable_pipelining=False,
                enable_small_object_cache=False,
                enable_dynamic_broadcast=False,
                # The baselines share the fabric (their transfers claim the
                # same tier links) but place transfers obliviously: no
                # locality-sorted source selection, no rack-local parking,
                # no hierarchical reduce.
                topology_aware=False,
            ),
        )

    # -- internal helpers --------------------------------------------------------
    def _overhead(self) -> Generator:
        if self.profile.per_op_overhead > 0:
            yield self.sim.timeout(self.profile.per_op_overhead)

    def _bandwidth_penalty(self, nbytes: int) -> Generator:
        """Extra time modelling a data plane slower than the NIC line rate."""
        efficiency = self.profile.bandwidth_efficiency
        if efficiency < 1.0 and nbytes > 0:
            penalty = nbytes / self.config.bandwidth * (1.0 / efficiency - 1.0)
            yield self.sim.timeout(penalty)

    # -- CommPlane API --------------------------------------------------------------
    def put(self, node: Node, object_id: ObjectID, value: ObjectValue) -> Generator:
        yield from self._overhead()
        result = yield from self.runtime.client(node).put(object_id, value)
        return result

    def get(self, node: Node, object_id: ObjectID, read_only: bool = True) -> Generator:
        yield from self._overhead()
        store = self.runtime.store(node)
        was_local = store.contains_complete(object_id)
        value = yield from self.runtime.client(node).get(
            object_id,
            read_only=read_only,
            # Everything a naive task system moves is a bulk flow; the tag
            # keeps the per-flow accounting comparable across planes.
            flow=Flow(f"{self.profile.name}:get:{object_id}->n{node.node_id}", FlowClass.BULK),
        )
        if not was_local:
            yield from self._bandwidth_penalty(value.size)
        return value

    def reduce(
        self,
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        """Gather-and-reduce at the caller: the only option without collectives.

        ``num_objects`` keeps the task-system semantics of reducing the first
        ``k`` available objects: the caller fetches objects as they become
        available and stops once ``k`` have been reduced.
        """
        from repro.core.reduce import ReduceResult

        yield from self._overhead()
        count = num_objects if num_objects is not None else len(source_ids)
        count = max(1, min(count, len(source_ids)))
        directory = self.runtime.directory

        # Fetch every candidate as it becomes available, first-come-first-reduced.
        fetched: list[tuple[ObjectID, ObjectValue]] = []
        pending = list(source_ids)
        while len(fetched) < count and pending:
            creation_events = {
                object_id: directory.creation_event(object_id) for object_id in pending
            }
            yield self.sim.any_of(list(creation_events.values()))
            ready_now = [
                object_id
                for object_id, event in creation_events.items()
                if event.triggered
            ]
            for object_id in ready_now:
                if len(fetched) >= count:
                    break
                value = yield from self.get(node, object_id, read_only=True)
                fetched.append((object_id, value))
                pending.remove(object_id)

        payload = op.combine_many([value.payload for _, value in fetched])
        size = max((value.size for _, value in fetched), default=0)
        yield self.sim.timeout(self.config.reduce_compute_time(size) * max(1, len(fetched) - 1))
        yield from self.put(node, target_id, ObjectValue(size=size, payload=payload))
        reduced_ids = [object_id for object_id, _ in fetched]
        return ReduceResult(
            target_id=target_id,
            reduced_ids=reduced_ids,
            unreduced_ids=[oid for oid in source_ids if oid not in set(reduced_ids)],
            degree=len(reduced_ids),
            root_node_id=node.node_id,
            completion_time=self.sim.now,
        )

    def allgather(self, node: Node, source_ids: Sequence[ObjectID]) -> Generator:
        """Sequential gets, one per source: how ``ray.get([refs])`` behaves.

        Without partial-copy relaying every receiver pulls each object from
        its creator, so all participants' allgathers contend for the same
        uplinks; the per-object control overhead is paid once per source.
        """
        from repro.core.gather import AllGatherResult

        if not source_ids:
            raise ValueError("allgather requires at least one source object")
        values = []
        for object_id in source_ids:
            value = yield from self.get(node, object_id, read_only=True)
            values.append(value)
        return AllGatherResult(
            source_ids=list(source_ids),
            values=values,
            retries=0,
            completion_time=self.sim.now,
        )

    def reduce_scatter(
        self,
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        """The caller's shard, by gather-and-reduce (no collective support)."""
        from repro.core.gather import ReduceScatterResult

        result = yield from self.reduce(node, target_id, source_ids, op, num_objects)
        value = yield from self.get(node, target_id, read_only=True)
        return ReduceScatterResult(
            target_id=target_id,
            reduce=result,
            value=value,
            completion_time=self.sim.now,
        )

    def alltoall(
        self,
        node: Node,
        sends: Sequence[tuple[ObjectID, ObjectValue]],
        recv_ids: Sequence[ObjectID],
    ) -> Generator:
        """Puts then gets, strictly in order: no send/receive overlap."""
        from repro.core.alltoall import AllToAllResult

        if not sends and not recv_ids:
            raise ValueError("alltoall requires at least one send or receive")
        for object_id, value in sends:
            yield from self.put(node, object_id, value)
        values = []
        for object_id in recv_ids:
            value = yield from self.get(node, object_id, read_only=True)
            values.append(value)
        return AllToAllResult(
            sent_ids=[object_id for object_id, _ in sends],
            recv_ids=list(recv_ids),
            values=values,
            retries=0,
            completion_time=self.sim.now,
        )

    def delete(self, node: Node, object_id: ObjectID) -> Generator:
        yield from self._overhead()
        result = yield from self.runtime.client(node).delete(object_id)
        return result
