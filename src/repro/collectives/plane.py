"""The communication-plane interface shared by Hoplite and the task-system baselines.

The applications in :mod:`repro.apps` (async SGD, RL, model serving, sync
training) are written against this small interface so that the exact same
application logic can run over Hoplite or over the Ray/Dask-style naive
plane — mirroring how the paper swaps the communication layer underneath
unchanged Ray programs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.net.node import Node
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import HopliteRuntime


class CommPlane:
    """Abstract object-transfer plane: put / get / reduce over ObjectIDs.

    The collective family (``allgather`` / ``reduce_scatter`` / ``alltoall``)
    is expressed per participant: every participant calls the method for its
    own share (its column of the shard matrix, its row of sends), mirroring
    how ``allreduce`` is a per-participant reduce-then-get composition.
    """

    name = "abstract"

    def put(self, node: Node, object_id: ObjectID, value: ObjectValue) -> Generator:
        raise NotImplementedError

    def get(self, node: Node, object_id: ObjectID, read_only: bool = True) -> Generator:
        raise NotImplementedError

    def reduce(
        self,
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        raise NotImplementedError

    def allgather(self, node: Node, source_ids: Sequence[ObjectID]) -> Generator:
        raise NotImplementedError

    def reduce_scatter(
        self,
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        raise NotImplementedError

    def alltoall(
        self,
        node: Node,
        sends: Sequence[tuple[ObjectID, ObjectValue]],
        recv_ids: Sequence[ObjectID],
    ) -> Generator:
        raise NotImplementedError

    def delete(self, node: Node, object_id: ObjectID) -> Generator:
        raise NotImplementedError


class HoplitePlane(CommPlane):
    """The communication plane backed by Hoplite (the paper's system)."""

    name = "hoplite"

    def __init__(self, runtime: "HopliteRuntime"):
        self.runtime = runtime

    def put(self, node: Node, object_id: ObjectID, value: ObjectValue) -> Generator:
        result = yield from self.runtime.client(node).put(object_id, value)
        return result

    def get(self, node: Node, object_id: ObjectID, read_only: bool = True) -> Generator:
        value = yield from self.runtime.client(node).get(object_id, read_only=read_only)
        return value

    def reduce(
        self,
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        result = yield from self.runtime.client(node).reduce(
            target_id, source_ids, op, num_objects=num_objects
        )
        return result

    def allgather(self, node: Node, source_ids: Sequence[ObjectID]) -> Generator:
        result = yield from self.runtime.client(node).allgather(source_ids)
        return result

    def reduce_scatter(
        self,
        node: Node,
        target_id: ObjectID,
        source_ids: Sequence[ObjectID],
        op: ReduceOp = ReduceOp.SUM,
        num_objects: Optional[int] = None,
    ) -> Generator:
        result = yield from self.runtime.client(node).reduce_scatter(
            target_id, source_ids, op, num_objects=num_objects
        )
        return result

    def alltoall(
        self,
        node: Node,
        sends: Sequence[tuple[ObjectID, ObjectValue]],
        recv_ids: Sequence[ObjectID],
    ) -> Generator:
        result = yield from self.runtime.client(node).alltoall(sends, recv_ids)
        return result

    def delete(self, node: Node, object_id: ObjectID) -> Generator:
        result = yield from self.runtime.client(node).delete(object_id)
        return result
