"""Baseline collective-communication implementations.

The paper compares Hoplite against:

* **OpenMPI** — static, rank-based collective schedules (binomial broadcast,
  binary-tree reduce, recursive halving–doubling allreduce, flat gather);
* **Gloo** — ring, ring-chunked and halving–doubling allreduce plus an
  unoptimized broadcast;
* **Ray / Dask** — task systems without collective support: every receiver
  pulls the whole object from its creator, reduce is performed locally by the
  caller after gathering all inputs, and transfers pay extra worker↔store
  copies without pipelining.

All baselines run on the same simulated cluster substrate as Hoplite, so the
comparisons isolate the *algorithmic* differences the paper is about.
"""

from repro.collectives.base import CollectiveGroup, StaticCollectiveError
from repro.collectives.gloo import GlooCollectives
from repro.collectives.mpi import MPICollectives
from repro.collectives.naive import DASK_PROFILE, RAY_PROFILE, TaskSystemPlane, TaskSystemProfile
from repro.collectives.plane import CommPlane, HoplitePlane

__all__ = [
    "CollectiveGroup",
    "CommPlane",
    "DASK_PROFILE",
    "GlooCollectives",
    "HoplitePlane",
    "MPICollectives",
    "RAY_PROFILE",
    "StaticCollectiveError",
    "TaskSystemPlane",
    "TaskSystemProfile",
]
