"""Gloo-style collectives: ring / ring-chunked / halving–doubling allreduce.

Gloo (the collective library behind PyTorch's CPU backend) is the paper's
strongest allreduce baseline: ring-chunked allreduce is more bandwidth
efficient than a reduce-plus-broadcast composition, which is why Figure 13
shows Hoplite 12–24% behind Gloo on synchronous data-parallel training.
Gloo's broadcast, on the other hand, is not optimized (Figure 7).

Like all static collectives, every operation here waits for the full group
before moving data (Figure 8).
"""

from __future__ import annotations

from typing import Generator

from repro.collectives.base import CollectiveGroup, StaticOperation
from repro.collectives.mpi import (
    HalvingDoublingAllreduce,
    PairwiseAlltoall,
    RingAllgather,
)
from repro.net.node import Node
from repro.net.transport import transfer_bytes
from repro.sim import Event


class RingAllreduce(StaticOperation):
    """Ring allreduce: reduce-scatter around the ring, then allgather.

    With ``chunked=True`` each per-step chunk is further segmented so that a
    rank can start forwarding a chunk before it has fully received it — this
    is Gloo's "ring chunked" variant, the fastest algorithm for large
    payloads in the paper's measurements.
    """

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int, chunked: bool = True):
        super().__init__(group, nbytes)
        self.chunked = chunked
        size = group.size
        steps = max(1, 2 * (size - 1))
        #: (rank, step) -> event set when the step's chunk has arrived at rank.
        self._chunk_arrived: dict[tuple[int, int], Event] = {
            (rank, step): Event(self.sim) for rank in range(size) for step in range(steps)
        }

    def _chunk_bytes(self) -> int:
        return max(1, int(self.nbytes / self.group.size))

    def _participate(self, rank: int, node: Node) -> Generator:
        size = self.group.size
        if size == 1:
            self.mark_data_ready(rank)
            return
        next_rank = (rank + 1) % size
        next_node = self.group.node_of_rank(next_rank)
        chunk = self._chunk_bytes()
        total_steps = 2 * (size - 1)
        reduce_steps = size - 1
        for step in range(total_steps):
            if step > 0:
                # Cannot forward the chunk for this step before receiving the
                # previous step's chunk from the predecessor.
                yield self._chunk_arrived[(rank, step - 1)]
                if step <= reduce_steps:
                    yield self.sim.timeout(self.config.reduce_compute_time(chunk))
            flow = self.flow(rank, next_rank)
            if self.chunked:
                yield from self._send_chunk_segmented(node, next_node, chunk, flow)
            else:
                yield from transfer_bytes(self.config, node, next_node, chunk, flow)
            arrived = self._chunk_arrived[(next_rank, step)]
            if not arrived.triggered:
                arrived.succeed(self.sim.now)
        # Wait for the last chunk addressed to us.
        yield self._chunk_arrived[(rank, total_steps - 1)]
        self.mark_data_ready(rank)

    def _send_chunk_segmented(self, src: Node, dst: Node, chunk: int, flow) -> Generator:
        from repro.net.coalesce import nic_path_links, register_stream, unregister_stream
        from repro.net.transport import transfer_block

        remaining = chunk
        block = min(self.config.block_size, chunk)
        links = nic_path_links(src, dst)
        register_stream(links)
        try:
            while remaining > 0:
                nbytes = min(block, remaining)
                yield from transfer_block(self.config, src, dst, nbytes, flow)
                remaining -= nbytes
        finally:
            unregister_stream(links)


class FlatBroadcast(StaticOperation):
    """Gloo's unoptimized broadcast: the root sends to every rank directly."""

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int, root: int = 0):
        super().__init__(group, nbytes)
        self.root = root
        self._received: dict[int, Event] = {
            rank: Event(self.sim) for rank in range(group.size)
        }

    def _participate(self, rank: int, node: Node) -> Generator:
        if rank == self.root:
            root_node = node
            for other in range(self.group.size):
                if other == self.root:
                    continue
                self.sim.process(
                    self._send_to(root_node, other), name=f"gloo-bcast-{other}"
                )
            self.mark_data_ready(rank)
            return
        yield self._received[rank]
        self.mark_data_ready(rank)

    def _send_to(self, root_node: Node, dst_rank: int) -> Generator:
        yield from transfer_bytes(
            self.config,
            root_node,
            self.group.node_of_rank(dst_rank),
            self.nbytes,
            self.flow(self.root, dst_rank),
        )
        event = self._received[dst_rank]
        if not event.triggered:
            event.succeed(self.sim.now)


class GlooCollectives:
    """Factory for Gloo-style collective operations on a cluster."""

    def __init__(self, cluster, node_ids=None):
        self.group = CollectiveGroup(cluster, node_ids)
        self.cluster = cluster
        self.config = cluster.config
        self.sim = cluster.sim

    def broadcast(self, nbytes: int, root: int = 0) -> FlatBroadcast:
        return FlatBroadcast(self.group, nbytes, root=root)

    def allreduce_ring(self, nbytes: int) -> RingAllreduce:
        return RingAllreduce(self.group, nbytes, chunked=False)

    def allreduce_ring_chunked(self, nbytes: int) -> RingAllreduce:
        return RingAllreduce(self.group, nbytes, chunked=True)

    def allreduce_halving_doubling(self, nbytes: int) -> HalvingDoublingAllreduce:
        return HalvingDoublingAllreduce(self.group, nbytes)

    def allgather(self, nbytes: int) -> RingAllgather:
        """Gloo implements the same ring allgather as OpenMPI's tuned module."""
        return RingAllgather(self.group, nbytes)

    def alltoall(self, nbytes: int) -> PairwiseAlltoall:
        """Gloo's alltoall is a pairwise exchange as well."""
        return PairwiseAlltoall(self.group, nbytes)
