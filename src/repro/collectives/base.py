"""Shared machinery for the static (MPI/Gloo-style) collective baselines.

Static collectives are *rank based*: the communication schedule is a pure
function of the participant count and the message size, fixed before the
operation starts.  The classes here model the part that matters for the
paper's comparison:

* every rank must *arrive* (its process must be running and have called the
  collective) before it can take part in any step that involves it;
* for operations that are inherently synchronous in MPI/Gloo (reduce,
  allreduce, gather), **no data moves until every rank has arrived** — this
  is what Figure 8 measures;
* for broadcast, a rank can receive as soon as its own ancestors in the
  static tree have the data, which lets MPI make partial progress when ranks
  happen to arrive in tree order (Section 7, "Asynchronous MPI").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.net.transport import transfer_block, transfer_bytes
from repro.sim import Event, Simulator


class StaticCollectiveError(RuntimeError):
    """Misuse of a static collective (e.g. an unknown rank participating)."""


@dataclass
class RankResult:
    """Per-rank outcome of a collective operation."""

    rank: int
    node_id: int
    arrive_time: float
    finish_time: float


class CollectiveGroup:
    """A fixed group of ranks mapped onto cluster nodes.

    This is the moral equivalent of an MPI communicator: the mapping from
    rank to node is fixed when the group is created and every collective
    operation on the group uses it.
    """

    def __init__(self, cluster: Cluster, node_ids: Optional[Sequence[int]] = None):
        self.cluster = cluster
        self.config: NetworkConfig = cluster.config
        self.sim: Simulator = cluster.sim
        if node_ids is None:
            node_ids = [node.node_id for node in cluster.nodes]
        if not node_ids:
            raise StaticCollectiveError("a collective group needs at least one rank")
        self.node_ids = list(node_ids)
        self.nodes: list[Node] = [cluster.nodes[node_id] for node_id in self.node_ids]

    @property
    def size(self) -> int:
        return len(self.node_ids)

    def node_of_rank(self, rank: int) -> Node:
        if rank < 0 or rank >= self.size:
            raise StaticCollectiveError(f"rank {rank} out of range (size {self.size})")
        return self.nodes[rank]


class _Barrier:
    """All ranks must check in before the barrier opens."""

    def __init__(self, sim: Simulator, size: int):
        self.sim = sim
        self.size = size
        self.arrived = 0
        self.open_event = Event(sim)

    def check_in(self) -> Event:
        self.arrived += 1
        if self.arrived >= self.size and not self.open_event.triggered:
            self.open_event.succeed(self.sim.now)
        return self.open_event


class StaticOperation:
    """Base class for one instance of a static collective operation.

    Subclasses implement :meth:`_participate`, the per-rank protocol.  The
    public :meth:`participate` wraps it with arrival bookkeeping so that the
    asynchrony experiments (Figure 8) can stagger rank arrivals.
    """

    #: whether the operation can start before every rank has arrived.
    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int):
        if nbytes < 0:
            raise StaticCollectiveError("message size must be non-negative")
        self.group = group
        self.sim = group.sim
        self.config = group.config
        self.nbytes = int(nbytes)
        self._barrier = _Barrier(group.sim, group.size)
        self._arrive_times: dict[int, float] = {}
        #: set by each rank when it holds the (final) data for this op.
        self._data_ready: dict[int, Event] = {
            rank: Event(group.sim) for rank in range(group.size)
        }
        self._arrival_events: dict[int, Event] = {
            rank: Event(group.sim) for rank in range(group.size)
        }

    # -- per-rank entry point -------------------------------------------------
    def participate(self, rank: int) -> Generator:
        """Run rank ``rank``'s share of the collective.  Returns a RankResult."""
        node = self.group.node_of_rank(rank)
        arrive_time = self.sim.now
        self._arrive_times[rank] = arrive_time
        if not self._arrival_events[rank].triggered:
            self._arrival_events[rank].succeed(arrive_time)
        barrier_event = self._barrier.check_in()
        if self.requires_full_group:
            yield barrier_event
        yield from self._participate(rank, node)
        return RankResult(
            rank=rank,
            node_id=node.node_id,
            arrive_time=arrive_time,
            finish_time=self.sim.now,
        )

    def _participate(self, rank: int, node: Node) -> Generator:  # pragma: no cover
        raise NotImplementedError

    # -- helpers for subclasses --------------------------------------------------
    def wait_arrival(self, rank: int) -> Event:
        return self._arrival_events[rank]

    def mark_data_ready(self, rank: int) -> None:
        event = self._data_ready[rank]
        if not event.triggered:
            event.succeed(self.sim.now)

    def wait_data_ready(self, rank: int) -> Event:
        return self._data_ready[rank]

    def flow(self, src_rank: int, dst_rank: int) -> Flow:
        """The bulk flow tag for this operation's ``src -> dst`` stream."""
        return Flow(
            f"{type(self).__name__}:{src_rank}->{dst_rank}", FlowClass.BULK
        )

    def send_whole(self, src_rank: int, dst_rank: int) -> Generator:
        yield from transfer_bytes(
            self.config,
            self.group.node_of_rank(src_rank),
            self.group.node_of_rank(dst_rank),
            self.nbytes,
            self.flow(src_rank, dst_rank),
        )

    def send_segmented(self, src_rank: int, dst_rank: int, ready_blocks=None) -> Generator:
        """Send the payload block by block, optionally gated on per-block readiness.

        ``ready_blocks`` is an optional callable ``block_index -> Event`` used
        to pipeline through intermediate ranks.
        """
        from repro.net.coalesce import nic_path_links, register_stream, unregister_stream

        src = self.group.node_of_rank(src_rank)
        dst = self.group.node_of_rank(dst_rank)
        flow = self.flow(src_rank, dst_rank)
        total = self.config.num_blocks(self.nbytes)
        links = nic_path_links(src, dst)
        register_stream(links)
        try:
            for index in range(total):
                if ready_blocks is not None:
                    yield ready_blocks(index)
                yield from transfer_block(
                    self.config, src, dst, self.config.block_bytes(self.nbytes, index), flow
                )
        finally:
            unregister_stream(links)
        return self.sim.now
