"""OpenMPI-style static collectives on the simulated cluster.

These reproduce the *structure* of the algorithms OpenMPI uses on the
paper's testbed:

* broadcast — binomial tree rooted at the sender, with segment (block)
  pipelining down the tree.  A rank can only receive once it has arrived, so
  arrival order interacts with the static tree exactly as discussed in the
  paper's Section 7 and measured in Figure 8a.
* reduce — static binary tree toward the root with segment pipelining; like
  MPI, nothing moves until every rank has entered the collective.
* gather — every rank sends its full buffer to the root.
* allreduce — recursive halving–doubling (reduce-scatter + allgather).
* allgather — ring algorithm with segment pipelining (OpenMPI's and Gloo's
  large-message choice): each rank forwards the piece it received in the
  previous step to its successor.
* alltoall — pairwise linear exchange: in round ``r`` rank ``i`` sends its
  personalized block to rank ``(i + r) mod n``; sends are non-blocking and
  serialize on the NIC resources.
* send/recv — plain point-to-point used by the Figure 6 RTT benchmark.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.collectives.base import (
    CollectiveGroup,
    StaticOperation,
)
from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.net.coalesce import nic_path_links, register_stream, unregister_stream
from repro.net.transport import transfer_block, transfer_bytes
from repro.sim import Event


def binomial_children(vrank: int, size: int) -> list[int]:
    """Children of ``vrank`` in a binomial broadcast tree of ``size`` ranks."""
    children = []
    mask = 1
    while mask < size:
        if vrank & mask:
            break
        child = vrank | mask
        if child < size:
            children.append(child)
        mask <<= 1
    return children


def binomial_parent(vrank: int) -> Optional[int]:
    """Parent of ``vrank`` in the binomial tree (``None`` for the root)."""
    if vrank == 0:
        return None
    return vrank & (vrank - 1)


class BinomialBroadcast(StaticOperation):
    """Segment-pipelined binomial-tree broadcast."""

    requires_full_group = False

    def __init__(self, group: CollectiveGroup, nbytes: int, root: int = 0):
        super().__init__(group, nbytes)
        self.root = root
        total_blocks = self.config.num_blocks(self.nbytes)
        self._block_ready: list[list[Event]] = [
            [Event(self.sim) for _ in range(total_blocks)] for _ in range(group.size)
        ]

    def _vrank(self, rank: int) -> int:
        return (rank - self.root) % self.group.size

    def _rank_of_vrank(self, vrank: int) -> int:
        return (vrank + self.root) % self.group.size

    def _participate(self, rank: int, node: Node) -> Generator:
        vrank = self._vrank(rank)
        total_blocks = self.config.num_blocks(self.nbytes)
        if vrank == 0:
            for block in self._block_ready[rank]:
                if not block.triggered:
                    block.succeed(self.sim.now)
            self.mark_data_ready(rank)
            return
        parent_rank = self._rank_of_vrank(binomial_parent(vrank))
        parent_node = self.group.node_of_rank(parent_rank)
        flow = self.flow(parent_rank, rank)
        links = nic_path_links(parent_node, node)
        register_stream(links)
        try:
            for index in range(total_blocks):
                yield self._block_ready[parent_rank][index]
                yield from transfer_block(
                    self.config,
                    parent_node,
                    node,
                    self.config.block_bytes(self.nbytes, index),
                    flow,
                )
                if not self._block_ready[rank][index].triggered:
                    self._block_ready[rank][index].succeed(self.sim.now)
        finally:
            unregister_stream(links)
        self.mark_data_ready(rank)


class PipelineChainBroadcast(StaticOperation):
    """Segment-pipelined chain broadcast (OpenMPI's large-message algorithm).

    Ranks form a chain in rank order starting at the root; each rank forwards
    blocks to its successor as soon as it has received them.  For very large
    payloads this approaches ``S/B`` regardless of the group size, which is
    why OpenMPI's tuned decision rules pick it over the binomial tree.
    """

    requires_full_group = False

    def __init__(self, group: CollectiveGroup, nbytes: int, root: int = 0):
        super().__init__(group, nbytes)
        self.root = root
        total_blocks = self.config.num_blocks(self.nbytes)
        self._block_ready: list[list[Event]] = [
            [Event(self.sim) for _ in range(total_blocks)] for _ in range(group.size)
        ]

    def _vrank(self, rank: int) -> int:
        return (rank - self.root) % self.group.size

    def _rank_of_vrank(self, vrank: int) -> int:
        return (vrank + self.root) % self.group.size

    def _participate(self, rank: int, node: Node) -> Generator:
        vrank = self._vrank(rank)
        total_blocks = self.config.num_blocks(self.nbytes)
        if vrank == 0:
            for block in self._block_ready[rank]:
                if not block.triggered:
                    block.succeed(self.sim.now)
            self.mark_data_ready(rank)
            return
        predecessor_rank = self._rank_of_vrank(vrank - 1)
        predecessor_node = self.group.node_of_rank(predecessor_rank)
        flow = self.flow(predecessor_rank, rank)
        links = nic_path_links(predecessor_node, node)
        register_stream(links)
        try:
            for index in range(total_blocks):
                yield self._block_ready[predecessor_rank][index]
                yield from transfer_block(
                    self.config,
                    predecessor_node,
                    node,
                    self.config.block_bytes(self.nbytes, index),
                    flow,
                )
                if not self._block_ready[rank][index].triggered:
                    self._block_ready[rank][index].succeed(self.sim.now)
        finally:
            unregister_stream(links)
        self.mark_data_ready(rank)


class BinaryTreeReduce(StaticOperation):
    """Segment-pipelined static binary-tree reduce toward the root."""

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int, root: int = 0):
        super().__init__(group, nbytes)
        self.root = root
        total_blocks = self.config.num_blocks(self.nbytes)
        #: per rank, per block: the rank's *partial result* block is ready.
        self._partial_ready: list[list[Event]] = [
            [Event(self.sim) for _ in range(total_blocks)] for _ in range(group.size)
        ]
        #: per (parent, child), per block: the child's block arrived at parent.
        self._arrived: dict[tuple[int, int], list[Event]] = {}

    def _vrank(self, rank: int) -> int:
        return (rank - self.root) % self.group.size

    def _rank_of_vrank(self, vrank: int) -> int:
        return (vrank + self.root) % self.group.size

    def _children(self, vrank: int) -> list[int]:
        children = []
        for child in (2 * vrank + 1, 2 * vrank + 2):
            if child < self.group.size:
                children.append(child)
        return children

    def _pull_child(self, rank: int, child_rank: int) -> Generator:
        node = self.group.node_of_rank(rank)
        child_node = self.group.node_of_rank(child_rank)
        total_blocks = self.config.num_blocks(self.nbytes)
        arrived = self._arrived[(rank, child_rank)]
        # Partial results moving up the static tree are reduce-partial class,
        # like Hoplite's dynamic-tree streams.
        flow = Flow(
            f"{type(self).__name__}:{child_rank}->{rank}", FlowClass.REDUCE_PARTIAL
        )
        links = nic_path_links(child_node, node)
        register_stream(links)
        try:
            for index in range(total_blocks):
                yield self._partial_ready[child_rank][index]
                yield from transfer_block(
                    self.config,
                    child_node,
                    node,
                    self.config.block_bytes(self.nbytes, index),
                    flow,
                )
                if not arrived[index].triggered:
                    arrived[index].succeed(self.sim.now)
        finally:
            unregister_stream(links)

    def _participate(self, rank: int, node: Node) -> Generator:
        vrank = self._vrank(rank)
        child_vranks = self._children(vrank)
        child_ranks = [self._rank_of_vrank(v) for v in child_vranks]
        total_blocks = self.config.num_blocks(self.nbytes)
        pullers = []
        for child_rank in child_ranks:
            self._arrived[(rank, child_rank)] = [Event(self.sim) for _ in range(total_blocks)]
            pullers.append(
                self.sim.process(
                    self._pull_child(rank, child_rank),
                    name=f"mpi-reduce-pull-{rank}-{child_rank}",
                )
            )
        for index in range(total_blocks):
            for child_rank in child_ranks:
                yield self._arrived[(rank, child_rank)][index]
            nbytes = self.config.block_bytes(self.nbytes, index)
            compute = self.config.reduce_compute_time(nbytes) * max(1, len(child_ranks))
            if compute > 0 and child_ranks:
                yield self.sim.timeout(compute)
            event = self._partial_ready[rank][index]
            if not event.triggered:
                event.succeed(self.sim.now)
        # Non-root ranks return once their partial is fully computed; the
        # parent's puller moves the data.  The root's completion is the
        # operation's completion.
        if pullers:
            yield self.sim.all_of(pullers)
        self.mark_data_ready(rank)


class FlatGather(StaticOperation):
    """Every rank sends its full buffer to the root."""

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int, root: int = 0):
        super().__init__(group, nbytes)
        self.root = root
        self._received = 0
        self._all_received = Event(group.sim)

    def _participate(self, rank: int, node: Node) -> Generator:
        if rank == self.root:
            if self.group.size == 1 and not self._all_received.triggered:
                self._all_received.succeed(self.sim.now)
            yield self._all_received
            self.mark_data_ready(rank)
            return
        yield from transfer_bytes(
            self.config,
            node,
            self.group.node_of_rank(self.root),
            self.nbytes,
            self.flow(rank, self.root),
        )
        self._received += 1
        if self._received >= self.group.size - 1 and not self._all_received.triggered:
            self._all_received.succeed(self.sim.now)
        self.mark_data_ready(rank)


class HalvingDoublingAllreduce(StaticOperation):
    """Recursive halving–doubling allreduce (the classic large-message algorithm).

    Non-power-of-two groups are handled the standard way: the first
    ``2 * r`` ranks pair up so that ``r`` of them drop out of the main
    exchange and receive the final result from their partner at the end.
    """

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int):
        super().__init__(group, nbytes)
        size = group.size
        self.pof2 = 1
        while self.pof2 * 2 <= size:
            self.pof2 *= 2
        self.rem = size - self.pof2
        self._step_received: dict[tuple[int, int], Event] = {}
        self._fold_received: dict[int, Event] = {}
        self._final_received: dict[int, Event] = {}
        num_steps = self._num_steps()
        for rank in range(size):
            for step in range(2 * num_steps):
                self._step_received[(rank, step)] = Event(self.sim)
            self._fold_received[rank] = Event(self.sim)
            self._final_received[rank] = Event(self.sim)

    def _num_steps(self) -> int:
        steps = 0
        value = self.pof2
        while value > 1:
            value //= 2
            steps += 1
        return steps

    def _participate(self, rank: int, node: Node) -> Generator:
        size = self.group.size
        if size == 1:
            self.mark_data_ready(rank)
            return
        # Fold the excess ranks into the power-of-two core.
        in_core = True
        core_rank = rank
        if rank < 2 * self.rem:
            if rank % 2 == 1:
                # Odd ranks among the first 2*rem send their data to rank-1
                # and sit out the core exchange.
                yield from transfer_bytes(
                    self.config,
                    node,
                    self.group.node_of_rank(rank - 1),
                    self.nbytes,
                    self.flow(rank, rank - 1),
                )
                event = self._fold_received[rank - 1]
                if not event.triggered:
                    event.succeed(self.sim.now)
                in_core = False
            else:
                yield self._fold_received[rank]
                yield self.sim.timeout(self.config.reduce_compute_time(self.nbytes))
                core_rank = rank // 2
        elif rank >= 2 * self.rem:
            core_rank = rank - self.rem

        if in_core:
            yield from self._core_exchange(rank, core_rank, node)

        # Unfold: the core partner sends the final result back.
        if rank < 2 * self.rem:
            if rank % 2 == 1:
                yield self._final_received[rank]
            else:
                yield from transfer_bytes(
                    self.config,
                    node,
                    self.group.node_of_rank(rank + 1),
                    self.nbytes,
                    self.flow(rank, rank + 1),
                )
                event = self._final_received[rank + 1]
                if not event.triggered:
                    event.succeed(self.sim.now)
        self.mark_data_ready(rank)

    def _core_exchange(self, rank: int, core_rank: int, node: Node) -> Generator:
        """Reduce-scatter (halving) followed by allgather (doubling)."""
        num_steps = self._num_steps()
        # Reduce-scatter: exchanged segment halves every step.
        segment = self.nbytes / 2.0
        distance = self.pof2 // 2
        for step in range(num_steps):
            partner_core = core_rank ^ distance
            partner_rank = self._core_to_rank(partner_core)
            yield from transfer_bytes(
                self.config,
                node,
                self.group.node_of_rank(partner_rank),
                int(max(1, segment)),
                self.flow(rank, partner_rank),
            )
            recv_event = self._step_received[(partner_rank, step)]
            if not recv_event.triggered:
                recv_event.succeed(self.sim.now)
            yield self._step_received[(rank, step)]
            yield self.sim.timeout(self.config.reduce_compute_time(segment))
            segment /= 2.0
            distance //= 2
        # Allgather: segment doubles every step.
        segment = self.nbytes / self.pof2
        distance = 1
        for step in range(num_steps):
            partner_core = core_rank ^ distance
            partner_rank = self._core_to_rank(partner_core)
            yield from transfer_bytes(
                self.config,
                node,
                self.group.node_of_rank(partner_rank),
                int(max(1, segment)),
                self.flow(rank, partner_rank),
            )
            recv_event = self._step_received[(partner_rank, num_steps + step)]
            if not recv_event.triggered:
                recv_event.succeed(self.sim.now)
            yield self._step_received[(rank, num_steps + step)]
            segment *= 2.0
            distance *= 2

    def _core_to_rank(self, core_rank: int) -> int:
        if core_rank < self.rem:
            return core_rank * 2
        return core_rank + self.rem


class RingAllgather(StaticOperation):
    """Segment-pipelined ring allgather (``nbytes`` is the per-rank piece).

    ``n - 1`` steps; in step ``s`` every rank forwards to its successor the
    piece it received in step ``s - 1`` (its own contribution in step 0).
    Like every static collective here the exchange is synchronous: no data
    moves until the whole group has arrived.
    """

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int):
        super().__init__(group, nbytes)
        size = group.size
        #: (rank, step) -> the piece sent around the ring in ``step`` arrived.
        self._piece_arrived: dict[tuple[int, int], Event] = {
            (rank, step): Event(self.sim)
            for rank in range(size)
            for step in range(max(1, size - 1))
        }

    def _participate(self, rank: int, node: Node) -> Generator:
        size = self.group.size
        if size == 1:
            self.mark_data_ready(rank)
            return
        next_rank = (rank + 1) % size
        for step in range(size - 1):
            if step > 0:
                yield self._piece_arrived[(rank, step - 1)]
            yield from self.send_segmented(rank, next_rank)
            arrived = self._piece_arrived[(next_rank, step)]
            if not arrived.triggered:
                arrived.succeed(self.sim.now)
        yield self._piece_arrived[(rank, size - 2)]
        self.mark_data_ready(rank)


class PairwiseAlltoall(StaticOperation):
    """Pairwise linear-exchange alltoall (``nbytes`` per destination block).

    ``n - 1`` rounds; in round ``r`` rank ``i`` sends its block for rank
    ``(i + r) mod n`` and receives the block from rank ``(i - r) mod n``.
    Sends are issued back to back (non-blocking), so the exchange is paced by
    the uplink/downlink resources rather than round barriers — the standard
    ``MPI_Alltoall`` behaviour for mid-sized blocks.
    """

    requires_full_group = True

    def __init__(self, group: CollectiveGroup, nbytes: int):
        super().__init__(group, nbytes)
        size = group.size
        #: (rank, round) -> the block addressed to ``rank`` in ``round`` arrived.
        self._block_arrived: dict[tuple[int, int], Event] = {
            (rank, rnd): Event(self.sim)
            for rank in range(size)
            for rnd in range(1, size)
        }

    def _send_round(self, rank: int, rnd: int) -> Generator:
        dst_rank = (rank + rnd) % self.group.size
        yield from self.send_whole(rank, dst_rank)
        arrived = self._block_arrived[(dst_rank, rnd)]
        if not arrived.triggered:
            arrived.succeed(self.sim.now)

    def _participate(self, rank: int, node: Node) -> Generator:
        size = self.group.size
        if size == 1:
            self.mark_data_ready(rank)
            return
        # Non-blocking sends: all rounds are posted at once and pace
        # themselves on the uplink/downlink resources (round order is
        # preserved by the FIFO resource queues), so one busy destination
        # never head-of-line-blocks the blocks bound for idle destinations.
        senders = [
            self.sim.process(
                self._send_round(rank, rnd), name=f"alltoall-send-{rank}-{rnd}"
            )
            for rnd in range(1, size)
        ]
        gate = self.sim.all_of(senders)
        try:
            yield gate
            for rnd in range(1, size):
                yield self._block_arrived[(rank, rnd)]
        except BaseException:
            # An aborted rank (job restart after a node failure) must take
            # its posted sends down with it, or ghost transfers from the old
            # attempt keep consuming NIC resources under the retry.
            gate.defused = True
            for proc in senders:
                if proc.is_alive:
                    proc.interrupt("alltoall aborted")
            raise
        self.mark_data_ready(rank)


class MPICollectives:
    """Factory for OpenMPI-style collective operations on a cluster.

    Like OpenMPI's tuned module, the broadcast algorithm is picked by message
    size: binomial tree for small messages (latency bound), segment-pipelined
    chain for large messages (bandwidth bound).
    """

    #: messages at or above this size broadcast over the pipelined chain.
    CHAIN_BROADCAST_THRESHOLD = 512 * 1024

    def __init__(self, cluster, node_ids=None):
        self.group = CollectiveGroup(cluster, node_ids)
        self.cluster = cluster
        self.config = cluster.config
        self.sim = cluster.sim

    def broadcast(self, nbytes: int, root: int = 0) -> StaticOperation:
        if nbytes >= self.CHAIN_BROADCAST_THRESHOLD and self.group.size > 2:
            return PipelineChainBroadcast(self.group, nbytes, root=root)
        return BinomialBroadcast(self.group, nbytes, root=root)

    def reduce(self, nbytes: int, root: int = 0) -> BinaryTreeReduce:
        return BinaryTreeReduce(self.group, nbytes, root=root)

    def gather(self, nbytes: int, root: int = 0) -> FlatGather:
        return FlatGather(self.group, nbytes, root=root)

    def allreduce(self, nbytes: int) -> HalvingDoublingAllreduce:
        return HalvingDoublingAllreduce(self.group, nbytes)

    def allgather(self, nbytes: int) -> RingAllgather:
        """Ring allgather; ``nbytes`` is each rank's contribution."""
        return RingAllgather(self.group, nbytes)

    def alltoall(self, nbytes: int) -> PairwiseAlltoall:
        """Pairwise-exchange alltoall; ``nbytes`` is the per-destination block."""
        return PairwiseAlltoall(self.group, nbytes)

    def send(self, src_rank: int, dst_rank: int, nbytes: int) -> Generator:
        """Point-to-point send (used by the RTT microbenchmark)."""
        yield from transfer_bytes(
            self.config,
            self.group.node_of_rank(src_rank),
            self.group.node_of_rank(dst_rank),
            nbytes,
            Flow(f"mpi-send:{src_rank}->{dst_rank}", FlowClass.BULK),
        )
        return self.sim.now
