"""Serialize spans + flight records to Perfetto / ``chrome://tracing`` JSON.

The observability plane already records everything a trace viewer wants —
span trees on the simulated clock (``obs.tracer``), the semantic transfer
timeline (grant/release/arrive flight records), and the windowed
``link_queue_depth`` gauge — but only as Python objects.  This module
renders them in the Chrome Trace Event format (the JSON Perfetto and
``chrome://tracing`` both load), with:

* one thread track per **rank** (spans carrying a ``src``/``rank``/``node``
  attribute land on that node's track; other spans group by trace id under
  an "ops" process);
* one thread track per **link direction** (flight grant→release pairs
  become duration events, arrivals become instants);
* **counter tracks** for admission queue depth (one counter per link, fed
  from the ``link_queue_depth`` gauge series).

Timestamps convert simulated seconds to trace microseconds.  The output is
deterministic for a deterministic scenario: events are emitted in sorted
order, pids/tids are assigned from sorted track names, and
:func:`dump_chrome_trace` serializes with sorted keys — CI pins a golden
digest of a fixed-seed export on exactly this property.  (Host-clock
profiler output deliberately does NOT appear here; wall-clock figures are
exempt from determinism and live in the ``host_*`` metric families.)
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.flight import SEMANTIC_KINDS, FlightRecorder

_US = 1e6  # simulated seconds -> trace microseconds


def _span_track(span) -> tuple[str, str]:
    """(process, thread) names for one span."""
    attrs = span.attrs
    for key in ("src", "rank", "node"):
        owner = attrs.get(key)
        if owner is not None:
            return ("ranks", f"rank {owner}")
    return ("ops", str(span.trace_id))


def to_chrome_trace(
    obs=None,
    flight: Optional[FlightRecorder] = None,
    include_pops: bool = False,
) -> dict:
    """Build a Chrome Trace Event document from the recorded surfaces.

    ``obs`` is an :class:`repro.obs.Observability` (spans + queue-depth
    counters), ``flight`` a :class:`~repro.obs.flight.FlightRecorder`
    (transfer timeline); either may be ``None``.  ``include_pops`` adds an
    instant per raw kernel pop from the flight ring — complete but huge,
    off by default.
    """
    # (process_name, thread_name, event-dict-without-pid/tid); ids are
    # assigned over the sorted track-name set afterwards so the numbering
    # never depends on recording order.
    rows: list[tuple[str, str, dict]] = []

    if obs is not None:
        for span in obs.tracer.spans:
            if span.end is None:
                continue
            process, thread = _span_track(span)
            args = {str(k): v for k, v in span.attrs.items()}
            args["trace_id"] = str(span.trace_id)
            args["status"] = span.status
            rows.append(
                (
                    process,
                    thread,
                    {
                        "ph": "X",
                        "name": span.name,
                        "cat": span.name.partition(":")[0],
                        "ts": span.start * _US,
                        "dur": (span.end - span.start) * _US,
                        "args": args,
                    },
                )
            )

    if flight is not None:
        # grant -> release pairing per (link, flow/bytes detail), FIFO: the
        # semantic timeline is sorted by time, so the earliest unmatched
        # grant is the one this release closes.
        open_grants: dict[tuple[str, str], list[float]] = {}
        for time, kind, resource, detail in sorted(
            r for r in flight.records if r[1] in SEMANTIC_KINDS
        ):
            if kind == "grant":
                open_grants.setdefault((resource, detail), []).append(time)
            elif kind == "release":
                starts = open_grants.get((resource, detail))
                start = starts.pop(0) if starts else time
                rows.append(
                    (
                        "links",
                        resource,
                        {
                            "ph": "X",
                            "name": f"hold {detail}",
                            "cat": "link",
                            "ts": start * _US,
                            "dur": (time - start) * _US,
                            "args": {"flow": detail},
                        },
                    )
                )
            else:  # arrive
                rows.append(
                    (
                        "links",
                        resource,
                        {
                            "ph": "i",
                            "s": "t",
                            "name": f"arrive {detail}",
                            "cat": "link",
                            "ts": time * _US,
                            "args": {"flow": detail},
                        },
                    )
                )
        if include_pops:
            for time, kind, resource, detail in flight.records:
                if kind == "pop":
                    rows.append(
                        (
                            "kernel",
                            "pops",
                            {
                                "ph": "i",
                                "s": "t",
                                "name": detail,
                                "cat": "pop",
                                "ts": time * _US,
                                "args": {"seq": resource},
                            },
                        )
                    )

    counter_rows: list[dict] = []
    if obs is not None:
        family = obs.registry.families.get("link_queue_depth")
        if family is not None:
            for child in family.sorted_children():
                link = str(child.label_values[0])
                for t, value in child.series():
                    counter_rows.append(
                        {
                            "ph": "C",
                            "name": f"queue {link}",
                            "ts": t * _US,
                            "args": {"depth": value},
                        }
                    )

    # Deterministic integer pids/tids from the sorted track-name universe.
    processes = sorted({process for process, _thread, _event in rows})
    if counter_rows:
        processes.append("counters")
    pid_of = {name: index + 1 for index, name in enumerate(processes)}
    threads = sorted({(process, thread) for process, thread, _event in rows})
    tid_of = {key: index + 1 for index, key in enumerate(threads)}

    events: list[dict] = []
    for name in processes:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_of[name],
                "tid": 0,
                "args": {"name": name},
            }
        )
    for process, thread in threads:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid_of[process],
                "tid": tid_of[(process, thread)],
                "args": {"name": thread},
            }
        )
    body: list[dict] = []
    for process, thread, event in rows:
        event["pid"] = pid_of[process]
        event["tid"] = tid_of[(process, thread)]
        body.append(event)
    counter_pid = pid_of.get("counters")
    for event in counter_rows:
        event["pid"] = counter_pid
        event["tid"] = 0
        body.append(event)
    body.sort(
        key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"])
    )
    return {"displayTimeUnit": "ms", "traceEvents": events + body}


def dump_chrome_trace(
    path: str,
    obs=None,
    flight: Optional[FlightRecorder] = None,
    include_pops: bool = False,
) -> dict:
    """Write :func:`to_chrome_trace` output to ``path`` (returns the doc).

    Serialized with sorted keys and compact separators: two runs of the
    same seed produce byte-identical files.
    """
    doc = to_chrome_trace(obs=obs, flight=flight, include_pops=include_pops)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
    return doc
