"""The simulated-time observability plane.

One :class:`Observability` instance per :class:`~repro.net.cluster.Cluster`
(installed via ``cluster.enable_observability()``) bundles:

* a :class:`~repro.obs.metrics.MetricsRegistry` recording counters, gauges,
  and exact histograms against the cluster's **simulated** clock;
* a :class:`~repro.obs.trace.Tracer` recording span trees for collectives
  (driver-task spans linked through orchestrator lineage, optional
  transfer/reservation child spans);
* the instrumentation glue: it installs the kernel's per-event hook, the
  per-link-scheduler byte/queue/control children, the fast-path counter
  mirror, and the grant-wait recorder the transport calls.

Everything is opt-in and zero-overhead when off: with no plane installed,
every call site pays exactly one ``is not None`` branch (``cluster.obs``,
``sched._obs_bytes``, ``sim.on_step``), and the differential digests prove
that enabling the plane changes no simulated result.

Label taxonomy (documented in ROADMAP perf notes):

``tenant`` / ``job`` / ``op`` / ``size``
    fleet-scenario identity: who issued the collective, which app kind,
    which primitive, which size bucket (``evaluate_slos`` keys on these);
``link`` / ``tier``
    link identity (``n3/up``, ``rack0/up``) and its fabric tier (``nic``,
    ``rack_up``, ``rack_down``, ``zone_up``, ``zone_down``);
``cls``
    flow class (``control`` / ``reduce_partial`` / ``bulk``);
``kind``
    fast-path event kind (:data:`repro.net.fastpath.COUNTER_KEYS`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.fastpath import COUNTER_KEYS
from repro.net.flowsched import FlowClass, path_latency
from repro.obs.export import (
    SLORow,
    SLOTarget,
    evaluate_slos,
    format_slo_table,
    to_json,
    to_prometheus,
)
from repro.obs.chrometrace import dump_chrome_trace, to_chrome_trace
from repro.obs.hostprof import HostProfiler
from repro.obs.hostprof import format_table as format_hostprof_table
from repro.obs.locality import LocalityAnalyzer, format_locality_report
from repro.obs.metrics import MetricsRegistry, nearest_rank
from repro.obs.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.cluster import Cluster

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "SLOTarget",
    "SLORow",
    "evaluate_slos",
    "format_slo_table",
    "to_prometheus",
    "to_json",
    "nearest_rank",
    "HostProfiler",
    "format_hostprof_table",
    "LocalityAnalyzer",
    "format_locality_report",
    "to_chrome_trace",
    "dump_chrome_trace",
]


class Observability:
    """Metrics + tracing for one cluster, wired into every subsystem."""

    def __init__(
        self,
        cluster: "Cluster",
        window: float = 0.1,
        trace_transfers: bool = False,
    ):
        if cluster.obs is not None:
            raise ValueError("cluster already has an observability plane")
        self.cluster = cluster
        sim = cluster.sim
        self.registry = MetricsRegistry(sim, window=window)
        self.tracer = Tracer(sim)
        #: when True, every reservation and coalesced/convoy run records a
        #: child span (linked to its collective through the moved object).
        self.trace_transfers = trace_transfers
        #: ``(time, node_id, "down"|"up")`` membership transitions, in
        #: order — the critical-path profiler turns these into detection
        #: windows (``config.failure_detection_delay`` after each "down").
        self.node_events: list[tuple[float, int, str]] = []

        # -- pre-built children for the hot instrumentation sites ----------
        self._events = self.registry.counter(
            "sim_events", "kernel events processed"
        ).labels()
        self._grant_wait = {
            cls: self.registry.histogram(
                "link_grant_wait_seconds",
                "admission wait from reservation submission to grant",
                ("cls",),
            ).labels(cls=cls.name.lower())
            for cls in FlowClass
        }
        self._fastpath = {
            key: self.registry.counter(
                "fastpath_events", "fast-path planner events", ("kind",)
            ).labels(kind=key)
            for key in COUNTER_KEYS
        }
        bytes_family = self.registry.counter(
            "link_bytes", "bytes granted on a link direction", ("link", "tier", "cls")
        )
        queue_family = self.registry.gauge(
            "link_queue_depth",
            "admission queue length, sampled at reservation release",
            ("link", "tier"),
        )
        control_family = self.registry.counter(
            "control_messages", "control-plane RPCs sent", ("link", "tier")
        )
        control_plane_family = self.registry.counter(
            "control_plane_ops",
            "durability-layer operations: WAL appends, checkpoints, "
            "replays, cross-shard directory RPCs",
            ("op",),
        )
        #: pre-built children for the control-plane durability hot paths.
        self.control_plane = {
            op: control_plane_family.labels(op=op)
            for op in ("wal_appends", "checkpoints", "replays", "shard_rpcs")
        }

        # -- install ------------------------------------------------------
        for node in cluster.nodes:
            self._install_sched(
                node.uplink_sched,
                f"n{node.node_id}/up",
                "nic",
                bytes_family,
                queue_family,
                control_family,
            )
            self._install_sched(
                node.downlink_sched,
                f"n{node.node_id}/down",
                "nic",
                bytes_family,
                queue_family,
                control_family,
            )
        for link in cluster.fabric.iter_links():
            self._install_sched(
                link.sched,
                link.name,
                link.tier,
                bytes_family,
                queue_family,
                control_family,
            )
        for node in cluster.nodes:
            node.on_failure(self._on_node_down)
            node.on_recovery(self._on_node_up)
        cluster.fastpath_stats.on_event = self._on_fastpath
        sim.on_step = self._on_step
        cluster.obs = self

    @staticmethod
    def _install_sched(sched, name, tier, bytes_family, queue_family, control_family):
        sched._obs_bytes = {
            cls: bytes_family.labels(link=name, tier=tier, cls=cls.name.lower())
            for cls in FlowClass
        }
        sched._obs_queue = queue_family.labels(link=name, tier=tier)
        sched._obs_control = control_family.labels(link=name, tier=tier)

    def detach(self) -> None:
        """Uninstall every hook (the recorded data stays readable)."""
        cluster = self.cluster
        cluster.sim.on_step = None
        cluster.fastpath_stats.on_event = None
        for node in cluster.nodes:
            for sched in (node.uplink_sched, node.downlink_sched):
                sched._obs_bytes = None
                sched._obs_queue = None
                sched._obs_control = None
        for link in cluster.fabric.iter_links():
            link.sched._obs_bytes = None
            link.sched._obs_queue = None
            link.sched._obs_control = None
        for node in cluster.nodes:
            node.remove_failure_listener(self._on_node_down)
            try:
                node.recovery_listeners.remove(self._on_node_up)
            except ValueError:
                pass
        cluster.obs = None

    # -- hook bodies (called from the instrumented subsystems) -------------
    def _on_step(self, _when: float) -> None:
        self._events.inc()

    def _on_fastpath(self, key: str, n: int) -> None:
        self._fastpath[key].inc(n)

    def _on_node_down(self, node) -> None:
        self.node_events.append((self.cluster.sim._now, node.node_id, "down"))

    def _on_node_up(self, node) -> None:
        self.node_events.append((self.cluster.sim._now, node.node_id, "up"))

    def record_reservation(self, reservation) -> None:
        """Called by ``Reservation.release`` for every granted claim."""
        request = reservation.request
        self._grant_wait[reservation.flow.flow_class].observe(
            request.granted_at - reservation.created_at
        )
        for sched in (
            reservation.src.uplink_sched,
            reservation.dst.downlink_sched,
        ):
            gauge = sched._obs_queue
            if gauge is not None:
                gauge.set(sched.queue_length)
        if self.trace_transfers:
            flow = reservation.flow
            src, dst = reservation.src, reservation.dst
            span = self.tracer.start_span(
                "block",
                parent=self.tracer.span_for_flow(flow.flow_id),
                flow=flow.flow_id,
                cls=flow.flow_class.name.lower(),
                src=src.node_id,
                dst=dst.node_id,
                bytes=reservation.nbytes,
                grant_wait=request.granted_at - reservation.created_at,
                lat=path_latency(self.cluster.config, src, dst),
                links=self._span_links(src, dst),
            )
            # The span covers the reservation's whole life, submission to
            # release; recorded retroactively so the hot path stays one call.
            span.start = reservation.created_at
            span.finish("ok")

    def _span_links(self, src, dst) -> tuple:
        """The link names a src->dst block claims, for blame attribution."""
        if src is dst:
            return ()
        return (
            f"n{src.node_id}/up",
            f"n{dst.node_id}/down",
        ) + tuple(
            link.name
            for link in self.cluster.fabric.path_links(src.node_id, dst.node_id)
        )

    def record_run_start(self, run) -> None:
        """Called when a coalesced/convoy run attaches to its links."""
        if not self.trace_transfers:
            return
        flow_id = run.flow.flow_id if run.flow is not None else "untagged"
        run._obs_span = self.tracer.start_span(
            "coalesced_run",
            parent=self.tracer.span_for_flow(flow_id),
            kind=type(run).__name__,
            flow=flow_id,
            src=run.src.node_id,
            dst=run.dst.node_id,
            blocks=run.n,
            s0=run.s[0],
            arr_end=run.arr[-1],
            tx_sum=sum(run.tx),
            bytes=sum(run.sizes),
            lat=run.latency,
            links=self._span_links(run.src, run.dst),
        )

    def record_compute_run(self, run):
        """Called when a streaming compute (reduce-slot) run starts.

        Returns the span (the run finishes it) or None when transfer
        tracing is off.
        """
        if not self.trace_transfers:
            return None
        entry = run.entry
        oid = str(entry.object_id) if entry is not None else ""
        return self.tracer.start_span(
            "compute_run",
            parent=self.tracer.span_for_object(oid) if oid else None,
            object=oid,
            node=run.node.node_id,
            blocks=run.n,
            s0=run.s[0],
            end=run.end_at,
            busy=tuple(zip(run.s, run.t)),
        )
