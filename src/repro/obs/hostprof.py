"""Host-clock self-profiler: wall-clock blame per kernel subsystem.

Every observability layer so far records *simulated* time.  This module is
the deliberate exception: a sampling-free interval profiler that wraps
``time.perf_counter_ns`` around instrumented regions of the kernel and
attributes **host** wall-clock time to the subsystem that burned it —
the evidence the parallel-kernel work (ROADMAP item 3) needs before any
sharding decision.

Design:

* **Boundary accounting, not nesting timers.**  The profiler keeps a stack
  of open categories and a single ``_last`` timestamp.  ``enter(cat)``
  charges the elapsed nanoseconds since ``_last`` to the category on top
  of the stack (its *self* time), then pushes ``cat``; ``exit()`` charges
  the tail to the popped category.  Each boundary is one
  ``perf_counter_ns`` call and a dict update — no per-region subtraction
  bookkeeping, and self-times across categories sum to exactly the span
  between the first ``enter`` and the last ``exit``.
* **"dispatch" is the outermost region.**  ``Simulator.step`` enters it
  before popping the queue and exits after callbacks run, so every
  instrumented sub-region (admission, directory, flowsched, coalesce,
  convoy) nests inside it and all *un*-instrumented callback time lands in
  dispatch self-time.  Category totals therefore cover essentially 100% of
  step time; ``coverage`` in :meth:`HostProfiler.report` measures them
  against the ``Simulator.run`` loop wall (the only uncovered nanoseconds
  are the run-loop's own condition checks).
* **Zero overhead when off.**  Every site follows the existing hook
  discipline: load ``sim.host_prof`` once, guard with a single
  ``is not None`` branch, and do nothing else when disabled
  (``tests/test_hostprof.py`` scans the instrumented sources for exactly
  this pattern).
* **Exempt from bit-identical exports.**  Host nanoseconds differ run to
  run by construction.  :meth:`HostProfiler.export_to` stamps every series
  with ``clock="host"`` and is never called by the default fleet export,
  so the golden Prometheus bytes in ``benchmarks/bench_fleet.py`` stay
  frozen.  Simulated results are unaffected either way: the profiler only
  ever reads the host clock (the differential fuzz band pins this).
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: Instrumented kernel subsystems, in blame-table display order.
#: ``dispatch`` is the outermost region (event pop + callback run in
#: ``sim/core.py``); the rest are the nested hot regions named by ROADMAP
#: item 3.
CATEGORIES = (
    "dispatch",
    "admission",
    "flowsched",
    "directory",
    "coalesce",
    "convoy",
)


class HostProfiler:
    """Attribute kernel wall-clock self-time to subsystem categories.

    Attach with ``cluster.enable_host_profiler()`` (which sets
    ``sim.host_prof``); read results with :meth:`report` or
    :meth:`format_table`.  All figures use the host clock and are *not*
    deterministic — never fold them into a simulated-result digest.
    """

    __slots__ = (
        "nanos",
        "counts",
        "run_ns",
        "_stack",
        "_last",
        "_run_t0",
        "_in_run",
    )

    def __init__(self) -> None:
        #: self-time nanoseconds per category.
        self.nanos: dict[str, int] = {cat: 0 for cat in CATEGORIES}
        #: region entries per category.
        self.counts: dict[str, int] = {cat: 0 for cat in CATEGORIES}
        #: total wall nanoseconds spent inside ``Simulator.run`` loops.
        self.run_ns = 0
        self._stack: list[str] = []
        self._last = 0
        self._run_t0 = 0
        self._in_run = False

    # -- region boundaries (the hot path) ---------------------------------
    def enter(self, cat: str) -> None:
        """Open a region: charge elapsed self-time to the enclosing one."""
        now = perf_counter_ns()
        stack = self._stack
        if stack:
            self.nanos[stack[-1]] += now - self._last
        elif self._in_run:
            # Between steps the stack is empty; the gap since the last exit
            # is the run loop's own overhead (condition checks, hook loads).
            # Charge it to the region being entered — for the outermost
            # "dispatch" region this is exactly kernel-loop time, keeping
            # coverage near 100% instead of leaking a few percent per step.
            self.nanos[cat] += now - self._last
        stack.append(cat)
        self.counts[cat] += 1
        self._last = now

    def exit(self) -> None:
        """Close the innermost open region, charging it the tail."""
        now = perf_counter_ns()
        self.nanos[self._stack.pop()] += now - self._last
        self._last = now

    # -- run-loop bracketing ----------------------------------------------
    def begin_run(self) -> None:
        self._run_t0 = self._last = perf_counter_ns()
        self._in_run = True

    def end_run(self) -> None:
        self.run_ns += perf_counter_ns() - self._run_t0
        self._in_run = False

    # -- aggregation / reporting ------------------------------------------
    def merge(self, other: "HostProfiler") -> None:
        """Fold another profiler's totals in (multi-cluster scenarios)."""
        for cat in CATEGORIES:
            self.nanos[cat] += other.nanos[cat]
            self.counts[cat] += other.counts[cat]
        self.run_ns += other.run_ns

    def report(self) -> dict:
        """Blame summary: per-category seconds, counts, and coverage.

        ``coverage`` is the instrumented fraction of the measured
        ``Simulator.run`` wall time — the acceptance bar is >= 0.95, and in
        practice it sits at ~0.99 because ``dispatch`` wraps every step.
        """
        total_ns = sum(self.nanos.values())
        run_ns = self.run_ns
        return {
            "clock": "host",
            "kernel_wall_s": round(run_ns / 1e9, 6),
            "instrumented_wall_s": round(total_ns / 1e9, 6),
            "coverage": round(total_ns / run_ns, 4) if run_ns else 0.0,
            "categories": {
                cat: round(self.nanos[cat] / 1e9, 6) for cat in CATEGORIES
            },
            "counts": {cat: self.counts[cat] for cat in CATEGORIES},
        }

    def export_to(self, registry: "MetricsRegistry") -> None:
        """Emit ``host_*`` families (``clock="host"``) into a registry.

        Called explicitly by artifact writers — never by the default fleet
        export — so bit-identical metric goldens stay untouched.
        """
        secs = registry.counter(
            "host_wall_seconds",
            "kernel wall-clock self-time per subsystem "
            "(host clock; exempt from bit-identical discipline)",
            ("subsystem", "clock"),
        )
        regions = registry.counter(
            "host_regions",
            "instrumented region entries per subsystem (host clock)",
            ("subsystem", "clock"),
        )
        kernel = registry.counter(
            "host_kernel_wall_seconds",
            "total wall-clock seconds inside Simulator.run (host clock)",
            ("clock",),
        )
        for cat in CATEGORIES:
            secs.labels(subsystem=cat, clock="host").inc(self.nanos[cat] / 1e9)
            regions.labels(subsystem=cat, clock="host").inc(self.counts[cat])
        kernel.labels(clock="host").inc(self.run_ns / 1e9)


def format_table(report: dict) -> str:
    """Render a :meth:`HostProfiler.report` dict as an aligned blame table."""
    lines = [
        f"{'subsystem':<12s} {'wall_s':>10s} {'share':>7s} {'regions':>10s}",
    ]
    total = report["instrumented_wall_s"] or 1.0
    for cat in CATEGORIES:
        secs = report["categories"][cat]
        lines.append(
            f"{cat:<12s} {secs:>10.4f} {secs / total * 100.0:>6.1f}% "
            f"{report['counts'][cat]:>10d}"
        )
    lines.append(
        f"{'total':<12s} {report['instrumented_wall_s']:>10.4f} "
        f"{100.0:>6.1f}% {sum(report['counts'].values()):>10d}"
    )
    lines.append(
        f"kernel run wall {report['kernel_wall_s']:.4f}s, "
        f"coverage {report['coverage'] * 100.0:.1f}%"
    )
    return "\n".join(lines)
