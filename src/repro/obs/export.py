"""Exporters and the SLO evaluator for the observability plane.

``to_prometheus`` renders a :class:`~repro.obs.metrics.MetricsRegistry` in
the Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers,
``_total`` counters, summary-style ``quantile`` lines for the exact
histograms).  Families and children are emitted in sorted order, so the
output is deterministic for a deterministic scenario — CI pins a golden
export of the quick fleet run on that property.

``to_json`` serializes the same registry *with* its simulated-time series
(per-window counter increments, gauge samples, histogram observations), as
the machine-readable artifact the fleet benchmark uploads from CI.

``evaluate_slos`` checks recorded latency histograms against a target
table — exact p50/p99 per (op, size bucket), evaluated per tenant — and
returns pass/fail rows; ``format_slo_table`` renders them the way the MPI
AI-cluster benchmark README prints its latency targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricsRegistry,
    nearest_rank,
)

#: the quantiles every histogram exports (exact, nearest-rank).
EXPORT_QUANTILES = (0.5, 0.95, 0.99)


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP-line escaping: backslash and newline only (quotes stay)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: tuple, values: tuple, extra: Optional[tuple] = None) -> str:
    pairs = [f'{n}="{_escape(str(v))}"' for n, v in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape(str(extra[1]))}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (deterministic)."""
    lines: list[str] = []
    for family in registry.sorted_families():
        name = family.name
        if not family.children:
            # A declared family no child ever materialized (e.g. a labeled
            # histogram nothing observed into): bare HELP/TYPE headers with
            # no samples confuse scrapers, so emit nothing.
            continue
        if family.kind == COUNTER:
            lines.append(f"# HELP {name}_total {_escape_help(family.help)}")
            lines.append(f"# TYPE {name}_total counter")
            for child in family.sorted_children():
                labels = _label_str(family.label_names, child.label_values)
                lines.append(f"{name}_total{labels} {_fmt(child.value)}")
        elif family.kind == GAUGE:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} gauge")
            for child in family.sorted_children():
                labels = _label_str(family.label_names, child.label_values)
                lines.append(f"{name}{labels} {_fmt(child.value)}")
        elif family.kind == HISTOGRAM:
            # Exact quantiles: exported in the summary shape, because the
            # registry computes true nearest-rank values, not bucket bounds.
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} summary")
            for child in family.sorted_children():
                values = child._values_sorted()
                for q in EXPORT_QUANTILES:
                    labels = _label_str(
                        family.label_names, child.label_values, ("quantile", q)
                    )
                    if values:
                        lines.append(
                            f"{name}{labels} {_fmt(nearest_rank(values, q * 100))}"
                        )
                labels = _label_str(family.label_names, child.label_values)
                lines.append(f"{name}_sum{labels} {_fmt(child.total)}")
                lines.append(f"{name}_count{labels} {child.count}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, fastpath_stats=None) -> dict:
    """The registry plus its simulated-time series, JSON-serializable.

    ``fastpath_stats`` (a :class:`repro.net.fastpath.FastpathStats`, usually
    ``cluster.fastpath_stats``) rides along under a ``"fastpath"`` key so a
    single artifact carries the whole picture — metric series *and* the
    coalesce/convoy counters that explain them.  The key set is pinned to
    ``repro.net.fastpath.COUNTER_KEYS`` by a regression test.
    """
    families = []
    for family in registry.sorted_families():
        children = []
        for child in family.sorted_children():
            entry: dict = {
                "labels": dict(zip(family.label_names, child.label_values)),
            }
            if family.kind == COUNTER:
                entry["value"] = child.value
                entry["series"] = [list(point) for point in child.series()]
            elif family.kind == GAUGE:
                entry["value"] = child.value
                entry["series"] = [list(point) for point in child.series()]
            else:
                entry["count"] = child.count
                entry["sum"] = child.total
                values = child._values_sorted()
                entry["quantiles"] = {
                    str(q): nearest_rank(values, q * 100) for q in EXPORT_QUANTILES
                } if values else {}
                entry["series"] = [list(point) for point in child.series()]
            children.append(entry)
        families.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "children": children,
            }
        )
    doc = {"window": registry.window, "families": families}
    if fastpath_stats is not None:
        doc["fastpath"] = fastpath_stats.as_dict()
    return doc


# ---------------------------------------------------------------------------
# SLO evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SLOTarget:
    """Latency targets for one (op, size-bucket) cell, in simulated seconds."""

    op: str
    size: str
    p50: float
    p99: float


@dataclass
class SLORow:
    """One evaluated cell: measured vs target, per tenant."""

    tenant: str
    op: str
    size: str
    count: int
    p50: float
    p99: float
    p50_target: float
    p99_target: float

    @property
    def ok(self) -> bool:
        return self.p50 <= self.p50_target and self.p99 <= self.p99_target

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else "FAIL"


def evaluate_slos(
    registry: MetricsRegistry,
    targets: list[SLOTarget],
    metric: str = "fleet_op_latency_seconds",
) -> list[SLORow]:
    """Evaluate every recorded (tenant, op, size) cell against the targets.

    The metric must be a histogram family labeled at least (``tenant``,
    ``op``, ``size``); cells with no matching target are skipped (they are
    traffic without an SLO, e.g. background bulk), and a target with no
    recorded samples produces no row — absence of traffic is not a pass.
    """
    family = registry.families.get(metric)
    if family is None:
        return []
    by_cell = {(t.op, t.size): t for t in targets}
    idx = {name: i for i, name in enumerate(family.label_names)}
    rows: list[SLORow] = []
    for child in family.sorted_children():
        tenant = str(child.label_values[idx["tenant"]])
        op = str(child.label_values[idx["op"]])
        size = str(child.label_values[idx["size"]])
        target = by_cell.get((op, size))
        if target is None or child.count == 0:
            continue
        rows.append(
            SLORow(
                tenant=tenant,
                op=op,
                size=size,
                count=child.count,
                p50=child.percentile(50),
                p99=child.percentile(99),
                p50_target=target.p50,
                p99_target=target.p99,
            )
        )
    return rows


def format_slo_table(rows: list[SLORow]) -> str:
    """Render pass/fail rows like the MPI benchmark README's target table."""
    header = (
        f"{'tenant':<12} {'op':<12} {'size':>8} {'n':>6} "
        f"{'p50':>12} {'target':>12} {'p99':>12} {'target':>12}  verdict"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.tenant:<12} {row.op:<12} {row.size:>8} {row.count:>6} "
            f"{row.p50 * 1e3:>10.3f}ms {row.p50_target * 1e3:>10.3f}ms "
            f"{row.p99 * 1e3:>10.3f}ms {row.p99_target * 1e3:>10.3f}ms  {row.verdict}"
        )
    return "\n".join(lines)
