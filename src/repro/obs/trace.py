"""Span-based tracing of collectives on the simulated clock.

A :class:`Tracer` records :class:`Span` trees: one **root span** per
collective invocation (its ``trace_id`` *is* the ``spec_id``, so lineage
and traces share a key space), one **driver-task span** per task *attempt*
(re-executions after a failure are additional spans in the same trace — a
fault-and-recover shows up as one trace with a failed attempt and its
replacement), and — when ``trace_transfers`` is enabled — **transfer
spans** per coalesced run or per-block transfer, parented through the
object an orchestrated share produced or consumed.

The linking chain is the orchestrator's own lineage:

* the root span registers under the spec_id
  (:meth:`Tracer.root_for_spec`), and binds every ObjectID the spec
  mentions (:meth:`Tracer.bind_object`);
* a driver task's ``key`` is ``"{spec_id}#{role}/{rank}"`` — the task
  system recovers the spec_id by splitting on ``"#"`` and parents each
  attempt span on the registered root (:meth:`Tracer.lineage_parent`);
* a transfer's flow id embeds the ObjectID it moves
  (``"get:{object_id}->n{dst}"``), so transfer spans look the owning span
  up through the object binding (:meth:`Tracer.span_for_flow`).

Like the metrics registry, tracing is purely observational: spans are
plain records stamped with simulated time, never simulation events.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator


class Span:
    """One timed operation in a trace, stamped with simulated time."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "status",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: dict,
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.status = "open"
        self.attrs = attrs

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def finish(self, status: str = "ok") -> None:
        if self.end is None:
            self.end = self.tracer.sim._now
            self.status = status

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r} trace={self.trace_id!r} id={self.span_id}"
            f" parent={self.parent_id} [{self.start}..{self.end}] {self.status})"
        )


class Tracer:
    """Records spans; groups them into traces; links through lineage."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.spans: list[Span] = []
        self._next_id = count(1)
        #: spec_id -> its root span (the lineage anchor of the trace).
        self._roots: dict[str, Span] = {}
        #: str(object_id) -> owning span, for transfer-span parenting.
        self._objects: dict[str, Span] = {}

    # -- recording ---------------------------------------------------------
    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        if parent is not None and trace_id is None:
            trace_id = parent.trace_id
        span = Span(
            self,
            trace_id if trace_id is not None else f"trace-{name}",
            next(self._next_id),
            parent.span_id if parent is not None else None,
            name,
            self.sim._now,
            attrs,
        )
        self.spans.append(span)
        return span

    def root_for_spec(
        self, spec_id: str, kind: str = "", parent: Optional[Span] = None, **attrs
    ) -> Span:
        """The root span of ``spec_id``'s trace (one per spec, reused).

        Re-invoking a spec (a deliberate new incarnation) extends the same
        trace: recovery is part of the collective's story, not a new one.
        ``parent`` (when the invoking caller bound one of the spec's source
        objects to its own span, e.g. a fleet op span) records a cross-trace
        causal link: the trace_id stays the spec_id, but ``parent_id`` points
        into the caller's trace so the critical-path profiler can attribute
        the collective's transfers to the caller's operation.
        """
        root = self._roots.get(spec_id)
        if root is None:
            root = self.start_span(
                f"collective:{kind or 'unknown'}",
                trace_id=spec_id,
                parent=parent,
                **attrs,
            )
            self._roots[spec_id] = root
        return root

    def lineage_parent(self, key: str) -> Optional[Span]:
        """The root span a task key (``"{spec_id}#role/rank"``) descends from."""
        spec_id, sep, _ = key.partition("#")
        if not sep:
            return None
        return self._roots.get(spec_id)

    def bind_object(self, object_id, span: Span) -> None:
        """Attribute future transfers of ``object_id`` to ``span``'s trace."""
        self._objects[str(object_id)] = span

    def span_for_object(self, object_id) -> Optional[Span]:
        """The span ``object_id`` was bound to, or None."""
        return self._objects.get(str(object_id))

    def span_for_flow(self, flow_id: str) -> Optional[Span]:
        """The bound span a flow id's embedded object id points at.

        Flow ids follow ``"{verb}:{object_id}->n{node}"`` (with variants);
        unbound or unparseable flows trace as their own roots.  Reduce
        partials tag the *source* endpoint onto the object id
        (``"reduce:{target}:n2->n0"``), so a miss retries with a trailing
        ``:nX`` stripped.
        """
        _, sep, rest = flow_id.partition(":")
        if not sep:
            return self._objects.get(flow_id)
        oid, arrow, _ = rest.partition("->")
        key = oid if arrow else rest
        span = self._objects.get(key)
        if span is None:
            head, sep2, tail = key.rpartition(":")
            if sep2 and head and tail.startswith("n"):
                span = self._objects.get(head)
        return span

    # -- reading -----------------------------------------------------------
    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, each group in start order."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace(self, trace_id: str) -> list[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def format_trace(self, trace_id: str) -> str:
        """An indented, human-readable rendering of one trace."""
        spans = self.trace(trace_id)
        by_parent: dict[Optional[int], list[Span]] = {}
        known = {span.span_id for span in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in known else None
            by_parent.setdefault(parent, []).append(span)
        lines: list[str] = []

        def _walk(parent: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent, ()):
                end = "…" if span.end is None else f"{span.end:.6f}"
                lines.append(
                    f"{'  ' * depth}{span.name} [{span.start:.6f}..{end}]"
                    f" {span.status}"
                    + (f" {span.attrs}" if span.attrs else "")
                )
                _walk(span.span_id, depth + 1)

        _walk(None, 0)
        return "\n".join(lines)
