"""Simulated-time metrics: counters, gauges, and exact histograms.

A :class:`MetricsRegistry` is the in-simulator analogue of a Prometheus
client registry, with two deliberate differences:

* **time is simulated** — every sample is stamped with the owning
  simulator's virtual clock (``sim._now``), never the host clock, so a
  recorded series is a property of the scenario, not of the machine that
  ran it, and is bit-identical across runs of the same seed;
* **histograms are exact** — observations are kept, not bucketed into
  preconfigured boundaries, and quantiles are computed by the nearest-rank
  rule over the full (or windowed) sample set.  Simulated workloads record
  thousands of latencies, not billions, so exactness is affordable and
  makes SLO verdicts reproducible to the last float.

Recording never schedules events, allocates ObjectIDs, or touches any
simulation state: a registry can be attached to a live cluster without
changing a single simulated result (the differential test in
``tests/test_fleet.py`` pins this).

Label discipline follows Prometheus: a family declares its label names at
creation, every child supplies exactly those labels, and the exporter can
therefore emit a stable label set.  The taxonomy used by the built-in
instrumentation is documented in ROADMAP perf notes: ``tenant``, ``job``,
``op``, ``size`` (bucket), ``link`` / ``tier``, ``cls`` (flow class), and
``kind`` (fast-path event kind).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from math import ceil
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Simulator

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def nearest_rank(sorted_values: Sequence[float], pct: float) -> float:
    """The exact nearest-rank percentile of a sorted, non-empty sequence.

    ``pct`` is in (0, 100]: the smallest value v such that at least
    ``pct``% of the samples are <= v.  No interpolation — the returned
    value is always one of the samples, which keeps verdicts exact.
    """
    n = len(sorted_values)
    if n == 0:
        raise ValueError("percentile of an empty sample set")
    rank = ceil(pct / 100.0 * n)
    if rank < 1:
        rank = 1
    return sorted_values[rank - 1]


class Counter:
    """A monotonically increasing count, windowed against simulated time."""

    __slots__ = ("family", "label_values", "value", "_buckets")

    def __init__(self, family: "MetricFamily", label_values: tuple):
        self.family = family
        self.label_values = label_values
        self.value = 0.0
        #: per-window increments as ``[bucket_index, sum]`` pairs, append
        #: only (simulated time is monotonic within one simulator).
        self._buckets: list[list] = []

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        registry = self.family.registry
        bucket = int(registry.sim._now / registry.window)
        buckets = self._buckets
        if buckets and buckets[-1][0] == bucket:
            buckets[-1][1] += amount
        else:
            buckets.append([bucket, amount])

    def series(self) -> list[tuple[float, float]]:
        """``(window_start_time, increments_in_window)`` pairs, in order."""
        window = self.family.registry.window
        return [(bucket * window, total) for bucket, total in self._buckets]


class Gauge:
    """A point-in-time value; every ``set`` records a timestamped sample."""

    __slots__ = ("family", "label_values", "value", "samples")

    def __init__(self, family: "MetricFamily", label_values: tuple):
        self.family = family
        self.label_values = label_values
        self.value = 0.0
        self.samples: list[tuple[float, float]] = []

    def set(self, value: float) -> None:
        self.value = value
        self.samples.append((self.family.registry.sim._now, value))

    def series(self) -> list[tuple[float, float]]:
        return list(self.samples)

    def windowed_mean(self) -> list[tuple[float, float]]:
        """Per-window mean of the recorded samples."""
        window = self.family.registry.window
        out: list[tuple[float, float]] = []
        bucket = None
        total = 0.0
        count = 0
        for t, v in self.samples:
            b = int(t / window)
            if b != bucket:
                if count:
                    out.append((bucket * window, total / count))
                bucket, total, count = b, 0.0, 0
            total += v
            count += 1
        if count:
            out.append((bucket * window, total / count))
        return out


class Histogram:
    """Every observation kept, stamped with simulated time; exact quantiles."""

    __slots__ = ("family", "label_values", "samples", "total", "_sorted", "_dirty")

    def __init__(self, family: "MetricFamily", label_values: tuple):
        self.family = family
        self.label_values = label_values
        #: ``(simulated_time, value)`` in recording order (time-monotonic).
        self.samples: list[tuple[float, float]] = []
        self.total = 0.0
        self._sorted: list[float] = []
        self._dirty = False

    def observe(self, value: float) -> None:
        self.samples.append((self.family.registry.sim._now, value))
        self.total += value
        self._dirty = True

    @property
    def count(self) -> int:
        return len(self.samples)

    def _values_sorted(self) -> list[float]:
        if self._dirty:
            self._sorted = sorted(v for _, v in self.samples)
            self._dirty = False
        return self._sorted

    def percentile(
        self,
        pct: float,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> float:
        """Exact nearest-rank percentile, optionally over a time window."""
        if since is None and until is None:
            return nearest_rank(self._values_sorted(), pct)
        times = [t for t, _ in self.samples]
        lo = 0 if since is None else bisect_left(times, since)
        hi = len(times) if until is None else bisect_right(times, until)
        return nearest_rank(sorted(v for _, v in self.samples[lo:hi]), pct)

    def series(self) -> list[tuple[float, float]]:
        return list(self.samples)

    def windowed_percentile(self, pct: float) -> list[tuple[float, float]]:
        """Per-window exact percentile: ``(window_start, pct_value)``."""
        window = self.family.registry.window
        out: list[tuple[float, float]] = []
        bucket = None
        values: list[float] = []
        for t, v in self.samples:
            b = int(t / window)
            if b != bucket:
                if values:
                    out.append((bucket * window, nearest_rank(sorted(values), pct)))
                bucket, values = b, []
            values.append(v)
        if values:
            out.append((bucket * window, nearest_rank(sorted(values), pct)))
        return out


_CHILD_TYPES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricFamily:
    """One named metric with a declared label-name set and many children."""

    __slots__ = ("registry", "kind", "name", "help", "label_names", "children")

    def __init__(
        self,
        registry: "MetricsRegistry",
        kind: str,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
    ):
        self.registry = registry
        self.kind = kind
        self.name = name
        self.help = help_text
        self.label_names = label_names
        #: children keyed by their label-value tuple (label-name order).
        self.children: dict[tuple, object] = {}

    def labels(self, **labels):
        """The child for this exact label assignment (created on first use)."""
        try:
            key = tuple(labels[name] for name in self.label_names)
        except KeyError:
            missing = set(self.label_names) - set(labels)
            raise ValueError(
                f"{self.name}: missing label(s) {sorted(missing)}; "
                f"declared {list(self.label_names)}"
            ) from None
        if len(labels) != len(self.label_names):
            extra = set(labels) - set(self.label_names)
            raise ValueError(f"{self.name}: unexpected label(s) {sorted(extra)}")
        child = self.children.get(key)
        if child is None:
            child = _CHILD_TYPES[self.kind](self, key)
            self.children[key] = child
        return child

    def sorted_children(self) -> list:
        return [self.children[key] for key in sorted(self.children)]


class MetricsRegistry:
    """All metric families of one cluster, on one simulated clock.

    ``window`` is the time-series bucket width in simulated seconds; it
    trades series resolution against memory for counters and the windowed
    views (histograms always keep every observation regardless).
    """

    def __init__(self, sim: "Simulator", window: float = 0.1):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window = window
        self.families: dict[str, MetricFamily] = {}

    def _family(
        self, kind: str, name: str, help_text: str, label_names: Iterable[str]
    ) -> MetricFamily:
        family = self.families.get(name)
        names = tuple(label_names)
        if family is not None:
            if family.kind != kind or family.label_names != names:
                raise ValueError(
                    f"metric {name!r} re-declared as {kind}{list(names)} "
                    f"(was {family.kind}{list(family.label_names)})"
                )
            return family
        family = MetricFamily(self, kind, name, help_text, names)
        self.families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(COUNTER, name, help_text, label_names)

    def gauge(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(GAUGE, name, help_text, label_names)

    def histogram(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(HISTOGRAM, name, help_text, label_names)

    def sorted_families(self) -> list[MetricFamily]:
        return [self.families[name] for name in sorted(self.families)]
