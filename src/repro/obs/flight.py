"""Deterministic flight recorder + divergence bisection for the kernel.

PR 6 root-caused a bit-for-bit fast-path divergence with throwaway event-pop
tracing; this module makes that capability a subsystem.  A
:class:`FlightRecorder` is a bounded ring of ``(time, kind, resource,
detail)`` tuples stamped with the **simulated** clock:

``pop``
    every kernel event pop (absolute time, queue sequence number, event
    type) — the raw dispatch order, installed through ``Simulator.on_pop``;
``grant`` / ``release`` / ``arrive``
    the *semantic* transfer timeline of every block that crosses a NIC:
    admission grant, link release, destination arrival.  The coalescing
    fast paths retrofit these records from their boundary arrays at exactly
    the timestamps the per-block chain would have produced them, so a
    recording of a fast-path run and a recording of the per-block reference
    are **semantically identical** — the property the differential fuzz
    harness checks, and the property divergence bisection exploits;
``phase``
    fast-path state transitions (coalesce start, re-split, convoy
    formation/materialization) and orchestrator lifecycle marks.  Pure
    diagnostics: excluded from semantic comparison, since the fast paths
    legitimately restructure the event timeline they summarize.

Recording is zero-overhead when off: every instrumentation site pays one
``is not None`` branch (``cluster.flight``, ``sim.on_pop``), the same
discipline as the metrics plane, and the differential digests prove that
recording changes no simulated result.

:func:`first_divergence` turns two recordings (fast paths on / off) of the
same scenario into the first diverging semantic event — time, kind,
resource, detail — which is what ``python -m repro.bench.fuzz`` now reports
on a digest mismatch instead of a bare pair of hashes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Event, Simulator

#: record kinds compared across fast-path settings.  ``pop`` and ``phase``
#: are excluded: the fast paths collapse pops by design, and phase marks
#: only exist on the fast side.
SEMANTIC_KINDS = frozenset({"grant", "release", "arrive"})

#: default ring capacity; at four fields a record, a full ring is ~100 MB
#: of tuples — far above any fuzz scenario, so comparisons never truncate.
DEFAULT_CAPACITY = 1_000_000


class FlightRecorder:
    """A bounded in-memory ring of simulated-time kernel/transfer records.

    Installed per cluster via ``cluster.enable_flight_recorder()``; the
    instrumentation sites find it through ``cluster.flight`` (one branch
    when absent).  Records are plain tuples, appended in call order; the
    *semantic* ordering (what :func:`semantic_records` compares) sorts by
    timestamp, because the fast paths retrofit past-timestamped records at
    their boundary walks.
    """

    __slots__ = ("sim", "capacity", "records", "dropped")

    def __init__(self, sim: "Simulator", capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.records: deque = deque(maxlen=capacity)
        #: records evicted by the ring bound (oldest-first); a non-zero
        #: count means dumps and comparisons see a truncated history.
        self.dropped = 0

    def record(self, time: float, kind: str, resource: str, detail: str) -> None:
        records = self.records
        if len(records) == self.capacity:
            self.dropped += 1
        records.append((time, kind, resource, detail))

    def record_pop(self, when: float, seq: int, event: "Event") -> None:
        """The kernel's per-pop hook (installed as ``Simulator.on_pop``)."""
        self.record(when, "pop", f"seq={seq}", type(event).__name__)

    def phase(self, resource: str, detail: str) -> None:
        """A fast-path (or lifecycle) state transition at the current time."""
        self.record(self.sim._now, "phase", resource, detail)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        """Deterministic text rendering, in record (call) order.

        ``repr`` float timestamps round-trip exactly, so two dumps of the
        same simulated history are byte-identical.
        """
        records = list(self.records)
        if limit is not None:
            records = records[-limit:]
        lines = [
            f"{time!r} {kind} {resource} {detail}"
            for time, kind, resource, detail in records
        ]
        if self.dropped:
            lines.insert(0, f"# dropped={self.dropped} (ring capacity {self.capacity})")
        return "\n".join(lines)


def semantic_records(records) -> list[tuple]:
    """The comparable transfer timeline of one recording.

    Filters to :data:`SEMANTIC_KINDS` and sorts by ``(time, kind, resource,
    detail)``: the fast paths append past-timestamped records at boundary
    walks, so call order differs across settings while the timeline does
    not.
    """
    if isinstance(records, FlightRecorder):
        records = records.records
    return sorted(r for r in records if r[1] in SEMANTIC_KINDS)


@dataclass(frozen=True)
class Divergence:
    """The first semantic record where two recordings disagree."""

    index: int
    record_on: Optional[tuple]
    record_off: Optional[tuple]

    def describe(self) -> str:
        def _one(label: str, record: Optional[tuple]) -> str:
            if record is None:
                return f"  {label}: <no record>"
            time, kind, resource, detail = record
            return f"  {label}: t={time!r} {kind} {resource} {detail}"

        return "\n".join(
            [
                f"first diverging semantic event (index {self.index}):",
                _one("fast-on ", self.record_on),
                _one("fast-off", self.record_off),
            ]
        )


def first_divergence(on_records, off_records) -> Optional[Divergence]:
    """The first diverging semantic event between two recordings, or None.

    Accepts recorders or raw record iterables; both sides are normalized
    through :func:`semantic_records` first.
    """
    on = semantic_records(on_records)
    off = semantic_records(off_records)
    for index, (a, b) in enumerate(zip(on, off)):
        if a != b:
            return Divergence(index=index, record_on=a, record_off=b)
    if len(on) != len(off):
        index = min(len(on), len(off))
        return Divergence(
            index=index,
            record_on=on[index] if index < len(on) else None,
            record_off=off[index] if index < len(off) else None,
        )
    return None
