"""Event-locality analyzer: how much rack parallelism a PDES kernel gets.

ROADMAP item 3 proposes a conservative (lookahead-based) parallel kernel:
rack partitions advance independently inside a *safe window* whose length
is the minimum cross-partition propagation latency — any event one
partition schedules onto another lands at least one lookahead in the
future, so windows synchronize only at their boundaries.  Before building
that kernel we need its oracle: for a real workload, how many events are
actually rack-local, how often do partitions interact with *zero*
lookahead (the killer: cross-rack admission decisions inside a single
``MultiRequest``), and what speedup bound does the window model project?

This analyzer answers those questions from a single sequential run:

* **Ownership tagging.**  Instrumented sites (reservations, transfer
  timeouts, directory RPCs and waiter events, coalesced-run wake-ups)
  stamp each event they create with its owning node via a spare slot on
  :class:`~repro.sim.core.Event` (``_loc_owner``, never read by the
  kernel).  The analyzer's ``on_pop`` hook classifies every popped event:
  *tagged* (owner known — candidate for partition-local processing),
  *sync* (a cross-partition interaction at zero lookahead: a reservation
  claiming shared tier links, a cross-rack directory RPC), or *untagged*
  (bootstrap/condition/unattributed — counted as serial, conservatively).
* **Arrival classification.**  Cross-rack message *arrivals* are safe:
  their causal predecessor (transmission end at the source) precedes them
  by at least the path propagation latency, which is >= the lookahead.
  ``arrival()`` counts rack-local vs cross-rack deliveries so the report
  can state the fraction of causality that stays inside a rack.
* **Safe-window replay.**  For each candidate partition count ``k`` the
  analyzer computes the global lookahead (minimum fabric latency between
  any two nodes in different partitions), bins the tagged pops into
  windows of that length, and charges each window the *maximum* per-
  partition event count (the critical partition; others overlap under
  it).  Sync and untagged events are charged serially.  The projected
  speedup bound is ``total / (sum of window maxima + serial)`` — an upper
  bound: it prices imbalance and zero-lookahead coupling but not barrier
  or messaging overhead, so treat it as "no PDES kernel can beat this",
  not as a forecast.

Determinism: tagging writes one inert slot per event and the hook only
appends to analyzer-private arrays — simulated results are byte-identical
with the analyzer on or off (the differential fuzz band pins this).  The
report itself (unlike ``hostprof``) is a pure function of the simulated
run and is therefore deterministic.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Event

#: ``_loc_owner`` sentinel for zero-lookahead cross-partition interactions.
_SYNC = -2

#: hypothetical partition counts evaluated in addition to the topology's
#: actual rack count.
_CANDIDATE_PARTITIONS = (2, 4, 8, 16, 32, 64)


class LocalityAnalyzer:
    """Classify every popped event by owning node; project PDES speedup.

    Attach with ``cluster.enable_locality_analyzer()`` (which chains the
    simulator's ``on_pop`` hook and sets ``sim.locality`` for the tagging
    sites).  Read results with :meth:`report`.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.num_nodes = cluster.topology.num_nodes
        #: pop timestamps / owning node per *tagged* event, append-only.
        self.times = array("d")
        self.nodes = array("i")
        self.total_pops = 0
        self.untagged_pops = 0
        self.sync_pops = 0
        #: zero-lookahead interaction breakdown (subset of ``sync_pops``).
        self.cross_tier_reservations = 0
        self.cross_rack_rpcs = 0
        #: message deliveries by rack relation of (src, dst).
        self.arrivals_local = 0
        self.arrivals_cross = 0
        self.last_time = 0.0
        self._same_rack = cluster.topology.same_rack

    # -- tagging sites (guarded by ``sim.locality is not None``) ----------
    def tag(self, event: "Event", node_id: int) -> None:
        """Stamp ``event`` as owned by ``node_id``'s partition."""
        event._loc_owner = node_id

    def tag_sync_reservation(self, event: "Event") -> None:
        """A reservation whose claim set spans shared tier links."""
        event._loc_owner = _SYNC
        self.cross_tier_reservations += 1

    def tag_sync_rpc(self, event: "Event") -> None:
        """A directory RPC crossing racks (requester -> remote shard)."""
        event._loc_owner = _SYNC
        self.cross_rack_rpcs += 1

    def arrival(self, src_id: int, dst_id: int, count: int = 1) -> None:
        """Record ``count`` message deliveries from ``src`` to ``dst``."""
        if self._same_rack(src_id, dst_id):
            self.arrivals_local += count
        else:
            self.arrivals_cross += count

    # -- the pop hook (chained onto ``Simulator.on_pop``) -----------------
    def on_pop(self, when: float, seq: int, event: "Event") -> None:
        self.total_pops += 1
        node = getattr(event, "_loc_owner", -1)
        if node >= 0:
            self.times.append(when)
            self.nodes.append(node)
        elif node == -1:
            self.untagged_pops += 1
        else:
            self.sync_pops += 1
        self.last_time = when

    # -- the oracle -------------------------------------------------------
    def _lookahead(self, k: int) -> float:
        """Minimum fabric latency between nodes in different partitions."""
        n = self.num_nodes
        fabric = self.cluster.fabric
        best = float("inf")
        for a in range(n):
            part_a = a * k // n
            for b in range(a + 1, n):
                if b * k // n != part_a:
                    lat = fabric.latency(a, b)
                    if lat < best:
                        best = lat
        return 0.0 if best == float("inf") else best

    def _window_speedup(self, k: int, lookahead: float) -> float:
        """Safe-window replay: total events over the critical-path cost."""
        total = self.total_pops
        serial = self.untagged_pops + self.sync_pops
        if total == 0 or lookahead <= 0.0 or k <= 1:
            return 1.0
        n = self.num_nodes
        counts = [0] * k
        current_window = -1
        parallel_cost = 0
        for when, node in zip(self.times, self.nodes):
            window = int(when / lookahead)
            if window != current_window:
                if current_window >= 0:
                    parallel_cost += max(counts)
                    counts = [0] * k
                current_window = window
            counts[node * k // n] += 1
        if current_window >= 0:
            parallel_cost += max(counts)
        denominator = parallel_cost + serial
        return round(total / denominator, 2) if denominator else 1.0

    def report(self) -> dict:
        """Locality summary plus the projected PDES speedup bound per k."""
        topology = self.cluster.topology
        total = self.total_pops
        tagged = len(self.nodes)
        arrivals = self.arrivals_local + self.arrivals_cross
        per_rack = [0] * topology.num_racks
        rack_of = topology.rack_of
        for node in self.nodes:
            per_rack[rack_of(node)] += 1
        mean_rack = (sum(per_rack) / len(per_rack)) if per_rack else 0.0
        balance = (max(per_rack) / mean_rack) if mean_rack else 1.0

        ks = sorted(
            {k for k in _CANDIDATE_PARTITIONS if 2 <= k <= self.num_nodes}
            | ({topology.num_racks} if topology.num_racks > 1 else set())
        )
        pdes = {}
        for k in ks:
            lookahead = self._lookahead(k)
            pdes[str(k)] = {
                "lookahead_s": lookahead,
                "projected_speedup_bound": self._window_speedup(k, lookahead),
            }
        return {
            "clock": "sim",
            "events": total,
            "tagged_fraction": round(tagged / total, 4) if total else 0.0,
            "sync_events": self.sync_pops,
            "sync_fraction": round(self.sync_pops / total, 4) if total else 0.0,
            # tagged non-sync events: causal predecessors are rack-local or
            # at least one lookahead in the past — processable inside their
            # partition without cross-partition coordination.
            "lookahead_safe_fraction": round(tagged / total, 4) if total else 0.0,
            "cross_tier_reservations": self.cross_tier_reservations,
            "cross_rack_rpcs": self.cross_rack_rpcs,
            "sync_per_sim_s": (
                round(self.sync_pops / self.last_time, 1) if self.last_time else 0.0
            ),
            "arrivals": {
                "total": arrivals,
                "rack_local": self.arrivals_local,
                "cross_rack": self.arrivals_cross,
                "rack_local_fraction": (
                    round(self.arrivals_local / arrivals, 4) if arrivals else 1.0
                ),
            },
            "racks": {
                "count": topology.num_racks,
                "events_per_rack": per_rack,
                "load_balance_max_over_mean": round(balance, 3),
            },
            "pdes": pdes,
        }


def format_locality_report(report: dict) -> str:
    """Render a :meth:`LocalityAnalyzer.report` dict for the bench CLI."""
    arrivals = report["arrivals"]
    racks = report["racks"]
    lines = [
        f"events {report['events']}: "
        f"{report['lookahead_safe_fraction'] * 100.0:.1f}% lookahead-safe, "
        f"{report['sync_fraction'] * 100.0:.2f}% zero-lookahead sync "
        f"({report['cross_tier_reservations']} cross-tier reservations, "
        f"{report['cross_rack_rpcs']} cross-rack RPCs, "
        f"{report['sync_per_sim_s']:.0f}/sim-s)",
        f"arrivals {arrivals['total']}: "
        f"{arrivals['rack_local_fraction'] * 100.0:.1f}% rack-local",
        f"racks {racks['count']}: load balance (max/mean) "
        f"{racks['load_balance_max_over_mean']:.2f}",
        f"{'partitions':>10s} {'lookahead':>12s} {'speedup<=':>10s}",
    ]
    for k, row in sorted(report["pdes"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"{k:>10s} {row['lookahead_s'] * 1e6:>10.1f}us "
            f"{row['projected_speedup_bound']:>9.2f}x"
        )
    return "\n".join(lines)
