"""Causal critical-path profiling of collectives from trace spans.

The SLO table (``bench/fleet.py``) says *which* (tenant, op) cell missed
its target; this module says *why*.  It rebuilds the causal dependency
chain of an operation from the spans the tracing plane already records —
block reservations (submit → grant → release → arrival), coalesced/convoy
runs (boundary arrays), streaming reduce-slot compute runs (busy
intervals), task attempts (failure/retry windows) — walks the chain
backward from the op's completion, and attributes every second of the
op's wall time to exactly one of :data:`CATEGORIES`:

``grant_wait``
    the critical transfer sat in an admission queue;
``tx``
    the critical transfer occupied its links (serialization time);
``propagation``
    one-way path latency of the critical transfer;
``compute``
    a reduce slot was combining blocks (its streaming run's busy
    intervals);
``detect``
    a node was down but the failure-detection delay had not elapsed
    (from the observability plane's membership transitions);
``recovery``
    a task attempt that ended in retry/failure was occupying the window;
``straggler``
    none of the above: the op was waiting on something untraced (an
    unstarted peer, a local memcpy, scheduling slack).

The attribution is an exact partition of the op's ``[start, end]`` window
— the categories sum to the critical-path length to float tolerance —
because the backward walk clips every blamed segment to the uncovered
prefix and classifies the remaining gaps through one prioritized pass.

Blame is also projected onto links: a unit on the critical path blames
its claimed links with ``bytes x (blamed_time / (grant_wait + tx))``, so
``top_link`` names the link direction the op most waited on or occupied
(the ISSUE's "71% grant_wait on rack0/up" rendering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.trace import Span

#: blame categories, in rendering order.  The gap classifier applies the
#: non-transfer ones in priority order detect > recovery > compute >
#: straggler so overlapping evidence never double-counts.
CATEGORIES = (
    "grant_wait",
    "tx",
    "propagation",
    "compute",
    "detect",
    "recovery",
    "straggler",
)

_EPS = 1e-12


@dataclass(frozen=True)
class TransferUnit:
    """One causal transfer on the wire: submit -> grant -> tx end -> arrival."""

    submit: float
    grant: float
    tx_end: float
    arrive: float
    nbytes: int
    links: tuple
    flow: str = ""


@dataclass
class OpBlame:
    """The critical-path attribution of one operation window."""

    name: str
    trace_id: str
    start: float
    end: float
    categories: dict = field(default_factory=dict)
    link_blame: dict = field(default_factory=dict)
    attrs: dict = field(default_factory=dict)

    @property
    def length(self) -> float:
        return self.end - self.start

    def top_category(self) -> tuple[str, float]:
        """``(category, fraction_of_length)`` of the dominant category."""
        if self.length <= 0:
            return ("straggler", 0.0)
        cat = max(CATEGORIES, key=lambda c: self.categories.get(c, 0.0))
        return (cat, self.categories.get(cat, 0.0) / self.length)

    def top_link(self) -> Optional[str]:
        """The link direction carrying the most blame-bytes, or None."""
        if not self.link_blame:
            return None
        return max(sorted(self.link_blame), key=lambda k: self.link_blame[k])

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "length": self.length,
            "categories": {c: self.categories.get(c, 0.0) for c in CATEGORIES},
            "link_blame": dict(sorted(self.link_blame.items())),
            "attrs": dict(self.attrs),
        }


# -- interval helpers --------------------------------------------------------
def _merge(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Sorted, overlap-merged copy of ``intervals`` (empty ones dropped)."""
    merged: list[tuple[float, float]] = []
    for a, b in sorted(i for i in intervals if i[1] > i[0]):
        if merged and a <= merged[-1][1]:
            if b > merged[-1][1]:
                merged[-1] = (merged[-1][0], b)
        else:
            merged.append((a, b))
    return merged


def _split(
    segments: list[tuple[float, float]], covers: list[tuple[float, float]]
) -> tuple[float, list[tuple[float, float]]]:
    """Total time of ``segments`` covered by ``covers``, plus the uncovered rest."""
    covered = 0.0
    rest: list[tuple[float, float]] = []
    for s, e in segments:
        cursor = s
        for a, b in covers:
            if b <= cursor:
                continue
            if a >= e:
                break
            lo, hi = max(a, cursor), min(b, e)
            if hi > lo:
                if lo > cursor:
                    rest.append((cursor, lo))
                covered += hi - lo
                cursor = hi
        if cursor < e:
            rest.append((cursor, e))
    return covered, rest


def _classify_gap(
    a: float,
    b: float,
    layers: list[tuple[str, list[tuple[float, float]]]],
    categories: dict,
) -> None:
    """Attribute the untraced window ``[a, b]`` through the priority layers."""
    if b - a <= _EPS:
        return
    segments = [(a, b)]
    for category, covers in layers:
        if not covers or not segments:
            continue
        covered, segments = _split(segments, covers)
        if covered > 0.0:
            categories[category] = categories.get(category, 0.0) + covered
    leftover = sum(e - s for s, e in segments)
    if leftover > 0.0:
        categories["straggler"] = categories.get("straggler", 0.0) + leftover


# -- span -> evidence --------------------------------------------------------
def unit_from_span(span: "Span") -> Optional[TransferUnit]:
    """The transfer unit a block/run span describes, or None."""
    if span.end is None:
        return None
    attrs = span.attrs
    if span.name == "block":
        grant_wait = attrs.get("grant_wait", 0.0)
        return TransferUnit(
            submit=span.start,
            grant=span.start + grant_wait,
            tx_end=span.end,
            arrive=span.end + attrs.get("lat", 0.0),
            nbytes=attrs.get("bytes", 0),
            links=tuple(attrs.get("links", ())),
            flow=attrs.get("flow", ""),
        )
    if span.name == "coalesced_run":
        grant = attrs.get("s0", span.start)
        arrive = span.end
        tx_end = min(grant + attrs.get("tx_sum", 0.0), arrive)
        return TransferUnit(
            submit=span.start,
            grant=min(grant, arrive),
            tx_end=max(tx_end, min(grant, arrive)),
            arrive=arrive,
            nbytes=attrs.get("bytes", 0),
            links=tuple(attrs.get("links", ())),
            flow=attrs.get("flow", ""),
        )
    return None


def detect_intervals(obs: "Observability") -> list[tuple[float, float]]:
    """Failure-detection windows from the plane's membership transitions."""
    delay = obs.cluster.config.failure_detection_delay
    return _merge(
        (at, at + delay) for at, _node, kind in obs.node_events if kind == "down"
    )


def _recovery_interval(span: "Span") -> Optional[tuple[float, float]]:
    if (
        span.name.startswith("task:")
        and span.end is not None
        and span.status in ("retrying", "failed")
    ):
        return (span.start, span.end)
    return None


def _busy_intervals(span: "Span") -> tuple:
    if span.name == "compute_run":
        return tuple(
            (s, t) for s, t in span.attrs.get("busy", ()) if span.end is None or s < span.end
        )
    return ()


# -- the walk ----------------------------------------------------------------
def blame_window(
    name: str,
    trace_id: str,
    start: float,
    end: float,
    units: list[TransferUnit],
    busy: list[tuple[float, float]],
    detect: list[tuple[float, float]],
    recovery: list[tuple[float, float]],
    attrs: Optional[dict] = None,
) -> OpBlame:
    """Walk the causal chain backward from ``end`` and partition the window.

    The walk repeatedly takes the candidate with the latest arrival no
    later than the uncovered cursor, classifies the gap between that
    arrival and the cursor (detect > recovery > compute > straggler), then
    attributes the candidate's own phases — propagation, tx, grant wait —
    clipped to the still-uncovered prefix, and moves the cursor to the
    candidate's submission.  Every second of ``[start, end]`` lands in
    exactly one category.
    """
    blame = OpBlame(
        name=name,
        trace_id=trace_id,
        start=start,
        end=end,
        categories={c: 0.0 for c in CATEGORIES},
        attrs=dict(attrs or ()),
    )
    layers = [
        ("detect", detect),
        ("recovery", _merge(recovery)),
        ("compute", _merge(busy)),
    ]
    categories = blame.categories
    link_blame = blame.link_blame
    ordered = sorted(units, key=lambda u: (u.arrive, u.submit))
    i = len(ordered) - 1
    cursor = end
    while cursor - start > _EPS:
        while i >= 0 and ordered[i].arrive > cursor:
            i -= 1
        if i < 0:
            _classify_gap(start, cursor, layers, categories)
            break
        unit = ordered[i]
        i -= 1
        if unit.arrive < cursor:
            _classify_gap(unit.arrive, cursor, layers, categories)
            cursor = unit.arrive
            if cursor - start <= _EPS:
                break
        lo = max(start, unit.submit)
        if lo >= cursor:
            continue  # zero uncovered extent: the next candidate must help
        prop = _overlap(unit.tx_end, unit.arrive, lo, cursor)
        tx = _overlap(unit.grant, unit.tx_end, lo, cursor)
        grant_wait = _overlap(unit.submit, unit.grant, lo, cursor)
        categories["propagation"] += prop
        categories["tx"] += tx
        categories["grant_wait"] += grant_wait
        blamed = tx + grant_wait
        if blamed > 0.0 and unit.links:
            denom = (unit.tx_end - unit.grant) + (unit.grant - unit.submit)
            share = unit.nbytes * (blamed / denom) if denom > 0 else 0.0
            for link in unit.links:
                link_blame[link] = link_blame.get(link, 0.0) + share
        cursor = lo
    return blame


def _overlap(a: float, b: float, lo: float, hi: float) -> float:
    return max(0.0, min(b, hi) - max(a, lo))


# -- whole-plane entry points ------------------------------------------------
def op_blames(obs: "Observability") -> list[OpBlame]:
    """One blame per finished ``op:*`` span recorded by the fleet harness.

    Evidence spans (blocks, runs, compute runs, task attempts) attach to
    the op whose span is their nearest ``op:*`` ancestor — collective
    traces reach it through the cross-trace parent link
    :meth:`~repro.obs.trace.Tracer.root_for_spec` records.
    """
    spans = obs.tracer.spans
    by_id = {span.span_id: span for span in spans}
    cache: dict[int, Optional[int]] = {}

    def _op_ancestor(span: "Span") -> Optional[int]:
        chain: list[int] = []
        cur: Optional["Span"] = span
        found: Optional[int] = None
        while cur is not None:
            if cur.span_id in cache:
                found = cache[cur.span_id]
                break
            chain.append(cur.span_id)
            if cur.name.startswith("op:"):
                found = cur.span_id
                break
            cur = by_id.get(cur.parent_id) if cur.parent_id is not None else None
        for span_id in chain:
            cache[span_id] = found
        return found

    ops = [s for s in spans if s.name.startswith("op:") and s.end is not None]
    units: dict[int, list[TransferUnit]] = {s.span_id: [] for s in ops}
    busy: dict[int, list[tuple[float, float]]] = {s.span_id: [] for s in ops}
    recovery: dict[int, list[tuple[float, float]]] = {s.span_id: [] for s in ops}
    for span in spans:
        owner = _op_ancestor(span)
        if owner is None or owner not in units:
            continue
        unit = unit_from_span(span)
        if unit is not None:
            units[owner].append(unit)
        busy[owner].extend(_busy_intervals(span))
        interval = _recovery_interval(span)
        if interval is not None:
            recovery[owner].append(interval)
    detect = detect_intervals(obs)
    return [
        blame_window(
            name=op.name,
            trace_id=op.trace_id,
            start=op.start,
            end=op.end,
            units=units[op.span_id],
            busy=busy[op.span_id],
            detect=detect,
            recovery=recovery[op.span_id],
            attrs=op.attrs,
        )
        for op in ops
    ]


def cluster_blame(obs: "Observability", name: str = "scenario") -> OpBlame:
    """Blame over the full traced window of one cluster (perf scenarios)."""
    spans = obs.tracer.spans
    finished = [s for s in spans if s.end is not None]
    if not finished:
        now = obs.cluster.sim._now
        return blame_window(name, "", now, now, [], [], [], [])
    start = min(s.start for s in finished)
    end = max(s.end for s in finished)
    units = [u for u in (unit_from_span(s) for s in finished) if u is not None]
    busy: list[tuple[float, float]] = []
    recovery: list[tuple[float, float]] = []
    for span in finished:
        busy.extend(_busy_intervals(span))
        interval = _recovery_interval(span)
        if interval is not None:
            recovery.append(interval)
    return blame_window(
        name, "", start, end, units, busy, detect_intervals(obs), recovery
    )


# -- aggregation + rendering -------------------------------------------------
@dataclass
class BlameRow:
    """One (tenant, op) cell of the fleet blame table."""

    tenant: str
    op: str
    count: int
    total: float
    categories: dict
    link_blame: dict

    def top_category(self) -> tuple[str, float]:
        if self.total <= 0:
            return ("straggler", 0.0)
        cat = max(CATEGORIES, key=lambda c: self.categories.get(c, 0.0))
        return (cat, self.categories.get(cat, 0.0) / self.total)

    def top_link(self) -> Optional[str]:
        if not self.link_blame:
            return None
        return max(sorted(self.link_blame), key=lambda k: self.link_blame[k])

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "op": self.op,
            "count": self.count,
            "total": self.total,
            "categories": {c: self.categories.get(c, 0.0) for c in CATEGORIES},
            "link_blame": dict(sorted(self.link_blame.items())),
        }


def aggregate_blames(blames: Iterable[OpBlame]) -> list[BlameRow]:
    """Sum per-op blames into (tenant, op) cells, sorted like the SLO table."""
    cells: dict[tuple[str, str], BlameRow] = {}
    for blame in blames:
        key = (str(blame.attrs.get("tenant", "?")), str(blame.attrs.get("op", "?")))
        row = cells.get(key)
        if row is None:
            row = cells[key] = BlameRow(
                tenant=key[0],
                op=key[1],
                count=0,
                total=0.0,
                categories={c: 0.0 for c in CATEGORIES},
                link_blame={},
            )
        row.count += 1
        row.total += blame.length
        for category, value in blame.categories.items():
            row.categories[category] = row.categories.get(category, 0.0) + value
        for link, nbytes in blame.link_blame.items():
            row.link_blame[link] = row.link_blame.get(link, 0.0) + nbytes
    return [cells[key] for key in sorted(cells)]


def format_blame_table(rows: Iterable[BlameRow]) -> str:
    """Deterministic text table, rendered next to the SLO table."""
    header = (
        f"{'tenant':<10} {'op':<10} {'ops':>4} {'cp_total':>10}  "
        + " ".join(f"{c:>10}" for c in CATEGORIES)
        + "  top_link"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        total = row.total if row.total > 0 else 1.0
        shares = " ".join(
            f"{100.0 * row.categories.get(c, 0.0) / total:>9.1f}%" for c in CATEGORIES
        )
        top = row.top_link() or "-"
        lines.append(
            f"{row.tenant:<10} {row.op:<10} {row.count:>4} {row.total:>10.4f}  "
            f"{shares}  {top}"
        )
    return "\n".join(lines)


def scenario_summary(blame: OpBlame) -> dict:
    """The compact per-scenario row ``bench/perf.py`` embeds (fractions)."""
    length = blame.length
    fractions = {
        c: (round(blame.categories.get(c, 0.0) / length, 4) if length > 0 else 0.0)
        for c in CATEGORIES
    }
    return {"length": round(length, 6), "fractions": fractions}
