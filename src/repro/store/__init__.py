"""Distributed object store substrate.

Task-based systems move data between tasks through a distributed object
store: one local store per node, immutable objects, and direct shared-memory
access for workers on the same node (Section 2.1 of the paper).  This
package provides the object model (:class:`ObjectID`, :class:`ObjectValue`,
:class:`ReduceOp`) and the per-node :class:`LocalObjectStore` with the
partial-progress tracking Hoplite's pipelining relies on.
"""

from repro.store.objects import ObjectID, ObjectValue, ReduceOp
from repro.store.object_store import (
    LocalObjectStore,
    ObjectAlreadyExistsError,
    ObjectNotFoundError,
    StoredObject,
)

__all__ = [
    "LocalObjectStore",
    "ObjectAlreadyExistsError",
    "ObjectID",
    "ObjectNotFoundError",
    "ObjectValue",
    "ReduceOp",
    "StoredObject",
]
