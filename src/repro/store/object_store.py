"""Per-node local object store with partial-progress tracking and eviction.

The store is the per-node half of the distributed object store described in
Section 2.1 of the paper.  Hoplite's pipelining (Section 3.3) depends on the
store exposing *partial* objects: an object whose first ``k`` blocks are
present can already serve those blocks to a downstream receiver or to a local
worker.  The store therefore tracks per-object block progress and lets
processes wait for a given amount of progress.

The garbage-collection behaviour follows Section 6: the copy created by
``Put`` is *pinned* until the framework calls ``Delete``; any additional
copies created during collective communication are unpinned and may be
evicted LRU when the store runs out of room.
"""

from __future__ import annotations

from typing import Optional

from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.sim import Event, Simulator
from repro.store.objects import ObjectID, ObjectValue, Payload


class ObjectNotFoundError(KeyError):
    """The requested object is not present in this local store."""


class ObjectAlreadyExistsError(ValueError):
    """An object with this ID already exists in this local store."""


class StoredObject:
    """Bookkeeping for one object copy inside a local store."""

    __slots__ = (
        "sim",
        "object_id",
        "size",
        "num_blocks",
        "_blocks_ready",
        "sealed",
        "pinned",
        "payload",
        "metadata",
        "created_at",
        "last_access",
        "ref_count",
        "_progress_waiters",
        "_sealed_event",
        "_inflight",
        "_no_coalesce",
    )

    def __init__(
        self,
        sim: Simulator,
        object_id: ObjectID,
        size: int,
        num_blocks: int,
        pinned: bool = False,
    ):
        self.sim = sim
        self.object_id = object_id
        self.size = size
        self.num_blocks = max(1, num_blocks)
        self._blocks_ready = 0
        self.sealed = False
        self.pinned = pinned
        self.payload: Payload = None
        self.metadata: dict = {}
        self.created_at = sim.now
        self.last_access = sim.now
        self.ref_count = 0
        self._progress_waiters: list[tuple[int, Event]] = []
        self._sealed_event = Event(sim)
        #: arithmetic arrival schedule while a coalesced transfer streams
        #: into this copy (see :class:`repro.net.coalesce.InflightSchedule`).
        self._inflight = None
        #: set by :meth:`decoalesce`: a consumer on contended links needs
        #: per-block mark ordering, so no coalesced run may write this copy.
        self._no_coalesce = False

    # -- progress -----------------------------------------------------------
    @property
    def blocks_ready(self) -> int:
        """Blocks present right now.

        While a coalesced transfer is streaming into this copy the count is
        computed from the transfer's arrival boundaries — the same value, at
        the same instant, the per-block mark sequence would have stored.
        """
        inflight = self._inflight
        if inflight is None:
            return self._blocks_ready
        return inflight.ready_now(self.sim._now)

    @property
    def complete(self) -> bool:
        return self.sealed

    @property
    def progress_fraction(self) -> float:
        if self.num_blocks == 0:
            return 1.0
        return self.blocks_ready / self.num_blocks

    def mark_block_ready(self, block_index: int) -> None:
        """Record that blocks up to ``block_index`` (inclusive) are present."""
        if block_index >= self.num_blocks:
            raise IndexError(
                f"block {block_index} out of range for {self.num_blocks}-block object"
            )
        if block_index + 1 > self._blocks_ready:
            self._blocks_ready = block_index + 1
        self._notify_progress()

    def reset_progress(self) -> None:
        """Discard partial contents (used when a reduce subtree must restart)."""
        if self.sealed:
            raise ValueError("cannot reset a sealed object")
        self._cancel_inflight()
        self._blocks_ready = 0

    def freeze_progress(self) -> None:
        """Detach any coalesced stream, keeping the blocks delivered so far.

        The dual of :meth:`reset_progress`, used by the streaming reduce
        recovery: when a repair decides the prefix written so far stays
        valid, the (about-to-be-interrupted) producing run must stop
        delivering future marks, but everything that arrived by now remains
        readable and every attached waiter stays attached.
        """
        if self.sealed or self._inflight is None:
            return
        ready = self.blocks_ready
        self._cancel_inflight()
        if ready > self._blocks_ready:
            self._blocks_ready = ready
        self._notify_progress()

    def _cancel_inflight(self) -> None:
        """Stop a coalesced stream writing this copy and drop its future marks.

        Used by :meth:`reset_progress`: the reset wipes even blocks already
        present, so the (about-to-be-interrupted) producing run must deliver
        nothing afterwards — its link/store accounting still happens at its
        unwind, matching an interrupted per-block chain.
        """
        inflight = self._inflight
        if inflight is None:
            return
        run = inflight.run
        run._materialize()
        run.entry = None
        run.schedule = None
        inflight.close()

    def seal(self, payload: Payload = None) -> None:
        """Mark the object complete (all blocks present)."""
        if self.sealed:
            return
        if self._inflight is not None:  # pragma: no cover - defensive
            raise ValueError("cannot seal an object with a coalesced stream in flight")
        self._blocks_ready = self.num_blocks
        self.sealed = True
        if payload is not None:
            self.payload = payload
        self._notify_progress()
        if not self._sealed_event.triggered:
            self._sealed_event.succeed(self)

    def decoalesce(self) -> None:
        """Consumer-side opt-out of arithmetic streaming into this copy.

        A consumer whose own links are *contended* resumes in an order set
        by the event queue, which only per-block marks reproduce — so it
        re-splits any in-flight coalesced run and bars future ones.  (A
        consumer on exclusive links keeps the arithmetic schedule: its
        resume-order shift cannot change any admission outcome.)
        """
        self._no_coalesce = True
        inflight = self._inflight
        if inflight is not None:
            inflight.run._materialize()

    def _begin_inflight(self, schedule) -> None:
        """Attach a coalesced-transfer arrival schedule to this copy.

        Waiters whose thresholds fall inside the scheduled window move to
        exact-time firings (the per-block marks they were waiting for will
        not happen while the schedule is attached).
        """
        if self._inflight is not None:  # pragma: no cover - defensive
            raise ValueError("a coalesced stream is already in flight")
        self._inflight = schedule
        if self._progress_waiters:
            remaining = []
            top = schedule.base + schedule.limit
            for threshold, event in self._progress_waiters:
                if event.triggered:
                    continue
                if schedule.base < threshold <= top:
                    schedule.schedule_waiter(threshold, event)
                else:
                    # Below the window (a convoy lead member's schedule
                    # starts one already-satisfied block early) or beyond
                    # it: ordinary marks fire these.
                    remaining.append((threshold, event))
            self._progress_waiters = remaining

    def _notify_progress(self) -> None:
        if not self._progress_waiters:
            return
        remaining = []
        ready = self.blocks_ready
        for threshold, event in self._progress_waiters:
            if ready >= threshold and not event.triggered:
                event.succeed(ready)
            elif not event.triggered:
                remaining.append((threshold, event))
        self._progress_waiters = remaining

    @property
    def has_waiters(self) -> bool:
        """True while some process waits on this copy's progress or seal.

        Used by the eviction policy: evicting a partial copy someone is
        streaming from would leave its ``_progress_waiters`` pending forever,
        so such copies are not eviction candidates.
        """
        if any(not event.triggered for _, event in self._progress_waiters):
            return True
        return bool(self._sealed_event.callbacks) and not self._sealed_event.triggered

    def wait_for_blocks(self, count: int) -> Event:
        """An event that fires once at least ``count`` blocks are present."""
        event = Event(self.sim)
        ready = self.blocks_ready
        if ready >= count:
            event.succeed(ready)
            return event
        inflight = self._inflight
        if inflight is not None and count <= inflight.base + inflight.limit:
            # The block is scheduled to arrive at a known instant: fire the
            # waiter then, exactly when the per-block mark would have.
            inflight.schedule_waiter(count, event)
        else:
            self._progress_waiters.append((count, event))
        return event

    def wait_sealed(self) -> Event:
        """An event that fires once the object is complete."""
        event = Event(self.sim)
        if self.sealed:
            event.succeed(self)
        else:
            self._sealed_event.add_callback(lambda ev: event.succeed(self))
        return event

    def to_value(self) -> ObjectValue:
        return ObjectValue(size=self.size, payload=self.payload, metadata=dict(self.metadata))

    def __repr__(self) -> str:
        state = "complete" if self.sealed else f"{self.blocks_ready}/{self.num_blocks}"
        return f"<StoredObject {self.object_id} {state}>"


class LocalObjectStore:
    """The object store that runs on one node."""

    def __init__(
        self,
        node: Node,
        config: NetworkConfig,
        capacity_bytes: Optional[int] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.config = config
        self.capacity_bytes = capacity_bytes
        self.objects: dict[ObjectID, StoredObject] = {}
        self.bytes_stored = 0
        self.evictions = 0
        #: bytes streamed into this store (fetch path) per flow class.
        self.flow_bytes_in: dict[FlowClass, int] = {cls: 0 for cls in FlowClass}
        #: bytes streamed out of this store (push/serve path) per flow class.
        self.flow_bytes_out: dict[FlowClass, int] = {cls: 0 for cls in FlowClass}
        node.services["object_store"] = self
        node.on_failure(self._on_node_failure)

    # -- basic queries --------------------------------------------------------
    def __contains__(self, object_id: ObjectID) -> bool:
        return object_id in self.objects

    def __len__(self) -> int:
        return len(self.objects)

    def contains_complete(self, object_id: ObjectID) -> bool:
        entry = self.objects.get(object_id)
        return entry is not None and entry.sealed

    def get_entry(self, object_id: ObjectID) -> StoredObject:
        entry = self.objects.get(object_id)
        if entry is None:
            raise ObjectNotFoundError(str(object_id))
        entry.last_access = self.sim.now
        return entry

    def try_get_entry(self, object_id: ObjectID) -> Optional[StoredObject]:
        entry = self.objects.get(object_id)
        if entry is not None:
            entry.last_access = self.sim.now
        return entry

    # -- creation / mutation ---------------------------------------------------
    def create(
        self,
        object_id: ObjectID,
        size: int,
        pin: bool = False,
    ) -> StoredObject:
        """Allocate space for an (initially empty) object copy."""
        if object_id in self.objects:
            raise ObjectAlreadyExistsError(str(object_id))
        num_blocks = self.config.num_blocks(size)
        self._make_room(size)
        entry = StoredObject(self.sim, object_id, size, num_blocks, pinned=pin)
        self.objects[object_id] = entry
        self.bytes_stored += size
        return entry

    def create_or_get(self, object_id: ObjectID, size: int, pin: bool = False) -> StoredObject:
        entry = self.objects.get(object_id)
        if entry is not None:
            entry.pinned = entry.pinned or pin
            return entry
        return self.create(object_id, size, pin=pin)

    def put_complete(
        self,
        object_id: ObjectID,
        value: ObjectValue,
        pin: bool = True,
    ) -> StoredObject:
        """Insert a complete object in one shot (no simulated copy time)."""
        entry = self.create(object_id, value.size, pin=pin)
        entry.metadata.update(value.metadata)
        entry.seal(value.payload)
        return entry

    def delete(self, object_id: ObjectID) -> None:
        entry = self.objects.pop(object_id, None)
        if entry is not None:
            self.bytes_stored -= entry.size

    def pin(self, object_id: ObjectID) -> None:
        self.get_entry(object_id).pinned = True

    def unpin(self, object_id: ObjectID) -> None:
        self.get_entry(object_id).pinned = False

    # -- flow accounting ---------------------------------------------------------
    def account_flow_in(self, flow: Flow, nbytes: int) -> None:
        """Record bytes a fetch streamed *into* this store for ``flow``."""
        self.flow_bytes_in[flow.flow_class] += nbytes

    def account_flow_out(self, flow: Flow, nbytes: int) -> None:
        """Record bytes this store served *out* to a remote fetch for ``flow``."""
        self.flow_bytes_out[flow.flow_class] += nbytes

    # -- eviction ---------------------------------------------------------------
    def _make_room(self, incoming_bytes: int) -> None:
        if self.capacity_bytes is None:
            return
        if incoming_bytes > self.capacity_bytes:
            raise MemoryError(
                f"object of {incoming_bytes} bytes exceeds store capacity "
                f"{self.capacity_bytes}"
            )
        while self.bytes_stored + incoming_bytes > self.capacity_bytes:
            victim = self._pick_eviction_victim()
            if victim is None:
                raise MemoryError(
                    "object store is full and nothing is evictable "
                    f"({self.bytes_stored} bytes stored, "
                    f"{incoming_bytes} incoming, capacity {self.capacity_bytes})"
                )
            self.delete(victim.object_id)
            self.evictions += 1

    def _pick_eviction_victim(self) -> Optional[StoredObject]:
        """LRU over unpinned, unreferenced copies.

        Sealed copies go first (they can always be re-fetched through the
        directory).  A *partial* copy is evictable only while nothing waits
        on its progress: evicting a copy with pending ``_progress_waiters``
        would wedge the transfers streaming out of it.
        """
        sealed: list[StoredObject] = []
        idle_partials: list[StoredObject] = []
        for entry in self.objects.values():
            if entry.pinned or entry.ref_count != 0:
                continue
            if entry.sealed:
                sealed.append(entry)
            elif not entry.has_waiters:
                idle_partials.append(entry)
        pool = sealed or idle_partials
        if not pool:
            return None
        return min(pool, key=lambda entry: entry.last_access)

    # -- failure handling ---------------------------------------------------------
    def _on_node_failure(self, node: Node) -> None:
        """A failed node loses its volatile store contents."""
        self.objects.clear()
        self.bytes_stored = 0
