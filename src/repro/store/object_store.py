"""Per-node local object store with partial-progress tracking and eviction.

The store is the per-node half of the distributed object store described in
Section 2.1 of the paper.  Hoplite's pipelining (Section 3.3) depends on the
store exposing *partial* objects: an object whose first ``k`` blocks are
present can already serve those blocks to a downstream receiver or to a local
worker.  The store therefore tracks per-object block progress and lets
processes wait for a given amount of progress.

The garbage-collection behaviour follows Section 6: the copy created by
``Put`` is *pinned* until the framework calls ``Delete``; any additional
copies created during collective communication are unpinned and may be
evicted LRU when the store runs out of room.
"""

from __future__ import annotations

from typing import Optional

from repro.net.config import NetworkConfig
from repro.net.flowsched import Flow, FlowClass
from repro.net.node import Node
from repro.sim import Event, Simulator
from repro.store.objects import ObjectID, ObjectValue, Payload


class ObjectNotFoundError(KeyError):
    """The requested object is not present in this local store."""


class ObjectAlreadyExistsError(ValueError):
    """An object with this ID already exists in this local store."""


class StoredObject:
    """Bookkeeping for one object copy inside a local store."""

    def __init__(
        self,
        sim: Simulator,
        object_id: ObjectID,
        size: int,
        num_blocks: int,
        pinned: bool = False,
    ):
        self.sim = sim
        self.object_id = object_id
        self.size = size
        self.num_blocks = max(1, num_blocks)
        self.blocks_ready = 0
        self.sealed = False
        self.pinned = pinned
        self.payload: Payload = None
        self.metadata: dict = {}
        self.created_at = sim.now
        self.last_access = sim.now
        self.ref_count = 0
        self._progress_waiters: list[tuple[int, Event]] = []
        self._sealed_event = Event(sim)

    # -- progress -----------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self.sealed

    @property
    def progress_fraction(self) -> float:
        if self.num_blocks == 0:
            return 1.0
        return self.blocks_ready / self.num_blocks

    def mark_block_ready(self, block_index: int) -> None:
        """Record that blocks up to ``block_index`` (inclusive) are present."""
        if block_index >= self.num_blocks:
            raise IndexError(
                f"block {block_index} out of range for {self.num_blocks}-block object"
            )
        self.blocks_ready = max(self.blocks_ready, block_index + 1)
        self._notify_progress()

    def reset_progress(self) -> None:
        """Discard partial contents (used when a reduce subtree must restart)."""
        if self.sealed:
            raise ValueError("cannot reset a sealed object")
        self.blocks_ready = 0

    def seal(self, payload: Payload = None) -> None:
        """Mark the object complete (all blocks present)."""
        if self.sealed:
            return
        self.blocks_ready = self.num_blocks
        self.sealed = True
        if payload is not None:
            self.payload = payload
        self._notify_progress()
        if not self._sealed_event.triggered:
            self._sealed_event.succeed(self)

    def _notify_progress(self) -> None:
        remaining = []
        for threshold, event in self._progress_waiters:
            if self.blocks_ready >= threshold and not event.triggered:
                event.succeed(self.blocks_ready)
            elif not event.triggered:
                remaining.append((threshold, event))
        self._progress_waiters = remaining

    @property
    def has_waiters(self) -> bool:
        """True while some process waits on this copy's progress or seal.

        Used by the eviction policy: evicting a partial copy someone is
        streaming from would leave its ``_progress_waiters`` pending forever,
        so such copies are not eviction candidates.
        """
        if any(not event.triggered for _, event in self._progress_waiters):
            return True
        return bool(self._sealed_event.callbacks) and not self._sealed_event.triggered

    def wait_for_blocks(self, count: int) -> Event:
        """An event that fires once at least ``count`` blocks are present."""
        event = Event(self.sim)
        if self.blocks_ready >= count:
            event.succeed(self.blocks_ready)
        else:
            self._progress_waiters.append((count, event))
        return event

    def wait_sealed(self) -> Event:
        """An event that fires once the object is complete."""
        event = Event(self.sim)
        if self.sealed:
            event.succeed(self)
        else:
            self._sealed_event.add_callback(lambda ev: event.succeed(self))
        return event

    def to_value(self) -> ObjectValue:
        return ObjectValue(size=self.size, payload=self.payload, metadata=dict(self.metadata))

    def __repr__(self) -> str:
        state = "complete" if self.sealed else f"{self.blocks_ready}/{self.num_blocks}"
        return f"<StoredObject {self.object_id} {state}>"


class LocalObjectStore:
    """The object store that runs on one node."""

    def __init__(
        self,
        node: Node,
        config: NetworkConfig,
        capacity_bytes: Optional[int] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.config = config
        self.capacity_bytes = capacity_bytes
        self.objects: dict[ObjectID, StoredObject] = {}
        self.bytes_stored = 0
        self.evictions = 0
        #: bytes streamed into this store (fetch path) per flow class.
        self.flow_bytes_in: dict[FlowClass, int] = {cls: 0 for cls in FlowClass}
        #: bytes streamed out of this store (push/serve path) per flow class.
        self.flow_bytes_out: dict[FlowClass, int] = {cls: 0 for cls in FlowClass}
        node.services["object_store"] = self
        node.on_failure(self._on_node_failure)

    # -- basic queries --------------------------------------------------------
    def __contains__(self, object_id: ObjectID) -> bool:
        return object_id in self.objects

    def __len__(self) -> int:
        return len(self.objects)

    def contains_complete(self, object_id: ObjectID) -> bool:
        entry = self.objects.get(object_id)
        return entry is not None and entry.sealed

    def get_entry(self, object_id: ObjectID) -> StoredObject:
        entry = self.objects.get(object_id)
        if entry is None:
            raise ObjectNotFoundError(str(object_id))
        entry.last_access = self.sim.now
        return entry

    def try_get_entry(self, object_id: ObjectID) -> Optional[StoredObject]:
        entry = self.objects.get(object_id)
        if entry is not None:
            entry.last_access = self.sim.now
        return entry

    # -- creation / mutation ---------------------------------------------------
    def create(
        self,
        object_id: ObjectID,
        size: int,
        pin: bool = False,
    ) -> StoredObject:
        """Allocate space for an (initially empty) object copy."""
        if object_id in self.objects:
            raise ObjectAlreadyExistsError(str(object_id))
        num_blocks = self.config.num_blocks(size)
        self._make_room(size)
        entry = StoredObject(self.sim, object_id, size, num_blocks, pinned=pin)
        self.objects[object_id] = entry
        self.bytes_stored += size
        return entry

    def create_or_get(self, object_id: ObjectID, size: int, pin: bool = False) -> StoredObject:
        entry = self.objects.get(object_id)
        if entry is not None:
            entry.pinned = entry.pinned or pin
            return entry
        return self.create(object_id, size, pin=pin)

    def put_complete(
        self,
        object_id: ObjectID,
        value: ObjectValue,
        pin: bool = True,
    ) -> StoredObject:
        """Insert a complete object in one shot (no simulated copy time)."""
        entry = self.create(object_id, value.size, pin=pin)
        entry.metadata.update(value.metadata)
        entry.seal(value.payload)
        return entry

    def delete(self, object_id: ObjectID) -> None:
        entry = self.objects.pop(object_id, None)
        if entry is not None:
            self.bytes_stored -= entry.size

    def pin(self, object_id: ObjectID) -> None:
        self.get_entry(object_id).pinned = True

    def unpin(self, object_id: ObjectID) -> None:
        self.get_entry(object_id).pinned = False

    # -- flow accounting ---------------------------------------------------------
    def account_flow_in(self, flow: Flow, nbytes: int) -> None:
        """Record bytes a fetch streamed *into* this store for ``flow``."""
        self.flow_bytes_in[flow.flow_class] += nbytes

    def account_flow_out(self, flow: Flow, nbytes: int) -> None:
        """Record bytes this store served *out* to a remote fetch for ``flow``."""
        self.flow_bytes_out[flow.flow_class] += nbytes

    # -- eviction ---------------------------------------------------------------
    def _make_room(self, incoming_bytes: int) -> None:
        if self.capacity_bytes is None:
            return
        if incoming_bytes > self.capacity_bytes:
            raise MemoryError(
                f"object of {incoming_bytes} bytes exceeds store capacity "
                f"{self.capacity_bytes}"
            )
        while self.bytes_stored + incoming_bytes > self.capacity_bytes:
            victim = self._pick_eviction_victim()
            if victim is None:
                raise MemoryError(
                    "object store is full and nothing is evictable "
                    f"({self.bytes_stored} bytes stored, "
                    f"{incoming_bytes} incoming, capacity {self.capacity_bytes})"
                )
            self.delete(victim.object_id)
            self.evictions += 1

    def _pick_eviction_victim(self) -> Optional[StoredObject]:
        """LRU over unpinned, unreferenced copies.

        Sealed copies go first (they can always be re-fetched through the
        directory).  A *partial* copy is evictable only while nothing waits
        on its progress: evicting a copy with pending ``_progress_waiters``
        would wedge the transfers streaming out of it.
        """
        sealed: list[StoredObject] = []
        idle_partials: list[StoredObject] = []
        for entry in self.objects.values():
            if entry.pinned or entry.ref_count != 0:
                continue
            if entry.sealed:
                sealed.append(entry)
            elif not entry.has_waiters:
                idle_partials.append(entry)
        pool = sealed or idle_partials
        if not pool:
            return None
        return min(pool, key=lambda entry: entry.last_access)

    # -- failure handling ---------------------------------------------------------
    def _on_node_failure(self, node: Node) -> None:
        """A failed node loses its volatile store contents."""
        self.objects.clear()
        self.bytes_stored = 0
