"""The object model shared by every layer: IDs, values, and reduce operators.

Objects in the reproduction carry two things:

* a *logical size* in bytes, which is what the simulator uses to compute
  transfer and copy times (a 1 GB object does not need a real 1 GB buffer);
* an optional *payload* (a NumPy array or raw bytes) used by functional
  tests, the examples, and the reduce operator so that correctness — not
  just timing — can be verified end to end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence, Union

import numpy as np

_id_counter = itertools.count()


def reset_id_counter() -> None:
    """Rewind the process-global ``ObjectID.unique`` counter to zero.

    Benchmarks, digests, and determinism tests pin the counter so every
    scenario reproduces its standalone schedule exactly, in any batch
    order.  This is the one sanctioned way to do it — resetting the module
    global by hand from N call sites is how copies drift.
    """
    global _id_counter
    _id_counter = itertools.count()


Payload = Union[np.ndarray, bytes, None]


@dataclass(frozen=True, order=True)
class ObjectID:
    """A globally unique name for an immutable object.

    The application (or the task framework) generates ObjectIDs and passes
    them between tasks by value, exactly as in Table 1 of the paper.
    """

    key: str

    @staticmethod
    def of(key: str) -> "ObjectID":
        return ObjectID(key)

    @staticmethod
    def unique(prefix: str = "obj") -> "ObjectID":
        """Generate a fresh, deterministic ObjectID (monotonic counter)."""
        return ObjectID(f"{prefix}-{next(_id_counter)}")

    def derived(self, suffix: str) -> "ObjectID":
        """An ID derived from this one (used for internal partial results)."""
        return ObjectID(f"{self.key}/{suffix}")

    def __str__(self) -> str:
        return self.key


class ReduceOp(Enum):
    """Commutative, associative reduce operators supported by ``Reduce``."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    PROD = "prod"

    def combine(self, left: Payload, right: Payload) -> Payload:
        """Combine two payloads.  ``None`` payloads are treated as identity."""
        if left is None:
            return right
        if right is None:
            return left
        left_arr = np.asarray(left)
        right_arr = np.asarray(right)
        if self is ReduceOp.SUM:
            return left_arr + right_arr
        if self is ReduceOp.MIN:
            return np.minimum(left_arr, right_arr)
        if self is ReduceOp.MAX:
            return np.maximum(left_arr, right_arr)
        if self is ReduceOp.PROD:
            return left_arr * right_arr
        raise ValueError(f"unsupported reduce op: {self!r}")  # pragma: no cover

    def combine_many(self, payloads: Sequence[Payload]) -> Payload:
        result: Payload = None
        for payload in payloads:
            result = self.combine(result, payload)
        return result


@dataclass
class ObjectValue:
    """An immutable object value: a logical size plus an optional payload."""

    size: int
    payload: Payload = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("object size must be non-negative")

    @staticmethod
    def from_array(array: np.ndarray, logical_size: Optional[int] = None) -> "ObjectValue":
        """Wrap a NumPy array.  ``logical_size`` overrides the simulated size."""
        array = np.asarray(array)
        size = int(array.nbytes) if logical_size is None else int(logical_size)
        return ObjectValue(size=size, payload=array)

    @staticmethod
    def from_bytes(data: bytes, logical_size: Optional[int] = None) -> "ObjectValue":
        size = len(data) if logical_size is None else int(logical_size)
        return ObjectValue(size=size, payload=data)

    @staticmethod
    def of_size(nbytes: int) -> "ObjectValue":
        """A size-only object (no payload); used by the benchmarks."""
        return ObjectValue(size=int(nbytes))

    def as_array(self) -> np.ndarray:
        if self.payload is None:
            raise ValueError("this object has no payload")
        if isinstance(self.payload, bytes):
            return np.frombuffer(self.payload, dtype=np.uint8)
        return np.asarray(self.payload)

    def copy(self) -> "ObjectValue":
        payload = self.payload
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        return ObjectValue(size=self.size, payload=payload, metadata=dict(self.metadata))
