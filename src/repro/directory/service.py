"""Sharded object directory with partial/complete locations and inline cache."""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional

from repro.net.cluster import Cluster
from repro.net.node import Node
from repro.net.transport import NodeFailedError
from repro.sim import Event
from repro.store.objects import ObjectID, ObjectValue


@dataclass
class LocationInfo:
    """One copy of an object, as the directory sees it."""

    node_id: int
    complete: bool
    #: Node the copy is currently being fetched from (``None`` once complete
    #: or if the copy was created locally by ``Put``).  Used to avoid cyclic
    #: fetch dependencies after a failure (Section 3.5.1).
    upstream: Optional[int] = None


@dataclass
class DirectoryRecord:
    """Directory state for a single object."""

    object_id: ObjectID
    size: Optional[int] = None
    locations: dict[int, LocationInfo] = field(default_factory=dict)
    inline_value: Optional[ObjectValue] = None
    #: Events waiting for *any* location (or inline value) to appear.
    waiters: list[Event] = field(default_factory=list)
    #: Events waiting for a location to be released back / become available.
    availability_waiters: list[Event] = field(default_factory=list)
    #: Sources currently checked out by a receiver (requester_id -> source).
    #: Used to restore a source if the receiver dies before releasing it.
    checked_out: dict[int, LocationInfo] = field(default_factory=dict)
    deleted: bool = False
    #: index of the shard that owns this record (assigned once at creation;
    #: CRC placement is stable, so it never changes).
    shard: int = 0


class DirectoryShard:
    """One hash-shard of the directory: a service task on a host node.

    The shard is the directory's unit of failure: :meth:`ObjectDirectory.
    fail_shard` wipes its volatile state (the records it owns) and spawns a
    recovery task that — after the failure-detection delay — fails the shard
    over to an alive host if needed and replays its write-ahead log
    (checkpoint + tail) to reconstruct exactly the state the kill destroyed.
    Requests to a dead shard park on ``recovery_event`` inside the RPC path,
    so clients see a stall, never an error or a job restart.
    """

    __slots__ = (
        "shard_id",
        "node",
        "alive",
        "incarnation",
        "recovery_event",
        "wal",
        "backlog",
        "failovers",
        "last_replay_applied",
        "replay_self_check",
        "_appends_at_kill",
        "_pre_kill_digest",
    )

    def __init__(self, shard_id: int, node: Node, sim):
        self.shard_id = shard_id
        self.node = node
        self.alive = True
        self.incarnation = 0
        self.recovery_event = Event(sim)
        self.wal: Optional[object] = None  # attached by the directory
        #: requests parked during the current downtime; the replayed shard
        #: answers them serially, one service quantum apart, in parking order.
        self.backlog = 0
        self.failovers = 0
        self.last_replay_applied = 0
        #: outcome of the post-replay state self-check: True/False when the
        #: check ran (no WAL appends landed during the downtime, so replayed
        #: state must equal pre-kill state bit for bit), None when appends
        #: during downtime made the comparison meaningless.
        self.replay_self_check: Optional[bool] = None
        self._appends_at_kill = 0
        self._pre_kill_digest: Optional[str] = None


class ObjectDirectory:
    """The distributed object directory service.

    The directory is logically one key-value table; physically it is sharded
    over ``config.num_directory_shards`` shard servers placed round-robin on
    the cluster's nodes.  All methods that simulate an RPC are generators and
    must be driven from a simulation process (``yield from``).
    """

    def __init__(
        self,
        cluster: Cluster,
        selection_seed: int = 0,
        topology_aware: bool = True,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        #: seed of the deterministic tie-break among equally loaded sources
        #: (see :meth:`_eligible_sources`).
        self.selection_seed = int(selection_seed)
        #: prefer closer sources (same rack, then same zone) on hierarchical
        #: fabrics.  On the flat topology every pair is equidistant, so the
        #: flag cannot change the selection order there.
        self.topology_aware = bool(topology_aware) and not cluster.topology.is_flat
        num_shards = min(self.config.num_directory_shards, len(cluster.nodes))
        #: node that hosts each shard (round-robin placement).
        self.shard_nodes: list[Node] = [
            cluster.nodes[shard % len(cluster.nodes)] for shard in range(num_shards)
        ]
        # Deferred import: repro.tasksys re-exports the orchestrator, whose
        # import chain leads back here through repro.core.runtime; by
        # directory-construction time every module is fully initialized.
        from repro.tasksys.wal import WriteAheadLog

        #: the shard service tasks; each owns a WAL so its death is
        #: recoverable by replay (see :class:`DirectoryShard`).
        self.shards: list[DirectoryShard] = [
            DirectoryShard(shard_id, node, self.sim)
            for shard_id, node in enumerate(self.shard_nodes)
        ]
        for shard in self.shards:
            shard.wal = WriteAheadLog(
                self.sim,
                f"dirshard-{shard.shard_id}",
                snapshot_fn=(
                    lambda shard_id=shard.shard_id: self._snapshot_shard(shard_id)
                ),
                on_append=(
                    lambda record, shard=shard: self._on_wal_append(shard, record)
                ),
                on_checkpoint=(
                    lambda seq, shard=shard: self._on_wal_checkpoint(shard, seq)
                ),
            )
        self.shard_kills = 0
        self.records: dict[ObjectID, DirectoryRecord] = {}
        self.lookup_count = 0
        self.publish_count = 0
        #: wake-fan-out cost counters (deterministic, always on — like the
        #: lookup/publish counts above): every ``_notify_waiters`` call, the
        #: waiter events it actually woke, every ``_eligible_sources`` scan,
        #: and the location candidates those scans walked.  ROADMAP item 3
        #: names the O(waiters x candidates) rescan as the directory's
        #: scaling hazard; these four numbers make the future batched-wake
        #: fix measurable.
        self.notify_calls = 0
        self.waiter_wakes = 0
        self.eligibility_scans = 0
        self.eligibility_candidates = 0
        #: memoized source-selection tie-break hashes ((object key, node) ->
        #: int): the blake2b is a pure function of the key, and at fleet
        #: scale the per-candidate hashing dominated eligibility scans.
        self._tie_cache: dict[tuple[str, int], int] = {}
        for node in cluster.nodes:
            node.on_failure(self._on_node_failure)

    # -- plumbing -------------------------------------------------------------
    def _shard_index(self, object_id: ObjectID) -> int:
        # CRC32 rather than hash() so shard placement is stable across runs
        # (Python's string hash is randomized per process).
        return zlib.crc32(object_id.key.encode("utf-8")) % len(self.shards)

    def _shard_of(self, object_id: ObjectID) -> DirectoryShard:
        return self.shards[self._shard_index(object_id)]

    def _shard_node(self, object_id: ObjectID) -> Node:
        return self._shard_of(object_id).node

    def _rpc(self, requester: Node, object_id: ObjectID) -> Generator:
        """One control RPC from the requester to the object's shard.

        A dead shard does not error the request: the requester parks on the
        shard's recovery event and resumes once the shard's WAL replay
        finishes, so a shard kill is a stall, never a failure the data plane
        can observe.  Only the requester's own liveness aborts the RPC.
        """
        if not requester.alive:
            raise NodeFailedError(f"node {requester.node_id} is down", node=requester)
        shard = self._shard_of(object_id)
        shard_node = shard.node
        if requester.node_id == shard_node.node_id:
            timeout = self.sim.timeout(self.config.rpc_latency / 4.0)
            loc = self.sim.locality
            if loc is not None:
                loc.tag(timeout, requester.node_id)
            yield timeout
        else:
            # Control-plane traffic rides the latency path (it never occupies
            # a bulk link slot) but is visible to the flow accounting.
            requester.uplink_sched.record_control()
            obs = self.cluster.obs
            if obs is not None:
                obs.control_plane["shard_rpcs"].inc()
            timeout = self.sim.timeout(self.config.rpc_latency)
            loc = self.sim.locality
            if loc is not None:
                # A cross-rack control RPC is a zero-lookahead partition
                # interaction: the shard answers at RPC latency, below the
                # cross-rack propagation lookahead a conservative PDES
                # window relies on.
                if self.cluster.topology.same_rack(
                    requester.node_id, shard_node.node_id
                ):
                    loc.tag(timeout, requester.node_id)
                else:
                    loc.tag_sync_rpc(timeout)
            yield timeout
        while not shard.alive:
            # Take a position in the dead shard's backlog: the replayed shard
            # answers parked requests *serially*, one service quantum apart,
            # in parking order.  Without the stagger every parked continuation
            # resumes at the same instant, the resumed chains then march in
            # lockstep (identical hop latencies) and land same-instant link
            # releases whose within-timestep order the coalescing fast paths
            # do not preserve — admission of multi-link reservations would
            # then depend on it.  A serial drain is also what a real replayed
            # service does with its request queue.
            position = shard.backlog
            shard.backlog += 1
            flight = self.cluster.flight
            if flight is not None:
                flight.phase(
                    f"dirshard:{shard.shard_id}",
                    f"rpc_parked/n{requester.node_id}/{object_id}",
                )
            while not shard.alive:
                yield shard.recovery_event
            yield self.sim.timeout(
                (position + 1) * (self.config.rpc_latency / 64.0)
            )
            # Re-killed while draining: loop and take a fresh position.
        if not requester.alive:
            raise NodeFailedError(f"node {requester.node_id} is down", node=requester)

    def _record(self, object_id: ObjectID) -> DirectoryRecord:
        record = self.records.get(object_id)
        if record is None:
            record = DirectoryRecord(
                object_id=object_id, shard=self._shard_index(object_id)
            )
            self.records[object_id] = record
        return record

    # -- write-ahead logging ---------------------------------------------------
    def _on_wal_append(self, shard: DirectoryShard, record) -> None:
        obs = self.cluster.obs
        if obs is not None:
            obs.control_plane["wal_appends"].inc()
        flight = self.cluster.flight
        if flight is not None:
            flight.phase(f"dirshard:{shard.shard_id}", f"wal_append/{record.kind}")

    def _on_wal_checkpoint(self, shard: DirectoryShard, seq: int) -> None:
        obs = self.cluster.obs
        if obs is not None:
            obs.control_plane["checkpoints"].inc()
        flight = self.cluster.flight
        if flight is not None:
            flight.phase(f"dirshard:{shard.shard_id}", f"checkpoint/seq={seq}")

    def _commit(self, record: DirectoryRecord, kind: str, data: tuple):
        """Log one mutation to the owning shard's WAL, then apply it.

        The WAL entry carries the *evaluated* effect (chosen source, restore
        decision, dead set), so replay is a pure function of the log — it
        never re-reads node liveness or re-runs source selection.
        """
        self.shards[record.shard].wal.append(kind, (record.object_id,) + data)
        return self._apply(record, kind, data)

    def _apply(self, record: DirectoryRecord, kind: str, data: tuple):
        """Apply one logged mutation to a record: the live path and WAL
        replay share this function, so replayed state cannot drift."""
        if kind == "publish_partial":
            node_id, size, upstream = data
            record.size = size if record.size is None else record.size
            existing = record.locations.get(node_id)
            if existing is not None and existing.complete:
                return None
            record.locations[node_id] = LocationInfo(
                node_id=node_id, complete=False, upstream=upstream
            )
        elif kind == "publish_complete":
            node_id, size = data
            record.size = size if record.size is None else record.size
            record.locations[node_id] = LocationInfo(
                node_id=node_id, complete=True, upstream=None
            )
        elif kind == "put_inline":
            (value,) = data
            record.size = value.size
            record.inline_value = value
        elif kind == "remove_location":
            (node_id,) = data
            record.locations.pop(node_id, None)
        elif kind == "delete":
            record.locations.clear()
            record.inline_value = None
            record.deleted = True
        elif kind == "acquire":
            requester_id, node_id, complete, upstream = data
            chosen = record.locations.pop(node_id, None)
            if chosen is None:  # replay into reconstructed state
                chosen = LocationInfo(
                    node_id=node_id, complete=complete, upstream=upstream
                )
            record.checked_out[requester_id] = chosen
            existing = record.locations.get(requester_id)
            if existing is None or not existing.complete:
                record.locations[requester_id] = LocationInfo(
                    node_id=requester_id, complete=False, upstream=node_id
                )
            return chosen
        elif kind == "release":
            requester_id, node_id, complete, upstream, restore, succeeded = data
            record.checked_out.pop(requester_id, None)
            if restore:
                existing = record.locations.get(node_id)
                if existing is None or not existing.complete:
                    record.locations[node_id] = LocationInfo(
                        node_id=node_id, complete=complete, upstream=upstream
                    )
            if succeeded:
                record.locations[requester_id] = LocationInfo(
                    node_id=requester_id, complete=True, upstream=None
                )
        elif kind == "purge":
            node_id, dead = data
            record.locations.pop(node_id, None)
            checked_out = record.checked_out.pop(node_id, None)
            if checked_out is not None:
                if (
                    checked_out.node_id not in dead
                    and checked_out.node_id not in record.locations
                ):
                    record.locations[checked_out.node_id] = checked_out
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown directory WAL op {kind!r}")
        return None

    def _notify_waiters(self, record: DirectoryRecord) -> None:
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter("directory")
        self.notify_calls += 1
        wakes = 0
        if record.locations or record.inline_value is not None:
            for event in record.waiters:
                if not event.triggered:
                    event.succeed(record)
                    wakes += 1
            record.waiters = []
        for event in record.availability_waiters:
            if not event.triggered:
                event.succeed(record)
                wakes += 1
        record.availability_waiters = []
        self.waiter_wakes += wakes
        if prof is not None:
            prof.exit()

    # -- synchronous (zero-cost) inspection helpers, used by tests -------------
    def peek_record(self, object_id: ObjectID) -> Optional[DirectoryRecord]:
        return self.records.get(object_id)

    def locations_of(self, object_id: ObjectID) -> dict[int, LocationInfo]:
        record = self.records.get(object_id)
        return dict(record.locations) if record else {}

    def known_size(self, object_id: ObjectID) -> Optional[int]:
        record = self.records.get(object_id)
        if record is None:
            return None
        if record.size is not None:
            return record.size
        if record.inline_value is not None:
            return record.inline_value.size
        return None

    def is_created(self, object_id: ObjectID) -> bool:
        """True once the object has any location or an inline value."""
        record = self.records.get(object_id)
        if record is None:
            return False
        return bool(record.locations) or record.inline_value is not None

    def creation_event(self, object_id: ObjectID) -> Event:
        """An event that fires as soon as the object exists anywhere."""
        record = self._record(object_id)
        event = Event(self.sim)
        if record.locations or record.inline_value is not None:
            event.succeed(record)
        else:
            record.waiters.append(event)
        return event

    # -- publishing -------------------------------------------------------------
    def publish_partial(
        self,
        requester: Node,
        object_id: ObjectID,
        size: int,
        upstream: Optional[int] = None,
    ) -> Generator:
        """Announce that ``requester`` holds (or is building) a partial copy."""
        yield from self._rpc(requester, object_id)
        self.publish_count += 1
        record = self._record(object_id)
        existing = record.locations.get(requester.node_id)
        already_complete = existing is not None and existing.complete
        self._commit(record, "publish_partial", (requester.node_id, size, upstream))
        if already_complete:
            return
        self._notify_waiters(record)

    def publish_complete(self, requester: Node, object_id: ObjectID, size: int) -> Generator:
        """Announce that ``requester`` now holds a complete copy."""
        yield from self._rpc(requester, object_id)
        self.publish_count += 1
        record = self._record(object_id)
        self._commit(record, "publish_complete", (requester.node_id, size))
        self._notify_waiters(record)

    def put_inline(self, requester: Node, object_id: ObjectID, value: ObjectValue) -> Generator:
        """Cache a small object directly in the directory (fast path)."""
        yield from self._rpc(requester, object_id)
        self.publish_count += 1
        record = self._record(object_id)
        self._commit(record, "put_inline", (value,))
        self._notify_waiters(record)

    def remove_location(self, requester: Node, object_id: ObjectID, node_id: int) -> Generator:
        """Remove a location (e.g. an evicted copy)."""
        yield from self._rpc(requester, object_id)
        record = self.records.get(object_id)
        if record is not None:
            self._commit(record, "remove_location", (node_id,))

    def delete_object(self, requester: Node, object_id: ObjectID) -> Generator:
        """Drop every trace of the object (the ``Delete`` API)."""
        yield from self._rpc(requester, object_id)
        record = self.records.get(object_id)
        if record is not None:
            self._commit(record, "delete", ())

    # -- lookups ---------------------------------------------------------------
    def try_get_inline(self, requester: Node, object_id: ObjectID) -> Generator:
        """Fetch the inline-cached value, if any (one RPC)."""
        yield from self._rpc(requester, object_id)
        self.lookup_count += 1
        record = self.records.get(object_id)
        if record is None:
            return None
        return record.inline_value

    def wait_for_object(self, requester: Node, object_id: ObjectID) -> Generator:
        """Synchronous location query: block until the object exists somewhere."""
        yield from self._rpc(requester, object_id)
        self.lookup_count += 1
        record = self._record(object_id)
        while not record.locations and record.inline_value is None:
            event = Event(self.sim)
            loc = self.sim.locality
            if loc is not None:
                loc.tag(event, requester.node_id)
            record.waiters.append(event)
            yield event
        return record

    # -- broadcast coordination ---------------------------------------------------
    def _location_view(self, record: DirectoryRecord) -> dict[int, LocationInfo]:
        """Locations plus checked-out sources, for dependency-chain walks.

        Checked-out sources are removed from ``locations`` while they serve a
        receiver, but their upstream pointers must stay visible here: a chain
        that silently ends at a checked-out node would let two receivers pick
        each other's partials as sources and deadlock with neither able to
        make progress (each waiting for blocks only the other could produce).
        Built once per eligibility scan — rebuilding it per candidate made
        source selection quadratic at fleet scale.
        """
        view = dict(record.locations)
        for info in record.checked_out.values():
            view.setdefault(info.node_id, info)
        return view

    def _dependency_chain(
        self, record: DirectoryRecord, node_id: int, view: Optional[dict] = None
    ) -> set[int]:
        """Follow the ``upstream`` pointers from ``node_id``."""
        if view is None:
            view = self._location_view(record)
        chain: set[int] = set()
        current: Optional[int] = node_id
        while current is not None and current not in chain:
            chain.add(current)
            info = view.get(current)
            current = info.upstream if info is not None else None
        return chain

    def _is_excluded(self, node_id: int, exclude) -> bool:
        """Whether ``node_id`` is ruled out by the requester's exclusion set.

        ``exclude`` is either a plain iterable of node ids (excluded
        unconditionally) or a mapping ``node_id -> incarnation`` recorded
        when that source failed the requester: the node stays excluded only
        while its incarnation has not advanced, so a source that recovers
        (and re-publishes the object) becomes eligible again even for a
        requester already parked inside :meth:`acquire_transfer_source`.
        """
        if isinstance(exclude, dict):
            incarnation = exclude.get(node_id)
            if incarnation is None:
                return False
            return self.cluster.nodes[node_id].incarnation <= incarnation
        return node_id in set(exclude)

    def _eligible_sources(
        self, record: DirectoryRecord, requester_id: int, exclude
    ) -> list[LocationInfo]:
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter("directory")
        self.eligibility_scans += 1
        self.eligibility_candidates += len(record.locations)
        sources = []
        view: Optional[dict] = None
        for info in record.locations.values():
            if info.node_id == requester_id or self._is_excluded(info.node_id, exclude):
                continue
            node = self.cluster.nodes[info.node_id]
            if not node.alive:
                continue
            # Cycle avoidance: never pick a source whose own fetch depends,
            # transitively, on the requester (Section 3.5.1).
            if view is None:
                view = self._location_view(record)
            if requester_id in self._dependency_chain(record, info.node_id, view):
                continue
            sources.append(info)
        # Prefer complete copies over partial ones, then — on a hierarchical
        # fabric — closer copies over farther ones (same rack before same
        # zone before cross-zone: a same-rack pull costs no shared tier
        # slot, so one cross-rack transfer per rack suffices and the rest of
        # the broadcast tree relays inside the rack), then idle uplinks over
        # busy ones: when many objects disseminate concurrently (allgather,
        # alltoall) this spreads the transfers across distinct senders
        # instead of convoying them through the lowest-numbered node.
        topology = self.cluster.topology

        def _distance(info: LocationInfo) -> int:
            if not self.topology_aware:
                return 0
            return topology.distance(requester_id, info.node_id)

        def _load(info: LocationInfo) -> int:
            uplink = self.cluster.nodes[info.node_id].uplink
            return uplink.in_use + uplink.queue_length

        # Under equal load the tie-break is a seeded hash of (seed, object,
        # candidate) rather than the raw node id: still fully deterministic —
        # a seeded run is byte-for-byte reproducible — but without the
        # systematic bias toward low-numbered nodes, and re-seedable so the
        # fault matrix can vary schedules while staying replayable.  blake2b
        # rather than crc32: crc is linear, so same-length object ids would
        # shift every candidate's hash by the same XOR constant and the
        # per-object variation would collapse to one global order.
        tie_cache = self._tie_cache

        def _tie_break(info: LocationInfo) -> int:
            cache_key = (record.object_id.key, info.node_id)
            cached = tie_cache.get(cache_key)
            if cached is None:
                token = f"{self.selection_seed}:{record.object_id.key}:{info.node_id}"
                digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
                cached = int.from_bytes(digest, "big")
                tie_cache[cache_key] = cached
            return cached

        sources.sort(
            key=lambda info: (
                not info.complete,
                _distance(info),
                _load(info),
                _tie_break(info),
                info.node_id,
            )
        )
        if prof is not None:
            prof.exit()
        return sources

    def _rack_local_copy_pending(
        self, record: DirectoryRecord, requester_id: int, exclude
    ) -> bool:
        """Whether a same-rack copy exists but is currently unavailable.

        A copy checked out to another receiver (or a partial already fully
        claimed) will come back to the location table when that transfer
        finishes; a topology-aware requester whose best *eligible* source is
        cross-rack prefers to wait for the rack-local one rather than burn a
        scarce shared tier slot — this is what keeps a rack-aware broadcast
        at one cross-rack transfer per rack.  Dead, excluded, and
        cycle-dependent copies (a chain through the requester itself) never
        count.  The wait itself is *bounded* by the caller (one failure-
        detection delay): a partial whose producing fetch silently died —
        e.g. its node failed and recovered mid-transfer — would otherwise
        park a whole rack of requesters forever, each seeing the others'
        frozen partials as "pending".
        """
        topology = self.cluster.topology
        view = self._location_view(record)
        for info in view.values():
            if info.node_id == requester_id:
                continue
            if not topology.same_rack(requester_id, info.node_id):
                continue
            if self._is_excluded(info.node_id, exclude):
                continue
            if not self.cluster.nodes[info.node_id].alive:
                continue
            if requester_id in self._dependency_chain(record, info.node_id, view):
                continue
            return True
        return False

    def acquire_transfer_source(
        self,
        requester: Node,
        object_id: ObjectID,
        exclude: Iterable[int] | dict[int, int] = (),
    ) -> Generator:
        """Pick a source to fetch the object from, per the broadcast protocol.

        Blocks until a suitable source exists.  Atomically removes the chosen
        source from the location table (so it serves one receiver at a time)
        and registers the requester as a partial location whose upstream is
        the chosen source.  Returns the chosen :class:`LocationInfo`.

        ``exclude`` may be a ``node_id -> incarnation`` mapping (see
        :meth:`_is_excluded`); eligibility is re-evaluated every time the
        record changes, so exclusions lapse when excluded nodes recover.

        Topology-aware mode additionally parks a requester whose best
        eligible source is in another rack while a same-rack copy is merely
        *busy* (see :meth:`_rack_local_copy_pending`).  That park is bounded
        by one full service of the object (its serialization time, floored
        by ``failure_detection_delay``): a live busy copy returns to the
        table within that budget, after which the requester stops insisting
        on locality and takes the best eligible source wherever it lives —
        so a rack whose local copies are all frozen (producers dead)
        degrades to cross-rack fetches instead of deadlocking on its own
        ghost partials.
        """
        yield from self._rpc(requester, object_id)
        self.lookup_count += 1
        record = self._record(object_id)
        #: absolute time at which this acquire stops insisting on locality;
        #: fixed when the first park begins, so record churn (other
        #: receivers checking copies in and out keeps re-firing the waiter)
        #: cannot restart the window.  The budget covers one full service of
        #: the object — a *live* busy copy returns to the table within its
        #: serialization time, while a ghost partial (producer silently
        #: gone) never does and the requester degrades to cross-rack — with
        #: the failure-detection delay as the floor for small objects.
        locality_deadline: Optional[float] = None
        while True:
            sources = self._eligible_sources(record, requester.node_id, exclude)
            hold_for_rack = bool(
                sources
                and self.topology_aware
                and not self.cluster.topology.same_rack(
                    requester.node_id, sources[0].node_id
                )
                and self._rack_local_copy_pending(record, requester.node_id, exclude)
            )
            if hold_for_rack:
                if locality_deadline is None:
                    # One full service of the object plus the detection
                    # delay as slack: a busy rack-local copy is released at
                    # the end of its current stream, which takes exactly
                    # one serialization time — an expiry equal to it would
                    # race the release and lose by a propagation delay.
                    budget = (
                        self.config.failure_detection_delay
                        + self.config.transmission_time(record.size or 0)
                        + self.config.latency
                    )
                    locality_deadline = self.sim.now + budget
                elif self.sim.now >= locality_deadline:
                    hold_for_rack = False
            if sources and not hold_for_rack:
                chosen = sources[0]
                # The WAL entry carries the evaluated choice: replay must
                # not re-run source selection against replayed state.
                chosen = self._commit(
                    record,
                    "acquire",
                    (
                        requester.node_id,
                        chosen.node_id,
                        chosen.complete,
                        chosen.upstream,
                    ),
                )
                self._notify_waiters(record)
                return chosen
            event = Event(self.sim)
            loc = self.sim.locality
            if loc is not None:
                loc.tag(event, requester.node_id)
            record.availability_waiters.append(event)
            record.waiters.append(event)
            if hold_for_rack:
                # Re-evaluate on any record change, or when the locality
                # deadline expires — whichever comes first.
                yield self.sim.any_of(
                    [event, self.sim.timeout(locality_deadline - self.sim.now)]
                )
            else:
                yield event

    def release_transfer_source(
        self,
        requester: Node,
        object_id: ObjectID,
        source: LocationInfo,
        succeeded: bool,
    ) -> Generator:
        """Give the source back to the directory after a transfer attempt.

        On success the requester is also promoted to a complete location.
        A failed source (dead node) is not re-added.
        """
        yield from self._rpc(requester, object_id)
        record = self._record(object_id)
        restore = self.cluster.nodes[source.node_id].alive
        self._commit(
            record,
            "release",
            (
                requester.node_id,
                source.node_id,
                source.complete,
                source.upstream,
                restore,
                succeeded,
            ),
        )
        self._notify_waiters(record)

    # -- failure handling -----------------------------------------------------------
    def _on_node_failure(self, node: Node) -> None:
        """Purge every location hosted by a failed node.

        A *data-plane* node failure does not take its shard down with it:
        shard death is its own injected fault class (:meth:`fail_shard`),
        so every pre-existing failure scenario keeps its exact schedule.
        The purge is logged to every shard's WAL with the evaluated dead
        set — a purge that lands while a shard is down mutates nothing live
        (the state is already wiped) but replays in order during recovery,
        which is what makes replayed state the real post-downtime truth.
        """
        dead = tuple(
            sorted(n.node_id for n in self.cluster.nodes if not n.alive)
        )
        for shard in self.shards:
            shard.wal.append("purge", (node.node_id, dead))
        for record in self.records.values():
            if not self.shards[record.shard].alive:
                continue
            record.locations.pop(node.node_id, None)
            # If the failed node had checked out a source for an in-flight
            # fetch, put that source back so other receivers can still use it.
            checked_out = record.checked_out.pop(node.node_id, None)
            if checked_out is not None:
                source_node = self.cluster.nodes[checked_out.node_id]
                if source_node.alive and checked_out.node_id not in record.locations:
                    record.locations[checked_out.node_id] = checked_out
            if record.locations or record.inline_value is not None:
                self._notify_waiters(record)

    # -- shard failure: the control-plane fault class ---------------------------
    def _wipe_record(self, record: DirectoryRecord) -> None:
        """Drop a record's volatile state; parked waiters stay attached."""
        record.size = None
        record.locations.clear()
        record.inline_value = None
        record.checked_out.clear()
        record.deleted = False

    def _snapshot_shard(self, shard_id: int) -> tuple:
        """An immutable snapshot of every record the shard owns."""
        snapshot = []
        for object_id, record in self.records.items():
            if record.shard != shard_id:
                continue
            snapshot.append(
                (
                    object_id,
                    record.size,
                    record.inline_value,
                    record.deleted,
                    tuple(
                        (info.node_id, info.complete, info.upstream)
                        for info in record.locations.values()
                    ),
                    tuple(
                        (requester_id, info.node_id, info.complete, info.upstream)
                        for requester_id, info in record.checked_out.items()
                    ),
                )
            )
        return tuple(snapshot)

    def _restore_shard(self, shard_id: int, snapshot) -> None:
        """Load a checkpoint snapshot back into the live record table."""
        for record in self.records.values():
            if record.shard == shard_id:
                self._wipe_record(record)
        for object_id, size, inline_value, deleted, locations, checked_out in (
            snapshot or ()
        ):
            record = self._record(object_id)
            record.size = size
            record.inline_value = inline_value
            record.deleted = deleted
            record.locations = {
                node_id: LocationInfo(
                    node_id=node_id, complete=complete, upstream=upstream
                )
                for node_id, complete, upstream in locations
            }
            record.checked_out = {
                requester_id: LocationInfo(
                    node_id=node_id, complete=complete, upstream=upstream
                )
                for requester_id, node_id, complete, upstream in checked_out
            }

    def _replay_record(self, shard: DirectoryShard, wal_record) -> None:
        """Re-apply one WAL record during shard recovery."""
        if wal_record.kind == "purge":
            node_id, dead = wal_record.data
            for record in self.records.values():
                if record.shard == shard.shard_id:
                    self._apply(record, "purge", (node_id, dead))
            return
        object_id = wal_record.data[0]
        record = self._record(object_id)
        self._apply(record, wal_record.kind, wal_record.data[1:])

    def _shard_digest(self, shard_id: int) -> str:
        """Deterministic digest of a shard's state (replay self-checks)."""
        parts = []
        for object_id, record in self.records.items():
            if record.shard != shard_id:
                continue
            parts.append(
                (
                    object_id.key,
                    record.size,
                    record.deleted,
                    None
                    if record.inline_value is None
                    else record.inline_value.size,
                    tuple(
                        (info.node_id, info.complete, info.upstream)
                        for info in record.locations.values()
                    ),
                    tuple(
                        (requester_id, info.node_id, info.complete, info.upstream)
                        for requester_id, info in record.checked_out.items()
                    ),
                )
            )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()

    def fail_shard(self, shard_id: int) -> None:
        """Kill one directory shard: its volatile state is lost *now*.

        Every record the shard owns is wiped in place (record identity and
        table order are preserved — clients hold references across yields);
        requests park in :meth:`_rpc` until the spawned recovery task brings
        the shard back by WAL replay.  Auto-checkpointing freezes for the
        downtime so no snapshot of wiped state can be taken.
        """
        shard = self.shards[shard_id]
        if not shard.alive:
            return
        shard.alive = False
        shard.incarnation += 1
        shard.backlog = 0
        shard.recovery_event = Event(self.sim)
        shard.wal.frozen = True
        shard._appends_at_kill = shard.wal.appends
        shard._pre_kill_digest = self._shard_digest(shard_id)
        shard.replay_self_check = None
        self.shard_kills += 1
        flight = self.cluster.flight
        if flight is not None:
            flight.phase(
                f"dirshard:{shard_id}", f"kill/incarnation={shard.incarnation}"
            )
        for record in self.records.values():
            if record.shard == shard_id:
                self._wipe_record(record)
        self.sim.process(
            self._recover_shard(shard), name=f"dirshard-{shard_id}-recovery"
        )

    def _recover_shard(self, shard: DirectoryShard) -> Generator:
        """Detect, fail over if the host died, replay the WAL, come back."""
        yield self.sim.timeout(self.config.failure_detection_delay)
        flight = self.cluster.flight
        if not shard.node.alive:
            alive = self.cluster.alive_nodes()
            if alive:
                num_nodes = len(self.cluster.nodes)
                start = shard.node.node_id
                new_host = min(
                    alive,
                    key=lambda n: ((n.node_id - start) % num_nodes, n.node_id),
                )
                old_id = shard.node.node_id
                shard.node = new_host
                self.shard_nodes[shard.shard_id] = new_host
                shard.failovers += 1
                if flight is not None:
                    flight.phase(
                        f"dirshard:{shard.shard_id}",
                        f"shard_failover/{old_id}->{new_host.node_id}",
                    )
        if flight is not None:
            flight.phase(f"dirshard:{shard.shard_id}", "replay_begin")
        applied = shard.wal.replay(
            lambda snapshot: self._restore_shard(shard.shard_id, snapshot),
            lambda wal_record: self._replay_record(shard, wal_record),
        )
        shard.last_replay_applied = applied
        # Replay cost: one RPC to load the checkpoint plus a quarter-latency
        # per tail record re-applied — deterministic, so recovered runs stay
        # byte-reproducible.
        yield self.sim.timeout(
            self.config.rpc_latency * (1.0 + 0.25 * applied)
        )
        shard.alive = True
        shard.wal.frozen = False
        if shard.wal.appends == shard._appends_at_kill:
            # Nothing happened during the downtime: replayed state must be
            # bit-identical to what the kill destroyed.
            shard.replay_self_check = (
                self._shard_digest(shard.shard_id) == shard._pre_kill_digest
            )
        obs = self.cluster.obs
        if obs is not None:
            obs.control_plane["replays"].inc()
        if flight is not None:
            flight.phase(
                f"dirshard:{shard.shard_id}", f"replay_end/applied={applied}"
            )
        shard.recovery_event.succeed(shard)
        # Deferred waiter notifications drain serially *after* the parked RPC
        # backlog, continuing its slot sequence, so no two recovery-driven
        # continuations resume at the same instant (see the stagger rationale
        # in :meth:`_rpc`).  ``shard.backlog`` is final here: any request that
        # arrives after ``alive`` flipped above never parks.
        pending = [
            record
            for record in self.records.values()
            if record.shard == shard.shard_id
            and (record.locations or record.inline_value is not None)
            and (record.waiters or record.availability_waiters)
        ]
        quantum = self.config.rpc_latency / 64.0
        base = self.sim.now
        slot = shard.backlog + 1
        for record in pending:
            wake = Event(self.sim)
            self.sim.schedule_at(wake, base + slot * quantum)
            yield wake
            slot += 1
            if not shard.alive:
                # Re-killed mid-drain; the new recovery owns the rest.
                return
            self._notify_waiters(record)
