"""The global object directory service (Section 3.2 of the paper).

The directory maps each :class:`~repro.store.ObjectID` to its size and to
the set of node locations that hold a partial or complete copy.  It is
sharded across the cluster's nodes; every lookup and publish pays a
control-plane RPC to the shard that owns the object.

The directory is also where Hoplite's two distinguishing behaviours are
coordinated:

* **receiver-driven broadcast** — ``acquire_transfer_source`` removes the
  chosen location while a transfer is in flight and records the receiver as
  a new partial location, which is what bounds each copy to one downstream
  receiver at a time and grows a broadcast tree on the fly;
* **small-object fast path** — objects below the configured threshold are
  cached inline in the directory itself, so a Get is a single RPC.
"""

from repro.directory.service import DirectoryRecord, LocationInfo, ObjectDirectory

__all__ = ["DirectoryRecord", "LocationInfo", "ObjectDirectory"]
