"""Hoplite reproduction: efficient, fault-tolerant collective communication
for task-based distributed systems (SIGCOMM 2021), rebuilt as a Python
library on a discrete-event cluster simulator.

Public API overview
-------------------

* :mod:`repro.sim` — the discrete-event simulation kernel.
* :mod:`repro.net` — the simulated cluster/network substrate.
* :mod:`repro.store` — the object model and per-node object stores.
* :mod:`repro.directory` — the sharded object directory service.
* :mod:`repro.core` — Hoplite itself: ``HopliteRuntime`` and the
  ``Put``/``Get``/``Delete``/``Reduce`` client API.
* :mod:`repro.collectives` — OpenMPI/Gloo/Ray/Dask-style baselines and the
  ``CommPlane`` abstraction shared with the applications.
* :mod:`repro.tasksys` — a miniature Ray-like dynamic task system.
* :mod:`repro.apps` — the paper's application workloads (async SGD, RL,
  model serving, synchronous training).
* :mod:`repro.bench` — the benchmark harness regenerating every figure.
"""

from repro.core.api import HopliteClient
from repro.core.options import HopliteOptions
from repro.core.runtime import HopliteRuntime
from repro.net.cluster import Cluster
from repro.net.config import NetworkConfig
from repro.net.topology import Topology
from repro.store.objects import ObjectID, ObjectValue, ReduceOp

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "HopliteClient",
    "HopliteOptions",
    "HopliteRuntime",
    "NetworkConfig",
    "ObjectID",
    "ObjectValue",
    "ReduceOp",
    "Topology",
    "__version__",
]
