"""Discrete-event simulation kernel.

A minimal, dependency-free coroutine simulator in the spirit of SimPy.
Processes are Python generators that ``yield`` events; the :class:`Simulator`
advances virtual time and resumes processes when the events they wait on are
triggered.

The kernel is the substrate for every other subsystem in this repository:
the network model, the object stores, the Hoplite control plane, the
baseline collectives, and the mini task system all run as processes on a
single :class:`Simulator`.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessFailure,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Container, MultiRequest, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "MultiRequest",
    "PriorityResource",
    "Process",
    "ProcessFailure",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
