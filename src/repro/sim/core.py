"""Core event loop, events, and processes for the simulation kernel.

The design follows the classic discrete-event pattern:

* A :class:`Simulator` owns a priority queue of scheduled events keyed by
  ``(time, priority, sequence)``.
* An :class:`Event` is a one-shot signal.  It can *succeed* with a value or
  *fail* with an exception.  Callbacks attached to the event run when the
  simulator pops it off the queue.
* A :class:`Process` wraps a generator.  Every value the generator yields
  must be an :class:`Event`; the process is resumed (``send``/``throw``) when
  that event fires.  A process is itself an event that fires when the
  generator terminates, so processes can wait on one another.

The module is intentionally small and has no external dependencies so that
unit tests of the higher layers never depend on wall-clock time.

Performance notes (the kernel is the hot loop of every benchmark):

* every class here carries ``__slots__`` — a simulation allocates millions
  of events and the per-instance ``__dict__`` was a third of the kernel's
  footprint and a measurable share of its time;
* an event's callback list is allocated lazily on the first
  :meth:`Event.add_callback`; most events (timeouts with a single waiting
  process, fire-and-forget grants) carry zero or one callback, so the
  eager empty list was pure churn.  ``callbacks`` keeps its public
  contract: falsy while empty, a list while waiters exist, and the
  ``_PROCESSED`` sentinel (an empty tuple — also falsy) once the event has
  left the queue;
* :meth:`Simulator.schedule_at` places an event at an *absolute* timestamp,
  which the coalesced-transfer fast path uses to land wake-ups on exactly
  the accumulated float boundary a per-block chain of timeouts would have
  produced (``now + (t - now)`` does not round-trip in floating point).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why the
    interrupt happened (for example, a node-failure record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessFailure(Exception):
    """Wraps an exception that escaped a process nobody was waiting on."""


# Priorities used to order events that fire at the same timestamp.  Urgent
# events (process resumptions) run before normal events so that chains of
# zero-delay causality settle deterministically.
URGENT = 0
NORMAL = 1

#: Sentinel marking an event whose callbacks have already run.  An empty
#: tuple: falsy (so ``bool(event.callbacks)`` still means "has waiters"),
#: immutable, and identity-comparable.
_PROCESSED: tuple = ()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time.  Once triggered its value is immutable.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_exception",
        "_ok",
        "defused",
        # Owning-node tag written by locality-analyzer sites and read only
        # by the analyzer's pop hook; left unset when analysis is off (the
        # slot descriptor costs one pointer per event, no init-time work).
        "_loc_owner",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: ``None`` until the first callback registers; a list while waiters
        #: exist; the ``_PROCESSED`` sentinel once callbacks have run.
        self.callbacks: Any = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None
        #: Set once a failure has been delivered to at least one waiter (or
        #: explicitly acknowledged).  Unhandled failures are surfaced when the
        #: simulation ends so errors never pass silently.
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value read before it was triggered")
        if self._exception is not None:
            return self._exception
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._ok is not None:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._exception = exception
        self.sim._schedule(self, URGENT)
        return self

    def trigger(self, other: "Event") -> None:
        """Mirror the outcome of ``other`` onto this event."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._exception)  # type: ignore[arg-type]

    # -- composition ------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        callbacks = self.callbacks
        if callbacks is _PROCESSED:
            # Already processed: run immediately at the current time.
            callback(self)
        elif callbacks is None:
            self.callbacks = [callback]
        else:
            callbacks.append(callback)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        Event.__init__(self, sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("a Timeout is triggered automatically")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("a Timeout is triggered automatically")


class _Condition(Event):
    """Base class for AllOf / AnyOf composition events."""

    __slots__ = ("events", "_matched")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Event.__init__(self, sim)
        self.events = list(events)
        self._matched: list[Event] = []
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
            event.add_callback(self._check)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._matched.append(event)
        if self._satisfied():
            self.succeed([e.value for e in self._matched])


class AllOf(_Condition):
    """Fires when every component event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._matched) == len(self.events)


class AnyOf(_Condition):
    """Fires when the first component event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._matched) >= 1


class Process(Event):
    """A generator-based coroutine running on the simulator.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event succeeds, the event's value is sent into the generator; when it
    fails, the exception is thrown into the generator.  The process itself
    is an event that succeeds with the generator's return value.
    """

    __slots__ = ("generator", "name", "_target", "_resume_bound")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        Event.__init__(self, sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # One bound method reused for every resumption: creating a fresh
        # bound method per yield was measurable at millions of yields.
        self._resume_bound = self._resume
        # Kick-start the process at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.succeed()
        bootstrap.callbacks = [self._resume_bound]

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        Interrupting a finished process is a no-op, which keeps failure
        injection code simple (a node may already have died for another
        reason).
        """
        if self.triggered:
            return
        if self._target is not None and type(self._target.callbacks) is list:
            try:
                self._target.callbacks.remove(self._resume_bound)
            except ValueError:
                pass
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._exception = Interrupt(cause)
        interrupt_event.defused = True
        self.sim._schedule(interrupt_event, URGENT)
        interrupt_event.add_callback(self._resume_bound)

    def _resume(self, event: Event) -> None:
        if self._ok is not None:
            return
        self._target = None
        try:
            if event._ok:
                next_event = self.generator.send(event._value)
            else:
                event.defused = True
                next_event = self.generator.throw(event._exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
            try:
                self.generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:  # noqa: BLE001
                self.fail(exc)
            return
        self._target = next_event
        next_event.add_callback(self._resume_bound)


class Simulator:
    """The discrete-event scheduler.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    __slots__ = (
        "_now",
        "_queue",
        "_sequence",
        "events_processed",
        "unhandled_failures",
        "on_step",
        "on_pop",
        "host_prof",
        "locality",
    )

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        #: Events processed by :meth:`step` so far (the denominator of the
        #: events/sec throughput metric in ``benchmarks/bench_perf.py``).
        self.events_processed = 0
        #: Failed events whose exception was never consumed by a waiter.
        self.unhandled_failures: list[Event] = []
        #: Optional per-event observability hook, called as ``on_step(when)``
        #: after the clock advances and before callbacks run.  ``None`` (the
        #: default) costs one branch per event; installed by
        #: :class:`repro.obs.Observability` for event-loop counters.  The
        #: hook must be purely observational — it runs inside the kernel's
        #: dispatch frame.
        self.on_step: Optional[Callable[[float], None]] = None
        #: Optional per-pop flight-recorder hook, called as
        #: ``on_pop(when, seq, event)`` with the popped entry's queue
        #: sequence number.  Same discipline as ``on_step`` (one branch per
        #: event when unset, purely observational); installed by
        #: :class:`repro.obs.flight.FlightRecorder` via
        #: ``Cluster.enable_flight_recorder``.
        self.on_pop: Optional[Callable[[float, int, Event], None]] = None
        #: Optional :class:`repro.obs.hostprof.HostProfiler` attributing
        #: *host* wall-clock self-time to kernel subsystems.  Same
        #: discipline as the hooks above: ``None`` costs one branch per
        #: instrumented region, and the profiler only ever reads the host
        #: clock — simulated results are identical on or off.  Installed by
        #: ``Cluster.enable_host_profiler``.
        self.host_prof: Optional[Any] = None
        #: Optional :class:`repro.obs.locality.LocalityAnalyzer` whose
        #: tagging sites stamp events with their owning node (one branch
        #: per site when unset).  Its pop hook rides ``on_pop``.  Installed
        #: by ``Cluster.enable_locality_analyzer``.
        self.locality: Optional[Any] = None

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (self._now + delay, priority, seq, event))

    def schedule_at(self, event: Event, at: float, priority: int = NORMAL) -> None:
        """Place ``event`` in the queue at the *absolute* time ``at``.

        Used by fast paths that must land a wake-up on exactly the float
        timestamp an equivalent chain of relative timeouts would have
        reached (relative scheduling would re-round through ``now + delay``).
        ``at`` must not lie in the past.
        """
        if at < self._now:
            raise SimulationError(f"schedule_at({at}) is in the past (now={self._now})")
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (at, priority, seq, event))

    def wake_at(self, at: float, value: Any = None) -> Event:
        """An already-succeeded event that pops at the absolute time ``at``.

        Behaves like a :class:`Timeout` aimed at an exact timestamp: yield
        it from a process to sleep until then, or attach callbacks to run
        work at that instant.
        """
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, at)
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process a single event."""
        if not self._queue:
            raise SimulationError("step() called on an empty event queue")
        prof = self.host_prof
        if prof is not None:
            # "dispatch" is the outermost profiled region: every nested
            # region (admission, directory, ...) subtracts from its
            # self-time, so un-instrumented callback work stays charged
            # here and category totals cover the whole step.
            prof.enter("dispatch")
        when, _priority, seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        if self.on_step is not None:
            self.on_step(when)
        if self.on_pop is not None:
            self.on_pop(when, seq, event)
        callbacks = event.callbacks
        event.callbacks = _PROCESSED
        if callbacks is not None:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event.defused:
            self.unhandled_failures.append(event)
        if prof is not None:
            prof.exit()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value or raising its exception).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})"
                )

        queue = self._queue
        step = self.step
        prof = self.host_prof
        if prof is not None:
            prof.begin_run()
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is _PROCESSED:
                    break
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    break
                step()
        finally:
            if prof is not None:
                prof.end_run()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            if not stop_event.ok:
                stop_event.defused = True
                raise stop_event._exception  # type: ignore[misc]
            return stop_event.value
        if stop_time != float("inf") and self._now < stop_time:
            self._now = stop_time
        return None
