"""Shared resources for simulation processes.

Four primitives cover everything the higher layers need:

* :class:`Resource` — a counted resource (e.g. a worker pool slot, a NIC
  transmit slot).  Requests queue FIFO and are granted as capacity frees up.
* :class:`MultiRequest` — a cancellable claim on *several* resources at once,
  granted atomically only when every resource has capacity simultaneously.
  Unlike single requests, a pending multi-request never blocks the requests
  behind it: the grant scan skips it until its whole claim set is free.  This
  is the admission primitive behind the flow-scheduled transport
  (:mod:`repro.net.flowsched`) — it removes the hold-one-wait-for-the-other
  head-of-line blocking of sequential acquisition, and it cannot deadlock
  because it never holds a partial claim.
* :class:`Container` — a continuous quantity (e.g. bytes of store memory)
  with blocking ``get``/``put``.
* :class:`Store` — a FIFO queue of Python objects with blocking ``get`` and
  optional filtering, used for message channels between processes.

Admission is *incremental*: a release wakes only the queue of the released
resource (never a global rescan), the priority queue is maintained by
``bisect.insort`` on a ``(priority, sequence)`` key instead of a linear
scan, and the grant scan stops as soon as the resource is saturated — with
capacity-1 NIC slots that turns the former O(waiters) rescan per release
into O(grants).  :class:`Store` settles only newly eligible getter×item
pairs: a new item is offered to the waiting getters once, a new getter scans
the present items once, and the stable remainder is never rescanned.

Resources also support *virtual holds* (:meth:`Resource.add_virtual_hold`):
an occupancy schedule evaluated arithmetically instead of via scheduled
events.  The coalesced-transfer fast path uses them to keep a link's
``in_use`` exactly what an equivalent per-block chain of grants and releases
would show at any instant, without paying one event pair per block.  The
moment anyone *enqueues* on the resource, every virtual hold is told to
materialize (``on_contest``) before the new request is queued, so admission
decisions only ever see real holds.
"""

from __future__ import annotations

import itertools
from bisect import insort
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.sim.core import Event, SimulationError, Simulator

#: process-global arrival stamper for queue ordering.  Only *differences*
#: matter (FIFO within a priority class), so sharing it across simulators
#: cannot leak state between runs.
_arrival_stamp = itertools.count()


def _queue_key(request: "Event") -> tuple[int, int]:
    return request.sort_key


class _Request(Event):
    """A pending claim on a resource; usable as a context manager."""

    __slots__ = ("resource", "amount", "priority", "sort_key")

    is_multi = False

    def __init__(self, resource: "Resource", amount: int = 1, priority: int = 0):
        Event.__init__(self, resource.sim)
        self.resource = resource
        self.amount = amount
        self.priority = priority
        self.sort_key = (priority, next(_arrival_stamp))

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class MultiRequest(Event):
    """A cancellable claim on several resources, granted atomically.

    ``claims`` is a sequence of ``(resource, amount)`` pairs.  The request
    enqueues on every claimed resource (ordered by ``priority``, FIFO within
    equal priorities) and is granted only at an instant when *all* claims fit
    — it never holds one resource while waiting for another, so a set of
    multi-requests cannot deadlock, and a busy partner resource never parks
    the claimed capacity idle.

    Usable as a context manager like a single request; ``release`` frees a
    granted claim or withdraws a pending one.
    """

    __slots__ = (
        "claims",
        "priority",
        "sort_key",
        "granted_at",
        "_released",
        "_blocked_on",
        "_blocked_amount",
        "_silent",
    )

    is_multi = True

    def __init__(
        self,
        sim: Simulator,
        claims: Sequence[tuple["Resource", int]],
        priority: int = 0,
    ):
        Event.__init__(self, sim)
        if not claims:
            raise SimulationError("a multi-request needs at least one claim")
        seen: set[int] = set()
        for resource, amount in claims:
            if amount <= 0 or amount > resource.capacity:
                raise SimulationError(
                    f"cannot claim {amount} units of a capacity-{resource.capacity} resource"
                )
            if id(resource) in seen:
                raise SimulationError("a multi-request cannot claim a resource twice")
            seen.add(id(resource))
        self.claims = list(claims)
        self.priority = priority
        self.sort_key = (priority, next(_arrival_stamp))
        #: simulated time of the grant (``None`` while pending).
        self.granted_at: Optional[float] = None
        self._released = False
        #: the first resource whose capacity check failed on the last grant
        #: attempt, plus the units claimed on it.  While that resource still
        #: cannot fit the claim, re-checking the other claims is pointless —
        #: the whole set cannot be granted — so grant scans skip this
        #: request with one comparison instead of an O(claims) rescan: the
        #: incremental matching that replaces the O(waiters) rescan per
        #: release.
        self._blocked_on: Optional["Resource"] = None
        self._blocked_amount = 0
        #: granted at construction with no possible waiter: the trigger is
        #: recorded but not queued (the queue pop would be dead weight); the
        #: first add_callback schedules it (see below).
        self._silent = False
        prof = sim.host_prof
        if prof is not None:
            prof.enter("admission")
        for resource, _amount in self.claims:
            resource._enqueue(self)
        self._try_grant(initial=True)
        if prof is not None:
            prof.exit()

    def add_callback(self, callback) -> None:
        if self._silent:
            self._silent = False
            self.sim._schedule(self, 0)  # URGENT, as succeed() would have
        Event.add_callback(self, callback)

    @property
    def granted(self) -> bool:
        return self.granted_at is not None

    def __enter__(self) -> "MultiRequest":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.release()

    def _try_grant(self, initial: bool = False) -> bool:
        """Grant the whole claim set if every resource has capacity now."""
        if self._ok is not None or self._released:
            return False
        for resource, amount in self.claims:
            # Claimed resources can hold no virtual occupancy here: this
            # request's _enqueue materialized them, so _in_use is exact.
            if resource._in_use + amount > resource.capacity:
                self._blocked_on = resource
                self._blocked_amount = amount
                return False
        self._blocked_on = None
        for resource, amount in self.claims:
            resource._in_use += amount
            resource._granted.add(id(self))
            resource._cancel(self)
        self.granted_at = self.sim.now
        if initial:
            # Nobody can hold a reference yet, so no callback can exist:
            # trigger without queueing (add_callback schedules on demand).
            self._ok = True
            self._value = self
            self._silent = True
        else:
            self.succeed(self)
        return True

    def release(self) -> None:
        """Free a granted claim, or withdraw it if still pending."""
        if self._released:
            return
        self._released = True
        if self.granted:
            for resource, amount in self.claims:
                resource._granted.discard(id(self))
                resource._in_use -= amount
            for resource, _amount in self.claims:
                resource._grant()
        else:
            for resource, _amount in self.claims:
                resource._cancel(self)

    def cancel(self) -> None:
        """Withdraw the claim (alias of :meth:`release` for pending requests)."""
        self.release()


class Resource:
    """A counted resource with priority-then-FIFO granting.

    Plain :meth:`request` calls all share priority 0, so the default behaviour
    is pure FIFO.  A waiting single request that does not fit blocks every
    request behind it (strict serialization); a waiting :class:`MultiRequest`
    whose partner resources are busy is skipped so later requests keep the
    resource busy (work conservation).
    """

    __slots__ = (
        "sim",
        "capacity",
        "_in_use",
        "_waiting",
        "_granted",
        "_virtual",
        "_streams",
        "_handles",
        "_joined_at",
        "_cooldown",
    )

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: list[Event] = []
        self._granted: set[int] = set()
        #: active virtual holds (coalesced transfers); ``None`` when unused.
        self._virtual: Optional[list] = None
        #: multi-block transfer streams currently using this resource.  A
        #: coalesced run requires exclusive streams (== 1, itself): two
        #: per-block streams sharing a link interleave in an order set by
        #: event-queue history, which arithmetic cannot reproduce.
        self._streams = 0
        #: convoy-capable stream handles registered here (see net/convoy).
        #: ``len(_handles) < _streams`` means an opaque per-block stream is
        #: also using the link, which bars convoy formation on it.
        self._handles: list = []
        #: simulated time of the last stream registration — the convoy
        #: quiet-gate: a link whose membership changed recently is churning.
        self._joined_at = -1.0
        #: no convoy formation attempt on this link before this time.
        self._cooldown = 0.0

    @property
    def in_use(self) -> int:
        """Units held right now — real grants plus virtual-hold occupancy."""
        virtual = self._virtual
        if not virtual:
            return self._in_use
        now = self.sim._now
        return self._in_use + sum(hold.occupied(now) for hold in virtual)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting right now — real queue entries plus virtual ones.

        A convoy member whose planned admission for the current block has not
        been granted yet occupies a *virtual* queue slot (``hold.queued``),
        exactly as its per-block reservation would sit in ``_waiting``.
        """
        virtual = self._virtual
        if not virtual:
            return len(self._waiting)
        now = self.sim._now
        total = len(self._waiting)
        for hold in virtual:
            queued = getattr(hold, "queued", None)
            if queued is not None:
                total += queued(now)
        return total

    # -- virtual holds ------------------------------------------------------
    def add_virtual_hold(self, hold: Any) -> None:
        """Attach an arithmetic occupancy schedule (see module docstring).

        ``hold`` must expose ``occupied(at) -> int`` and ``on_contest()``;
        the latter is invoked *synchronously, before queue insertion*, the
        first time any request enqueues here, and must convert the schedule
        into real holds (or drop it) and detach itself.
        """
        if self._virtual is None:
            self._virtual = [hold]
        else:
            self._virtual.append(hold)

    def remove_virtual_hold(self, hold: Any) -> None:
        virtual = self._virtual
        if virtual is not None:
            try:
                virtual.remove(hold)
            except ValueError:
                pass

    def _materialize_virtual(self) -> None:
        while self._virtual:
            hold = self._virtual[0]
            hold.on_contest()
            # on_contest must detach the hold; guard against a no-op
            # implementation wedging the loop.
            if self._virtual and self._virtual[0] is hold:  # pragma: no cover
                self._virtual.pop(0)

    # -- queueing -----------------------------------------------------------
    def _enqueue(self, request: Event) -> None:
        """Insert by priority (low first), FIFO within equal priorities."""
        if self._virtual:
            self._materialize_virtual()
        insort(self._waiting, request, key=_queue_key)

    def request(self, amount: int = 1) -> _Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of a capacity-{self.capacity} resource"
            )
        req = _Request(self, amount)
        self._enqueue(req)
        self._grant()
        return req

    def release(self, request: _Request) -> None:
        if id(request) in self._granted:
            self._granted.discard(id(request))
            self._in_use -= request.amount
            self._grant()
        else:
            self._cancel(request)

    def _cancel(self, request: Event) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        prof = self.sim.host_prof
        if prof is not None:
            prof.enter("admission")
        waiting = self._waiting
        capacity = self.capacity
        index = 0
        while index < len(waiting):
            if self._in_use >= capacity:
                # Saturated: nothing below can be granted (a multi-request's
                # _try_grant would fail on this resource too).  Triggered
                # leftovers, if any, are purged by later scans.
                break
            req = waiting[index]
            if req._ok is not None:
                del waiting[index]
                continue
            if req.is_multi:
                # A successful grant removes the request from this queue (do
                # not advance); a failed match is skipped rather than blocking
                # the queue — the matching-based admission discipline.  A
                # request whose recorded blocker still cannot fit its claim
                # is skipped with one comparison (the blocker's state is the
                # only thing that could have unblocked it).
                blocked_on = req._blocked_on
                if (
                    blocked_on is not None
                    and blocked_on._in_use + req._blocked_amount > blocked_on.capacity
                ):
                    index += 1
                elif not req._try_grant():
                    index += 1
                continue
            if self._in_use + req.amount > capacity:
                # Strict FIFO for single requests: nothing behind a blocked
                # single request is granted (MultiRequests included — they
                # will be retried by their other resources' grant scans, and
                # by this one once the blocked head is granted).
                break
            del waiting[index]
            self._in_use += req.amount
            self._granted.add(id(req))
            req.succeed(req)
        if prof is not None:
            prof.exit()


class PriorityResource(Resource):
    """A resource whose queue is ordered by a numeric priority (low first)."""

    __slots__ = ()

    def request(self, amount: int = 1, priority: int = 0) -> _Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of a capacity-{self.capacity} resource"
            )
        req = _Request(self, amount, priority)
        self._enqueue(req)
        self._grant()
        return req


class Container:
    """A continuous quantity with blocking ``get``/``put``."""

    __slots__ = ("sim", "capacity", "level", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise SimulationError("initial level must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """A FIFO store of items with blocking ``get``.

    ``get`` optionally takes a filter predicate; the first matching item is
    returned.  This is the message-channel primitive used throughout the
    network and control-plane code.

    Between calls the store is *stable*: no waiting getter matches any
    present item.  Each mutation therefore only has to settle the pairs it
    newly created — a fresh item against the waiting getters (FIFO), a fresh
    getter against the present items (FIFO), and any putters admitted by
    freed capacity — instead of rescanning every getter against every item.
    """

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((event, item))
        self._drain_putters()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        event = Event(self.sim)
        items = self.items
        if predicate is None:
            if items:
                event.succeed(items.popleft())
                self._drain_putters()
            else:
                self._getters.append((event, None))
            return event
        for index, item in enumerate(items):
            if predicate(item):
                del items[index]
                event.succeed(item)
                self._drain_putters()
                return event
        self._getters.append((event, predicate))
        return event

    def _drain_putters(self) -> None:
        """Admit queued puts while capacity allows; offer each new item once."""
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            event.succeed()
            if not self._offer(item):
                self.items.append(item)

    def _offer(self, item: Any) -> bool:
        """Hand a newly admitted item to the first waiting getter it matches."""
        for index, (event, predicate) in enumerate(self._getters):
            if predicate is None or predicate(item):
                del self._getters[index]
                event.succeed(item)
                return True
        return False
