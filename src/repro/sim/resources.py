"""Shared resources for simulation processes.

Four primitives cover everything the higher layers need:

* :class:`Resource` — a counted resource (e.g. a worker pool slot, a NIC
  transmit slot).  Requests queue FIFO and are granted as capacity frees up.
* :class:`MultiRequest` — a cancellable claim on *several* resources at once,
  granted atomically only when every resource has capacity simultaneously.
  Unlike single requests, a pending multi-request never blocks the requests
  behind it: the grant scan skips it until its whole claim set is free.  This
  is the admission primitive behind the flow-scheduled transport
  (:mod:`repro.net.flowsched`) — it removes the hold-one-wait-for-the-other
  head-of-line blocking of sequential acquisition, and it cannot deadlock
  because it never holds a partial claim.
* :class:`Container` — a continuous quantity (e.g. bytes of store memory)
  with blocking ``get``/``put``.
* :class:`Store` — a FIFO queue of Python objects with blocking ``get`` and
  optional filtering, used for message channels between processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.sim.core import Event, SimulationError, Simulator


class _Request(Event):
    """A pending claim on a resource; usable as a context manager."""

    def __init__(self, resource: "Resource", amount: int = 1, priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.amount = amount
        self.priority = priority

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class MultiRequest(Event):
    """A cancellable claim on several resources, granted atomically.

    ``claims`` is a sequence of ``(resource, amount)`` pairs.  The request
    enqueues on every claimed resource (ordered by ``priority``, FIFO within
    equal priorities) and is granted only at an instant when *all* claims fit
    — it never holds one resource while waiting for another, so a set of
    multi-requests cannot deadlock, and a busy partner resource never parks
    the claimed capacity idle.

    Usable as a context manager like a single request; ``release`` frees a
    granted claim or withdraws a pending one.
    """

    def __init__(
        self,
        sim: Simulator,
        claims: Sequence[tuple["Resource", int]],
        priority: int = 0,
    ):
        super().__init__(sim)
        if not claims:
            raise SimulationError("a multi-request needs at least one claim")
        seen: set[int] = set()
        for resource, amount in claims:
            if amount <= 0 or amount > resource.capacity:
                raise SimulationError(
                    f"cannot claim {amount} units of a capacity-{resource.capacity} resource"
                )
            if id(resource) in seen:
                raise SimulationError("a multi-request cannot claim a resource twice")
            seen.add(id(resource))
        self.claims = list(claims)
        self.priority = priority
        #: simulated time of the grant (``None`` while pending).
        self.granted_at: Optional[float] = None
        self._released = False
        for resource, _amount in self.claims:
            resource._enqueue(self)
        self._try_grant()

    @property
    def granted(self) -> bool:
        return self.granted_at is not None

    def __enter__(self) -> "MultiRequest":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.release()

    def _try_grant(self) -> bool:
        """Grant the whole claim set if every resource has capacity now."""
        if self.triggered or self._released:
            return False
        for resource, amount in self.claims:
            if resource.in_use + amount > resource.capacity:
                return False
        for resource, amount in self.claims:
            resource.in_use += amount
            resource._granted.add(id(self))
            resource._cancel(self)
        self.granted_at = self.sim.now
        self.succeed(self)
        return True

    def release(self) -> None:
        """Free a granted claim, or withdraw it if still pending."""
        if self._released:
            return
        self._released = True
        if self.granted:
            for resource, amount in self.claims:
                resource._granted.discard(id(self))
                resource.in_use -= amount
            for resource, _amount in self.claims:
                resource._grant()
        else:
            for resource, _amount in self.claims:
                resource._cancel(self)

    def cancel(self) -> None:
        """Withdraw the claim (alias of :meth:`release` for pending requests)."""
        self.release()


class Resource:
    """A counted resource with priority-then-FIFO granting.

    Plain :meth:`request` calls all share priority 0, so the default behaviour
    is pure FIFO.  A waiting single request that does not fit blocks every
    request behind it (strict serialization); a waiting :class:`MultiRequest`
    whose partner resources are busy is skipped so later requests keep the
    resource busy (work conservation).
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiting: list[Event] = []
        self._granted: set[int] = set()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def _enqueue(self, request: Event) -> None:
        """Insert by priority (low first), FIFO within equal priorities."""
        priority = request.priority
        for index, waiting in enumerate(self._waiting):
            if priority < waiting.priority:
                self._waiting.insert(index, request)
                return
        self._waiting.append(request)

    def request(self, amount: int = 1) -> _Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of a capacity-{self.capacity} resource"
            )
        req = _Request(self, amount)
        self._enqueue(req)
        self._grant()
        return req

    def release(self, request: _Request) -> None:
        if id(request) in self._granted:
            self._granted.discard(id(request))
            self.in_use -= request.amount
            self._grant()
        else:
            self._cancel(request)

    def _cancel(self, request: Event) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        index = 0
        while index < len(self._waiting):
            req = self._waiting[index]
            if req.triggered:
                del self._waiting[index]
                continue
            if isinstance(req, MultiRequest):
                # A successful grant removes the request from this queue (do
                # not advance); a failed match is skipped rather than blocking
                # the queue — the matching-based admission discipline.
                if not req._try_grant():
                    index += 1
                continue
            if self.in_use + req.amount > self.capacity:
                # Strict FIFO for single requests: nothing behind a blocked
                # single request is granted (MultiRequests included — they
                # will be retried by their other resources' grant scans, and
                # by this one once the blocked head is granted).
                break
            del self._waiting[index]
            self.in_use += req.amount
            self._granted.add(id(req))
            req.succeed(req)


class PriorityResource(Resource):
    """A resource whose queue is ordered by a numeric priority (low first)."""

    def request(self, amount: int = 1, priority: int = 0) -> _Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of a capacity-{self.capacity} resource"
            )
        req = _Request(self, amount, priority)
        self._enqueue(req)
        self._grant()
        return req


class Container:
    """A continuous quantity with blocking ``get``/``put``."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise SimulationError("initial level must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """A FIFO store of items with blocking ``get``.

    ``get`` optionally takes a filter predicate; the first matching item is
    returned.  This is the message-channel primitive used throughout the
    network and control-plane code.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        event = Event(self.sim)
        self._getters.append((event, predicate))
        self._settle()
        return event

    def _settle(self) -> None:
        # Admit queued puts while there is capacity.
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
        # Satisfy getters, respecting their predicates, in FIFO order.
        satisfied = True
        while satisfied and self._getters and self.items:
            satisfied = False
            for g_index, (event, predicate) in enumerate(self._getters):
                match_index = None
                if predicate is None:
                    match_index = 0
                else:
                    for i_index, item in enumerate(self.items):
                        if predicate(item):
                            match_index = i_index
                            break
                if match_index is not None:
                    item = self.items[match_index]
                    del self.items[match_index]
                    del self._getters[g_index]
                    event.succeed(item)
                    satisfied = True
                    break
        # Freed capacity may admit more putters.
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
