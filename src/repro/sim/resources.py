"""Shared resources for simulation processes.

Three primitives cover everything the higher layers need:

* :class:`Resource` — a counted resource (e.g. a worker pool slot, a NIC
  transmit slot).  Requests queue FIFO and are granted as capacity frees up.
* :class:`Container` — a continuous quantity (e.g. bytes of store memory)
  with blocking ``get``/``put``.
* :class:`Store` — a FIFO queue of Python objects with blocking ``get`` and
  optional filtering, used for message channels between processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.core import Event, SimulationError, Simulator


class _Request(Event):
    """A pending claim on a resource; usable as a context manager."""

    def __init__(self, resource: "Resource", amount: int = 1, priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.amount = amount
        self.priority = priority

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiting: deque[_Request] = deque()
        self._granted: set[int] = set()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, amount: int = 1) -> _Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of a capacity-{self.capacity} resource"
            )
        req = _Request(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request: _Request) -> None:
        if id(request) in self._granted:
            self._granted.discard(id(request))
            self.in_use -= request.amount
            self._grant()
        else:
            self._cancel(request)

    def _cancel(self, request: _Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._waiting:
            head = self._waiting[0]
            if head.triggered:
                self._waiting.popleft()
                continue
            if self.in_use + head.amount > self.capacity:
                break
            self._waiting.popleft()
            self.in_use += head.amount
            self._granted.add(id(head))
            head.succeed(head)


class PriorityResource(Resource):
    """A resource whose queue is ordered by a numeric priority (low first)."""

    def request(self, amount: int = 1, priority: int = 0) -> _Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of a capacity-{self.capacity} resource"
            )
        req = _Request(self, amount, priority)
        inserted = False
        for index, waiting in enumerate(self._waiting):
            if priority < waiting.priority:
                self._waiting.insert(index, req)
                inserted = True
                break
        if not inserted:
            self._waiting.append(req)
        self._grant()
        return req


class Container:
    """A continuous quantity with blocking ``get``/``put``."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise SimulationError("initial level must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """A FIFO store of items with blocking ``get``.

    ``get`` optionally takes a filter predicate; the first matching item is
    returned.  This is the message-channel primitive used throughout the
    network and control-plane code.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        event = Event(self.sim)
        self._getters.append((event, predicate))
        self._settle()
        return event

    def _settle(self) -> None:
        # Admit queued puts while there is capacity.
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
        # Satisfy getters, respecting their predicates, in FIFO order.
        satisfied = True
        while satisfied and self._getters and self.items:
            satisfied = False
            for g_index, (event, predicate) in enumerate(self._getters):
                match_index = None
                if predicate is None:
                    match_index = 0
                else:
                    for i_index, item in enumerate(self.items):
                        if predicate(item):
                            match_index = i_index
                            break
                if match_index is not None:
                    item = self.items[match_index]
                    del self.items[match_index]
                    del self._getters[g_index]
                    event.succeed(item)
                    satisfied = True
                    break
        # Freed capacity may admit more putters.
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()
