"""Convoy coalescing: arithmetic simulation of saturated contended links.

PR 5's :mod:`repro.net.coalesce` made *stream-exclusive* links O(1): a lone
flow's block schedule on an idle path is a closed-form recurrence, so one
event replaces thousands.  This module extends the same idea to *saturated
contended* links: a lockstep group of flows sharing one bottleneck link (a
reduce tree's fan-in on the parent downlink, several pulls draining one
source uplink, Puts queued on one memcpy channel) has deterministic,
periodic queue state — so the whole group can be advanced arithmetically
as one *convoy*.

Model
-----

A :class:`ConvoyDomain` owns a *closed* group of streams sharing exactly one
contended, capacity-1 bottleneck link ``B``; every member's other claimed
links must be member-exclusive.  Under that shape the kernel's admission
algorithm degenerates to strict head-of-queue FIFO on ``B`` (the head's
partner links are always free at grant instants), so a mini discrete-event
planner (:func:`_plan`) can replay it exactly — release-triggered grants,
priority-then-FIFO queue order, per-block gate times from source schedules,
the same left-associated float arithmetic — over every member's remaining
blocks.  Each member then runs as a :class:`ConvoyRun` (a
:class:`~repro.net.coalesce.CoalescedRun` with injected boundaries): O(1)
kernel events, virtual holds *and virtual queue slots* for exact occupancy
probes, an :class:`~repro.net.coalesce.InflightSchedule` on its destination
entry, and per-block-exact link accounting.

The plan is valid precisely until the first *unplanned* action touches the
domain: a new stream enqueues on a domain link, a member endpoint fails, a
consumer opts out of arithmetic marks (``decoalesce``), or a schedule
feeding a member gate is truncated.  Any of these *materializes the whole
domain* at the current boundary — every member re-splits to per-block
granularity, and members whose planned admission was already issued are
re-inserted into the real queues (ahead of the disturbing request, exactly
where their per-block reservations would have been) — so per-block
behaviour is reproduced bit-for-bit from that instant.

Formation is *gated and tie-refusing*: a domain only forms when every
stream on the bottleneck is convoy-capable, the link has been quiet for a
couple of block times, and the planned event sequence contains no
same-instant collisions outside the canonical release-then-grant frame
(same-timestamp collisions resolve by event-queue history, which arithmetic
must not guess at).  Any refusal is safe — the per-block path is the
definition of correct — and sets a cooldown so the attempt itself stays
cheap.  Workloads whose membership churns faster than blocks complete
(e.g. a windowed allgather) never form domains; an alltoall, whose flows
contend on *two* links at once (uplink and downlink), is refused by the
single-bottleneck test in O(links) per attempt.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from itertools import count
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.net.coalesce import (
    CoalescedRun,
    InflightSchedule,
    _VIRTUAL,
    ready_time_of,
)
from repro.net.fastpath import stats_for
from repro.net.flowsched import (
    PHASE_ADMIT,
    PHASE_GATE,
    PHASE_LAT,
    PHASE_RUN,
    PHASE_TOP,
    PHASE_TX,
    Reservation,
    path_latency,
    path_transmission_time,
)
from repro.sim.resources import _Request, _arrival_stamp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.config import NetworkConfig
    from repro.net.flowsched import Flow, LinkScheduler
    from repro.net.node import Node
    from repro.sim.core import Event, Simulator
    from repro.sim.resources import Resource
    from repro.store.object_store import StoredObject

#: Global kill switch (mirrors ``coalesce.ENABLED``): when False, domains
#: never form and every transfer takes the per-block path.  The differential
#: fuzz harness (repro/bench/fuzz.py) flips this to prove bit-exactness.
ENABLED = True

#: Stream phases stamped on a :class:`StreamHandle` by its transfer loop
#: (canonical values live in :mod:`repro.net.flowsched`, below this module
#: in the import graph).  Formation reads them to reconstruct each member's
#: exact kernel state.
TOP = PHASE_TOP  #: at the top of its block loop
GATE = PHASE_GATE  #: parked on the source entry's ``wait_for_blocks``
ADMIT = PHASE_ADMIT  #: reservation/request queued, not granted
TX = PHASE_TX  #: holding its links until ``tx_end``
LAT = PHASE_LAT  #: links released, block arrives at ``arr_at``
RUN = PHASE_RUN  #: driving a coalesced/convoy run

# Observability counters live per cluster (``cluster.fastpath_stats``,
# :class:`repro.net.fastpath.FastpathStats`) — surfaced by
# ``benchmarks/bench_perf.py`` and the observability plane.  They used to
# be a module-global dict here, which leaked across scenarios in one
# process; :func:`repro.net.fastpath.stats_for` is the only access path.


#: quiet gate: the bottleneck's stream set must be unchanged for this many
#: next-block transmission times before a convoy may form over it.
_QUIET_TX = 2.0
#: cooldown stamped on every domain link after a refused plan or a
#: materialization, in next-block transmission times.
_COOLDOWN_TX = 4.0
#: minimum total planned blocks for a plan to be worth the formation cost.
_MIN_PLANNED = 6


class StreamHandle:
    """Identity card of one convoy-capable block-transfer stream.

    Created by the multi-block loops (broadcast pulls, reduce partial
    streams, pipelined Put copy-ins) and passed to
    :func:`~repro.net.coalesce.register_stream`, which exposes it on every
    claimed link.  The loop keeps ``phase`` (and the matching timestamps)
    current at every parking point, so convoy formation can read the exact
    kernel state of every stream sharing a contended link without walking
    the event queue.
    """

    __slots__ = (
        "kind",
        "config",
        "src",
        "dst",
        "flow",
        "links",
        "entry",
        "source_entry",
        "account_out",
        "account_in",
        "phase",
        "reservation",
        "request",
        "gate_event",
        "tx_end",
        "arr_at",
        "adopted_run",
        "preplaced",
        "poked",
    )

    def __init__(
        self,
        kind: str,
        config: "NetworkConfig",
        src: "Node",
        dst: "Node",
        flow: Optional["Flow"],
        links: Sequence[tuple["Resource", Optional["LinkScheduler"]]],
        entry: "StoredObject",
        source_entry: Optional["StoredObject"] = None,
        account_out: Optional[Callable[[int], None]] = None,
        account_in: Optional[Callable[[int], None]] = None,
    ):
        #: ``"nic"`` (reservation over a NIC path) or ``"copy"`` (a single
        #: capacity-1 memcpy channel, zero latency, same-frame reissue).
        self.kind = kind
        self.config = config
        self.src = src
        self.dst = dst
        self.flow = flow
        self.links = list(links)
        self.entry = entry
        self.source_entry = source_entry
        self.account_out = account_out
        self.account_in = account_in
        self.phase = TOP
        self.reservation: Optional[Reservation] = None
        self.request: Optional[_Request] = None
        self.gate_event: Optional["Event"] = None
        self.tx_end = 0.0
        self.arr_at = 0.0
        #: run handed to this stream by a formation it did not initiate; the
        #: loop drives it at its next top-of-loop.
        self.adopted_run: Optional["ConvoyRun"] = None
        #: reservation/request re-inserted into the real queues for this
        #: stream by a domain materialization; consumed by the next
        #: ``transfer_block`` / ``local_copy_block`` instead of a fresh one.
        self.preplaced = None
        #: set when formation withdrew this stream's parked gate/admission;
        #: the loop clears it and re-enters its top to adopt the run.
        self.poked = False

    # -- planning inputs ---------------------------------------------------
    def next_block(self) -> int:
        return self.entry.blocks_ready

    def num_blocks(self) -> int:
        return self.entry.num_blocks

    def block_size(self, index: int) -> int:
        return self.config.block_bytes(self.entry.size, index)

    def block_tx(self, nbytes: int) -> float:
        if self.kind == "copy":
            return self.config.memcpy_time(nbytes)
        return path_transmission_time(self.config, self.src, self.dst, nbytes)

    def latency(self) -> float:
        if self.kind == "copy":
            return 0.0
        return path_latency(self.config, self.src, self.dst)


class ConvoyRun(CoalescedRun):
    """One member's share of a convoy plan.

    A :class:`~repro.net.coalesce.CoalescedRun` whose boundaries were
    injected by the domain planner instead of derived from an exclusive
    recurrence.  Two extensions: a virtual *queue* slot (``queued``) so
    ``Resource.queue_length`` sees the member's planned-but-ungranted
    admission exactly as its per-block reservation would appear in
    ``_waiting``, and domain-routed disturbance handling — one member's plan
    is only valid while every member's is, so any contest or unwind
    materializes the whole domain.
    """

    __slots__ = ("domain", "handle", "q", "q0_at_formation")

    #: convoy work shows up under its own blame category, not "coalesce".
    _prof_cat = "convoy"

    def __init__(self, *args, **kwargs):
        CoalescedRun.__init__(self, *args, **kwargs)
        self.domain: Optional["ConvoyDomain"] = None
        self.handle: Optional[StreamHandle] = None
        #: planned issue instant of each block's admission request.
        self.q: list[float] = []
        #: whether block 0's request was already real at formation time (an
        #: admitted-and-queued member, or the initiator joining a busy
        #: queue) — those re-enter the queue ahead of a same-instant
        #: disturber at materialization, later issues do not.
        self.q0_at_formation = False

    def queued(self, at: float) -> int:
        if self.state != _VIRTUAL:
            return 0
        i = bisect_right(self.q, at) - 1
        if i < 0 or i >= self.n:
            return 0
        return 1 if at < self.s[i] else 0

    def _materialize(self) -> None:
        domain = self.domain
        if domain is not None:
            domain.materialize_all()
        else:  # pragma: no cover - defensive (a run always has its domain)
            self._materialize_self()

    def _on_unwind(self) -> None:
        # The owning process was interrupted mid-plan: every other member's
        # plan assumed this stream's future issues, so the whole domain goes
        # per-block.  No preplacement for the dying stream — its per-block
        # teardown would never re-issue.
        domain = self.domain
        if domain is not None:
            domain.materialize_all(skip_preplace=self)


class _Member:
    """Planner-internal view of one stream: inputs, mode, and outputs."""

    __slots__ = (
        "handle",
        "start",
        "sizes",
        "tx",
        "gates",
        "latency",
        "copy",
        "mode",
        "key",
        "lead_release",
        "lead_arr",
        "first_issue",
        "src_schedule",
        "s",
        "e",
        "arr",
        "q",
        "n",
        "run",
    )

    def __init__(self, handle: StreamHandle):
        self.handle = handle
        self.start = 0
        self.sizes: list[int] = []
        self.tx: list[float] = []
        self.gates: list[float] = []
        self.latency = 0.0
        self.copy = handle.kind == "copy"
        #: "queue" (admitted, waiting), "issue" (first request at a known
        #: future instant), "lead_tx"/"lead_lat" (a real block in flight,
        #: plan covers the blocks after it), "passive" (no planned blocks).
        self.mode = "passive"
        self.key: tuple = ()
        self.lead_release = 0.0
        self.lead_arr = 0.0
        self.first_issue = 0.0
        self.src_schedule: Optional[InflightSchedule] = None
        self.s: list[float] = []
        self.e: list[float] = []
        self.arr: list[float] = []
        self.q: list[float] = []
        self.n = 0
        self.run: Optional[ConvoyRun] = None


def _plan(t0: float, members: list["_Member"]) -> bool:
    """Replay FIFO admission on the bottleneck over every planned block.

    Fills each member's ``s``/``e``/``arr``/``q`` arrays with the exact
    grant/release/arrival/issue instants its per-block chain would produce.
    Returns False — *refuse formation* — on any same-instant event collision
    outside the canonical release frame: equal-time events resolve by
    event-queue history, which the plan must not guess at.
    """
    import heapq

    heap: list[tuple[float, int, int, _Member]] = []  # (time, seq, kind, m)
    seq = 0
    _RELEASE, _ISSUE = 0, 1
    busy = False
    # Admission queue: (priority, order, member).  Initial admitted members
    # keep the relative order of their real sort keys; every later issue
    # draws a larger order, exactly like the global arrival stamp.
    initial = sorted((m for m in members if m.mode == "queue"), key=lambda m: m.key)
    order = count(len(initial))
    queue: list[tuple[int, int, _Member]] = [
        (m.key[0], rank, m) for rank, m in enumerate(initial)
    ]
    for m in initial:
        m.q.append(t0)

    for m in members:
        if m.mode == "issue":
            heapq.heappush(heap, (m.first_issue, seq, _ISSUE, m))
            seq += 1
        elif m.mode in ("lead_tx", "passive"):
            if m.mode == "lead_tx" or m.lead_release > 0.0:
                busy = True
                heapq.heappush(heap, (m.lead_release, seq, _RELEASE, m))
                seq += 1
        elif m.mode == "lead_lat":
            heapq.heappush(heap, (m.first_issue, seq, _ISSUE, m))
            seq += 1

    def grant(m: _Member, t: float) -> None:
        nonlocal busy, seq
        j = len(m.s)
        m.s.append(t)
        end = t + m.tx[j]
        m.e.append(end)
        m.arr.append(end if m.copy else end + m.latency)
        busy = True
        heapq.heappush(heap, (end, seq, _RELEASE, m))
        seq += 1

    def issue(m: _Member, t: float) -> None:
        m.q.append(t)
        if busy:
            insort(queue, (m.key[0] if m.key else _priority(m.handle), next(order), m))
        else:
            grant(m, t)

    while heap:
        t, _, kind, m = heapq.heappop(heap)
        if heap and heap[0][0] == t:
            return False  # tie: ordering would be event-queue history
        if kind == _ISSUE:
            issue(m, t)
            continue
        # RELEASE frame, replayed atomically in kernel order: the release's
        # grant scan admits the queue head first; a zero-latency (memcpy)
        # member then re-issues in the same frame, joining the queue back.
        busy = False
        if queue:
            _, _, head = queue.pop(0)
            grant(head, t)
        granted = len(m.s)
        issued = len(m.q)
        if m.mode == "lead_tx" and granted == 0 and issued == 0:
            # The real in-flight block just released; the plan's first block
            # issues at its arrival (or the gate, if later).
            if m.n:
                nxt = m.gates[0]
                if nxt <= m.lead_arr:
                    nxt = m.lead_arr
                heapq.heappush(heap, (nxt, seq, _ISSUE, m))
                seq += 1
            continue
        if m.mode == "passive":
            continue
        if issued < m.n:
            gate = m.gates[issued]
            if m.copy:
                if gate <= t:
                    issue(m, t)
                else:
                    heapq.heappush(heap, (gate, seq, _ISSUE, m))
                    seq += 1
            else:
                arr_prev = m.arr[granted - 1]
                nxt = arr_prev if gate <= arr_prev else gate
                heapq.heappush(heap, (nxt, seq, _ISSUE, m))
                seq += 1

    if queue:  # pragma: no cover - defensive: every release grants a head
        return False
    for m in members:
        if m.mode != "passive" and (len(m.s) != m.n or len(m.q) != m.n):
            return False  # pragma: no cover - defensive
    return True


def _priority(handle: StreamHandle) -> int:
    if handle.kind == "copy":
        return 0
    flow = handle.flow
    return int(flow.flow_class) if flow is not None else 0


class ConvoyDomain:
    """The shared fate of one convoy: members, links, and materialization."""

    __slots__ = (
        "sim",
        "bottleneck",
        "links",
        "runs",
        "formed_at",
        "cooldown",
        "dead",
        "stamp_fence",
    )

    def __init__(self, sim: "Simulator", bottleneck: "Resource", cooldown: float):
        self.sim = sim
        self.bottleneck = bottleneck
        #: every resource any member claims (deduplicated), for cooldowns.
        self.links: list["Resource"] = []
        self.runs: list[ConvoyRun] = []
        self.formed_at = sim._now
        self.cooldown = cooldown
        self.dead = False
        #: arrival stamp drawn at formation: every request issued after the
        #: domain formed (any future disturber included) carries a larger
        #: stamp, so preplaced members synthesize keys below this fence.
        self.stamp_fence = next(_arrival_stamp)

    def _attach_member(self, run: ConvoyRun, lead_arr: Optional[float]) -> None:
        """Everything ``CoalescedRun._attach`` does, plus the lead window.

        A member with a real block still in flight at formation time gets an
        arrival schedule that *starts one block early* (``base - 1`` with the
        real block's arrival prepended), so consumers reading
        ``blocks_ready`` / ``wait_for_blocks`` during the lead window see
        exact values; the run itself still owns only the planned blocks.
        """
        cluster = run.src.cluster
        if cluster is not None:
            if cluster.obs is not None:
                cluster.obs.record_run_start(run)
            if cluster.flight is not None and run.src is not run.dst:
                run._flight = cluster.flight
                run._flight_key = f"n{run.src.node_id}>n{run.dst.node_id}"
                run._flight_flow = (
                    run.flow.flow_id if run.flow is not None else "untagged"
                )
        for resource, _sched in run.links:
            resource.add_virtual_hold(run)
        run.src.on_failure(run._on_peer_failure)
        if run.dst is not run.src:
            run.dst.on_failure(run._on_peer_failure)
        run._listening = True
        if run.entry is not None:
            if lead_arr is None:
                schedule = InflightSchedule(run.entry, run.base, run.arr, run)
            else:
                schedule = InflightSchedule(
                    run.entry, run.base - 1, [lead_arr] + run.arr, run
                )
            run.schedule = schedule
            run.entry._begin_inflight(schedule)
        if run.src_schedule is not None:
            run.src_schedule.dependents.append(run)
        run.preattached = True

    def materialize_all(self, skip_preplace: Optional[ConvoyRun] = None) -> None:
        """Re-split every member at the current boundary, exactly.

        Three-stage, all synchronous (it runs *inside* the disturbing frame,
        before e.g. a new request's queue insertion):

        1. every member run re-splits (virtual holds -> synthetic real holds
           for the member mid-transmission, schedules truncate, sleepers
           wake) — after this the links' ``_in_use`` is real and exact;
        2. members whose planned admission was already issued but not yet
           granted re-enter the real queues *now*, in plan order, with
           synthesized sort keys that sort before any later-stamped request
           (in particular before the disturbing one, whose stamp was drawn
           before this materialization ran) — exactly where their per-block
           reservations would have been sitting;
        3. every domain link gets a formation cooldown, so the freed
           per-block streams do not re-plan block by block.
        """
        if self.dead:
            return
        self.dead = True
        if self.runs:
            lead = self.runs[0]
            stats_for(lead.src).bump("materializations")
            cluster = lead.src.cluster
            if cluster is not None and cluster.flight is not None:
                cluster.flight.phase(
                    f"n{lead.src.node_id}>n{lead.dst.node_id}",
                    f"convoy_materialize/{len(self.runs)}",
                )
        now = self.sim._now
        runs = self.runs
        for run in runs:
            run._materialize_self()
        pending: list[tuple[float, int, ConvoyRun]] = []
        for run in runs:
            if run is skip_preplace or run.handle is None:
                continue
            q = run.q
            i = bisect_right(q, now) - 1
            if i < 0 or i >= len(run.s) or now >= run.s[i]:
                continue
            if q[i] == now and not (i == 0 and run.q0_at_formation):
                # A planned issue exactly at the disturbance instant has not
                # happened yet in the per-block world; the member re-issues
                # after the disturber, through its ordinary loop.
                continue
            pending.append((run.s[i], i, run))
        if pending:
            pending.sort(key=lambda item: item[0])
            fence = self.stamp_fence - 1
            denom = len(pending) + 1
            for rank, (_, i, run) in enumerate(pending):
                handle = run.handle
                nbytes = handle.block_size(run.base + i)
                synth = fence + (rank + 1) / denom
                if handle.kind == "copy":
                    req = _Request(self.bottleneck, 1, 0)
                    req.sort_key = (0, synth)
                    self.bottleneck._enqueue(req)
                    handle.preplaced = req
                else:
                    reservation = Reservation(
                        handle.src, handle.dst, nbytes, handle.flow
                    )
                    reservation.request.sort_key = (
                        reservation.request.priority,
                        synth,
                    )
                    handle.preplaced = reservation
        for resource in self.links:
            stamp = now + self.cooldown
            if stamp > resource._cooldown:
                resource._cooldown = stamp


def maybe_form(handle: StreamHandle, block_index: int) -> Optional[ConvoyRun]:
    """Try to form a convoy over ``handle``'s one contended link.

    Called by a stream at the top of its block loop after the exclusive
    fast path (:func:`~repro.net.coalesce.coalesce_eligible`) declined.
    Returns the initiator's :class:`ConvoyRun` to drive, or ``None``.  The
    cheap refusals (no single bottleneck, cooldown, churn) cost O(links);
    only a plausible lockstep group pays for validation and planning, and a
    refused plan stamps a cooldown so per-block retries short-circuit.
    """
    prof = handle.src.sim.host_prof
    if prof is None:
        return _maybe_form(handle, block_index)
    # The body has many early returns; the try/finally keeps the region
    # balanced on every one of them.
    prof.enter("convoy")
    try:
        return _maybe_form(handle, block_index)
    finally:
        prof.exit()


def _maybe_form(handle: StreamHandle, block_index: int) -> Optional[ConvoyRun]:
    if not ENABLED:
        return None
    sim = handle.src.sim
    now = sim._now
    bottleneck = None
    bneck_sched = None
    for resource, sched in handle.links:
        if resource._streams > 1:
            if bottleneck is not None:
                return None  # two contended links (alltoall shape): refuse
            bottleneck = resource
            bneck_sched = sched
    if bottleneck is None or bottleneck.capacity != 1:
        return None
    if bottleneck._cooldown > now:
        return None
    if bneck_sched is not None:
        handles = bneck_sched.lockstep_candidates()
        if handles is None:
            return None  # an opaque (handle-less) stream shares the link
    else:  # memcpy channels have no LinkScheduler
        handles = bottleneck._handles
        if len(handles) != bottleneck._streams or len(handles) < 2:
            return None
    if handle.entry._no_coalesce or handle.entry._inflight is not None:
        return None
    sizes0 = handle.block_size(block_index)
    tx0 = handle.block_tx(sizes0)
    if now - bottleneck._joined_at < _QUIET_TX * tx0:
        return None  # membership still churning
    cooldown = _COOLDOWN_TX * tx0

    plan = _build_members(handle, handles, bottleneck, now)
    if plan is None:
        stats_for(handle.src).bump("refusals")
        bottleneck._cooldown = now + cooldown
        return None
    members, total_blocks = plan
    if total_blocks < _MIN_PLANNED:
        stats_for(handle.src).bump("refusals")
        bottleneck._cooldown = now + cooldown
        return None
    if not _plan(now, members):
        stats_for(handle.src).bump("refusals")
        bottleneck._cooldown = now + cooldown
        return None

    domain = ConvoyDomain(sim, bottleneck, cooldown)
    seen: set[int] = set()
    for m in members:
        for resource, _sched in m.handle.links:
            if id(resource) not in seen:
                seen.add(id(resource))
                domain.links.append(resource)

    initiator_run: Optional[ConvoyRun] = None
    actives = [m for m in members if m.mode != "passive"]
    for m in actives:
        h = m.handle
        run = ConvoyRun(
            sim,
            h.src,
            h.dst,
            h.flow,
            m.sizes,
            m.tx,
            m.latency,
            h.links,
            entry=h.entry,
            base=m.start,
            account_out=h.account_out,
            account_in=h.account_in,
            boundaries=(m.s, m.e, m.arr),
            src_schedule=m.src_schedule,
        )
        run.domain = domain
        run.handle = h
        run.q = m.q
        run.q0_at_formation = m.mode == "queue" or (
            h is handle and m.q and m.q[0] == now and m.s[0] > now
        )
        m.run = run
        domain.runs.append(run)
    # Cancel the admitted members' real requests before attaching anything:
    # the virtual queue slots replace them one-for-one.
    admitted = sorted(
        (m for m in actives if m.mode == "queue"), key=lambda m: m.key
    )
    for m in admitted:
        h = m.handle
        if h.kind == "copy":
            h.request.cancel()
        else:
            h.reservation.request.release()
    for m in actives:
        lead_arr = m.lead_arr if m.mode in ("lead_tx", "lead_lat") else None
        domain._attach_member(m.run, lead_arr)
        if m.handle is not handle:
            m.handle.adopted_run = m.run
        else:
            initiator_run = m.run
    # Wake the parked members (queue order first, then gates); each resumes,
    # sees ``poked``, and re-enters its loop top to adopt its run.
    for m in admitted:
        h = m.handle
        h.poked = True
        if h.kind == "copy":
            h.request.succeed(h.request)
        else:
            h.reservation.request.succeed(h.reservation.request)
    for m in actives:
        h = m.handle
        if m.mode == "issue" and h.phase == GATE:
            h.poked = True
            if h.gate_event is not None and not h.gate_event.triggered:
                h.gate_event.succeed(None)
    stats = stats_for(handle.src)
    stats.bump("domains_formed")
    stats.bump("members_enrolled", len(actives))
    stats.bump("blocks_planned", total_blocks)
    cluster = handle.src.cluster
    if cluster is not None and cluster.flight is not None:
        cluster.flight.phase(
            f"n{handle.src.node_id}>n{handle.dst.node_id}",
            f"convoy_form/{len(actives)}/{total_blocks}",
        )
    return initiator_run


def _build_members(
    initiator: StreamHandle,
    handles: list,
    bottleneck: "Resource",
    now: float,
) -> Optional[tuple[list[_Member], int]]:
    """Validate the lockstep group and derive every member's plan inputs.

    Returns ``None`` — refuse — whenever any stream's state is not one of
    the exactly-reconstructible parking shapes, any non-bottleneck link is
    not member-exclusive, or any queue/hold on the bottleneck cannot be
    identity-matched to a member.
    """
    members: list[_Member] = []
    tx_holders = 0
    admitted_requests: list = []
    entries: set[int] = set()
    for h in handles:
        if not isinstance(h, StreamHandle):
            return None
    entry_ids = {id(h.entry) for h in handles}
    for h in handles:
        if not (h.src.alive and h.dst.alive):
            return None
        entry = h.entry
        if entry._no_coalesce or entry._inflight is not None:
            return None
        if id(entry) in entries:
            return None  # pragma: no cover - one producer per entry
        entries.add(id(entry))
        m = _Member(h)
        phase = h.phase
        b0 = entry.blocks_ready
        total = entry.num_blocks
        src_entry = h.source_entry
        if phase == TOP and h is not initiator:
            if b0 >= total:
                members.append(m)  # complete: about to unregister, passive
                continue
            return None  # mid-frame between parking points: unreadable
        if phase == RUN:
            return None
        if phase == TX or phase == LAT:
            if phase == TX:
                if h.tx_end <= now:
                    return None  # release frame pending at this instant
                m.lead_release = h.tx_end
                m.lead_arr = h.tx_end if m.copy else h.tx_end + h.latency()
                m.mode = "lead_tx"
                tx_holders += 1
            else:
                if m.copy or h.arr_at <= now:
                    return None
                m.lead_arr = h.arr_at
                m.mode = "lead_lat"
            start = b0 + 1
        elif phase == GATE:
            if h.gate_event is None or h.gate_event.triggered:
                return None
            start = b0
            m.mode = "issue"
        elif phase == ADMIT:
            if h.kind == "copy":
                req = h.request
            else:
                req = h.reservation.request if h.reservation is not None else None
            if req is None or req.triggered or getattr(req, "granted", False):
                return None
            m.mode = "queue"
            m.key = req.sort_key
            admitted_requests.append(req)
            start = b0
        elif phase == TOP:  # the initiator
            start = b0
            m.mode = "issue"
        else:  # pragma: no cover - defensive
            return None

        # Member-exclusive partner links: idle (except the member's own
        # in-flight hold), no foreign queue entries, no standing runs.
        own_req = None
        if m.mode == "queue":
            own_req = admitted_requests[-1]
        holds = 1 if m.mode == "lead_tx" else 0
        for resource, _sched in h.links:
            if resource._virtual:
                return None
            if resource is bottleneck:
                continue
            if resource._streams != 1 or resource._in_use != holds:
                return None
            for waiter in resource._waiting:
                if waiter is not own_req:
                    return None

        if total <= start:
            if m.mode in ("issue", "queue"):
                return None  # parked with nothing left: unreachable shape
            # A lead on its final block: the real chain finishes it and the
            # stream leaves.  Keep the slot seed (lead_release), plan no
            # blocks for it.
            m.mode = "passive"
            members.append(m)
            continue

        # Plannable horizon: blocks whose source-ready instants are known.
        if src_entry is None:
            horizon = total
        else:
            from repro.net.coalesce import input_coverage

            if id(src_entry) in entry_ids:
                return None  # intra-domain relay: gates depend on the plan
            horizon = input_coverage(src_entry, total)
        if horizon <= start:
            if m.mode in ("lead_tx", "lead_lat"):
                # The real block completes, then the stream parks on an
                # unknown gate; it re-splits the domain when it next acts.
                m.mode = "passive"
                members.append(m)
                continue
            return None
        m.start = start
        m.latency = h.latency()
        gates: list[float] = []
        for j in range(start, horizon):
            nbytes = h.block_size(j)
            m.sizes.append(nbytes)
            m.tx.append(h.block_tx(nbytes))
            gates.append(0.0 if src_entry is None else ready_time_of(src_entry, j))
        m.gates = gates
        m.n = len(m.sizes)
        if src_entry is not None and horizon > src_entry.blocks_ready:
            m.src_schedule = src_entry._inflight
            if m.src_schedule is None:  # pragma: no cover - defensive
                return None
        if m.mode == "lead_lat":
            # Links already released; the first planned issue follows the
            # in-flight block's arrival (or its gate, whichever is later).
            g0 = gates[0]
            m.first_issue = m.lead_arr if g0 <= m.lead_arr else g0
        if m.mode == "issue":
            gate0 = gates[0]
            if h is initiator:
                if gate0 > now:
                    m.first_issue = gate0
                else:
                    m.first_issue = now
            else:
                if gate0 <= now:
                    return None  # gate arrival this very frame: ambiguous
                m.first_issue = gate0
        members.append(m)

    # A convoy needs at least two flows actually rotating: with one active
    # member the arithmetic plan saves nothing over the exclusive coalesced
    # path, and its wake events land at per-block instants with *different*
    # queue sequence numbers — enough to flip a later same-timestamp tie
    # between unrelated transfers (observed in the 64-node matching cell).
    if sum(1 for m in members if m.mode != "passive") < 2:
        return None

    # The bottleneck's real state must be exactly the members' state.
    if bottleneck._in_use != tx_holders:
        return None
    waiting = bottleneck._waiting
    if len(waiting) != len(admitted_requests):
        return None
    admitted_ids = {id(req) for req in admitted_requests}
    for waiter in waiting:
        if id(waiter) not in admitted_ids:
            return None
    total_blocks = sum(m.n for m in members)
    return members, total_blocks
