"""The simulated cluster: a simulator plus a set of nodes and failure control."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.net.config import ClusterSpec, NetworkConfig
from repro.net.fastpath import FastpathStats
from repro.net.node import Node
from repro.net.topology import Fabric, Topology
from repro.sim import Simulator

#: Optional module-level hook called with every fully constructed Cluster.
#: Harnesses that need to observe clusters built deep inside scenario code
#: (the differential fuzzer's flight recordings, the perf basket's
#: critical-path pass) install it around a run; ``None`` (the default)
#: costs one branch per cluster construction.
ON_CREATE: Optional[Callable[["Cluster"], None]] = None


class Cluster:
    """A cluster of simulated nodes on a (possibly hierarchical) fabric.

    The cluster owns the :class:`~repro.sim.Simulator` so that every
    subsystem built on top (object stores, the directory, Hoplite, the
    baselines, and the task system) shares a single virtual clock.  The
    fabric defaults to :meth:`Topology.flat` (the paper's uniform testbed);
    a hierarchical :class:`~repro.net.topology.Topology` — passed directly
    or through ``NetworkConfig(topology=...)`` — instantiates shared rack
    and zone aggregation links that cross-tier reservations must claim.

    Example::

        cluster = Cluster(num_nodes=16)
        cluster.run()           # drain all scheduled work
        print(cluster.now)      # simulated seconds elapsed
    """

    def __init__(
        self,
        num_nodes: int = 4,
        network: Optional[NetworkConfig] = None,
        workers_per_node: int = 4,
        simulator: Optional[Simulator] = None,
        topology: Optional[Topology] = None,
    ):
        if num_nodes <= 0:
            raise ValueError("a cluster needs at least one node")
        self.config = network or NetworkConfig()
        self.topology = topology or self.config.topology or Topology.flat(num_nodes)
        if self.topology.num_nodes != num_nodes:
            raise ValueError(
                f"topology spans {self.topology.num_nodes} nodes "
                f"but the cluster has {num_nodes}"
            )
        self.spec = ClusterSpec(
            num_nodes=num_nodes,
            workers_per_node=workers_per_node,
            network=self.config,
        )
        self.sim = simulator or Simulator()
        self.fabric = Fabric(self.sim, self.topology, self.config)
        #: fast-path counters, scoped to this cluster (see repro.net.fastpath).
        self.fastpath_stats = FastpathStats()
        #: observability plane, or None when disabled (the default: every
        #: instrumentation site guards on ``cluster.obs is not None``).
        self.obs = None
        #: flight recorder, or None when disabled (the default: every
        #: instrumentation site guards on ``cluster.flight is not None``).
        self.flight = None
        #: host-clock self-profiler, or None when disabled (the default:
        #: kernel sites guard on ``sim.host_prof is not None``).
        self.hostprof = None
        #: event-locality analyzer, or None when disabled (the default:
        #: tagging sites guard on ``sim.locality is not None``).
        self.locality = None
        self.nodes: list[Node] = [
            Node(self.sim, node_id, cluster=self) for node_id in range(num_nodes)
        ]
        if ON_CREATE is not None:
            ON_CREATE(self)

    def enable_observability(self, window: float = 0.1, trace_transfers: bool = False):
        """Install (and return) the observability plane for this cluster.

        Purely observational: metrics record against simulated time without
        scheduling events, so enabling it never changes simulated results
        (locked down by the differential test in ``tests/test_fleet.py``).
        """
        from repro.obs import Observability

        if self.obs is None:
            Observability(self, window=window, trace_transfers=trace_transfers)
        return self.obs

    def enable_flight_recorder(self, capacity: Optional[int] = None):
        """Install (and return) the flight recorder for this cluster.

        Purely observational, like the metrics plane: records are stamped
        with simulated time but never schedule events, so recording changes
        no simulated result (locked down by the ``--flight`` differential
        fuzz band).
        """
        from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder

        if self.flight is None:
            recorder = FlightRecorder(
                self.sim, capacity=capacity if capacity is not None else DEFAULT_CAPACITY
            )
            previous = self.sim.on_pop
            if previous is None:
                self.sim.on_pop = recorder.record_pop
            else:
                # A locality analyzer already holds the hook: chain after it
                # (both observers see every pop, in install order).
                record = recorder.record_pop

                def _chained(when, seq, event, _prev=previous, _next=record):
                    _prev(when, seq, event)
                    _next(when, seq, event)

                self.sim.on_pop = _chained
            self.flight = recorder
        return self.flight

    def disable_flight_recorder(self) -> None:
        """Uninstall the recorder (its recorded ring stays readable).

        Resets ``sim.on_pop`` outright: a locality analyzer chained *after*
        the recorder is dropped too (re-enable it if you still need it).
        """
        if self.flight is not None:
            self.sim.on_pop = None
            self.flight = None

    def enable_host_profiler(self):
        """Install (and return) the host-clock self-profiler.

        Wall-clock only: the profiler reads ``perf_counter_ns`` at region
        boundaries and touches no simulated state, so simulated results are
        byte-identical with it on or off (the ``--hostprof`` differential
        fuzz band locks this down).  Its output is host-dependent by
        design — the one observability surface exempt from the
        bit-identical discipline, stamped ``clock="host"`` on export.
        """
        from repro.obs.hostprof import HostProfiler

        if self.hostprof is None:
            self.hostprof = HostProfiler()
            self.sim.host_prof = self.hostprof
        return self.hostprof

    def enable_locality_analyzer(self):
        """Install (and return) the event-locality analyzer.

        Chains onto ``sim.on_pop`` if a flight recorder already holds it
        (both hooks see every pop).  Tagging writes one inert slot per
        event; simulated results are unchanged (same fuzz band as above).
        """
        from repro.obs.locality import LocalityAnalyzer

        if self.locality is None:
            analyzer = LocalityAnalyzer(self)
            previous = self.sim.on_pop
            if previous is None:
                self.sim.on_pop = analyzer.on_pop
            else:
                on_pop = analyzer.on_pop

                def _chained(when, seq, event, _prev=previous, _next=on_pop):
                    _prev(when, seq, event)
                    _next(when, seq, event)

                self.sim.on_pop = _chained
            self.locality = analyzer
            self.sim.locality = analyzer
        return self.locality

    # -- convenience --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def now(self) -> float:
        return self.sim.now

    def alive_nodes(self) -> list[Node]:
        return [node for node in self.nodes if node.alive]

    def run(self, until=None):
        """Advance the simulation (see :meth:`repro.sim.Simulator.run`)."""
        return self.sim.run(until)

    def process(self, generator, name: str = ""):
        """Spawn a process on the cluster's simulator."""
        return self.sim.process(generator, name=name)

    # -- failure injection ----------------------------------------------------
    def fail_node(self, node_id: int) -> None:
        """Fail a node immediately (at the current simulated time)."""
        self.nodes[node_id].fail()

    def recover_node(self, node_id: int) -> None:
        """Recover a previously failed node immediately."""
        self.nodes[node_id].recover()

    def schedule_failure(self, node_id: int, at: float, recover_at: Optional[float] = None) -> None:
        """Schedule a failure (and optional recovery) at absolute simulated times."""
        if at < self.sim.now:
            raise ValueError("cannot schedule a failure in the past")
        if recover_at is not None and recover_at < at:
            raise ValueError("recovery must not precede the failure")

        def _failure_process(sim):
            yield sim.timeout(at - sim.now)
            self.fail_node(node_id)
            if recover_at is not None:
                yield sim.timeout(recover_at - sim.now)
                self.recover_node(node_id)

        self.sim.process(_failure_process(self.sim), name=f"failure-injector-{node_id}")

    def schedule_failures(self, failures: Iterable[tuple[int, float, Optional[float]]]) -> None:
        """Schedule several ``(node_id, fail_at, recover_at)`` failures."""
        for node_id, at, recover_at in failures:
            self.schedule_failure(node_id, at, recover_at)
